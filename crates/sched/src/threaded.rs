//! The threaded Supervisors executor (paper §2.3.2–§2.3.4).
//!
//! One OS-thread *worker* per (assumed) processor; a shared *supervisor*
//! structure holds the priority queues and event states. The defining
//! behaviors of the paper are all here:
//!
//! * **Avoided events** keep a task off the ready queues until they have
//!   occurred (it is never assigned just to block immediately).
//! * **Handled events**: a worker whose task blocks does not idle — it
//!   nests another task on its own stack, preferring the task that will
//!   signal the awaited event, and restricted by the stack-eligibility
//!   rule (a nested task must not be able to wait on an event that only a
//!   task suspended beneath it can signal).
//! * **Barrier events** (token-block queues): the worker simply parks —
//!   safe because token consumers only start after their producer Lexor
//!   began, and Lexor tasks never block.
//! * The ready "queue" is a single ordered structure searched in the
//!   §2.3.4 kind order, with long code-generation tasks before short ones.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use ccm2_faults::FaultKind;
use ccm2_support::ids::EventId;
use ccm2_support::work::Work;

use crate::task::{priority_key, TaskDesc, TaskKind, WaitSet};
use crate::trace::{Segment, Trace};
use crate::{payload_message, EventClass, ExecEnv, Robustness, RunReport};

type PrioKey = (usize, std::cmp::Reverse<u64>, u64);

struct ReadyTask {
    name: String,
    kind: TaskKind,
    signals: Vec<EventId>,
    signals_def_scope: bool,
    signals_barriers: bool,
    may_wait: WaitSet,
    weight: u64,
    /// Dispatch attempt under supervised recovery (0 = first).
    attempt: u32,
    /// Per-task retry cap overriding the global `max_retries`.
    retry_budget: Option<u32>,
    body: crate::task::TaskBody,
}

struct PendingTask {
    prereqs: Vec<EventId>,
    key: PrioKey,
    task: ReadyTask,
}

struct EventState {
    class: EventClass,
    signaled: bool,
    name: String,
}

/// One task suspended inside `wait()`: what it awaits (plus the
/// co-signaler hint, if any) and what it declared it would signal.
/// Feeds the wait-for-graph deadlock diagnosis.
struct WaitFrame {
    task: String,
    awaited: EventId,
    hint: Option<EventId>,
    signals: Vec<EventId>,
}

struct SupState {
    ready: BTreeMap<PrioKey, ReadyTask>,
    pending: Vec<PendingTask>,
    events: Vec<EventState>,
    seq: u64,
    outstanding: usize,
    parked: usize,
    done: bool,
    deadlocked: bool,
    /// worker index -> awaited event for workers currently parked inside
    /// wait() (the mid-wakeup guard of the deadlock check).
    blocked: std::collections::HashMap<u32, EventId>,
    /// worker index -> every wait() the worker currently has open
    /// (bottom to top: nested tasks stack further frames).
    wait_frames: std::collections::HashMap<u32, Vec<WaitFrame>>,
    /// Task bodies caught panicking under recover mode.
    panics: Vec<(String, String)>,
    /// Watchdog diagnoses (wedge releases and deadline overruns).
    stalls: Vec<String>,
    /// Dedup keys for `stalls` (task names / wedge reports).
    stall_reported: std::collections::HashSet<String>,
    /// Supervised recoveries: `(task, faulted attempts retried)`.
    recoveries: Vec<(String, u32)>,
    /// Start times of tasks currently executing, for the deadline
    /// watchdog (only populated when a deadline is configured).
    running: std::collections::HashMap<String, Instant>,
}

/// The threaded Supervisors executor.
pub struct ThreadedSupervisor {
    state: Mutex<SupState>,
    cv: Condvar,
    workers: usize,
    start: Instant,
    trace: Mutex<Trace>,
    charges: [AtomicU64; Work::COUNT],
    tasks_run: AtomicU64,
    robustness: Robustness,
}

thread_local! {
    /// Per-worker context: index and the stack of suspended tasks'
    /// signal sets (for the eligibility rule).
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

struct WorkerCtx {
    index: u32,
    /// (name, signals, signals_def_scope, signals_barriers) of every task
    /// on this worker's stack (bottom to top, including the currently
    /// running one).
    stack: Vec<(String, Vec<EventId>, bool, bool)>,
}

impl ThreadedSupervisor {
    fn new(workers: usize, robustness: Robustness) -> ThreadedSupervisor {
        ThreadedSupervisor {
            state: Mutex::new(SupState {
                ready: BTreeMap::new(),
                pending: Vec::new(),
                events: Vec::new(),
                seq: 0,
                outstanding: 0,
                parked: 0,
                done: false,
                deadlocked: false,
                blocked: std::collections::HashMap::new(),
                wait_frames: std::collections::HashMap::new(),
                panics: Vec::new(),
                stalls: Vec::new(),
                stall_reported: std::collections::HashSet::new(),
                recoveries: Vec::new(),
                running: std::collections::HashMap::new(),
            }),
            cv: Condvar::new(),
            workers,
            start: Instant::now(),
            trace: Mutex::new(Trace::default()),
            charges: Default::default(),
            tasks_run: AtomicU64::new(0),
            robustness,
        }
    }

    fn now(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn worker_loop(self: &Arc<Self>, index: u32) {
        WORKER.with(|w| {
            *w.borrow_mut() = Some(WorkerCtx {
                index,
                stack: Vec::new(),
            })
        });
        loop {
            let task = {
                let mut st = self.state.lock();
                loop {
                    if st.done || st.deadlocked {
                        return;
                    }
                    if let Some((&key, _)) = st.ready.iter().next() {
                        break st.ready.remove(&key).expect("just seen");
                    }
                    if st.outstanding == 0 && st.pending.is_empty() {
                        st.done = true;
                        self.cv.notify_all();
                        return;
                    }
                    st.parked += 1;
                    // Tasks remain but there is nothing to run: if every
                    // other worker is parked too, this would previously
                    // hang silently (only the wait() park path checked).
                    if let Some(report) = self.check_deadlock_locked(&st) {
                        if self.robustness.recover && self.release_wedge_locked(&mut st, &report) {
                            st.parked -= 1;
                            self.cv.notify_all();
                            continue;
                        }
                        st.deadlocked = true;
                        st.parked -= 1;
                        let outstanding = st.outstanding;
                        drop(st);
                        self.cv.notify_all();
                        panic!(
                            "supervisor deadlock: all workers blocked (this \
                             worker idle); {outstanding} tasks outstanding; \
                             {report}"
                        );
                    }
                    self.park_watched(&mut st);
                    st.parked -= 1;
                }
            };
            self.run_task(task);
        }
    }

    fn run_task(self: &Arc<Self>, task: ReadyTask) {
        let (name, kind) = (task.name.clone(), task.kind);
        let signals = task.signals.clone();
        let sds = task.signals_def_scope;
        let sbar = task.signals_barriers;
        let inject = self
            .robustness
            .plan
            .as_ref()
            .and_then(|p| p.at(&crate::dispatch_site(&name, task.attempt)));
        // Supervised retry: a dispatch about to hit a fatal fault (panic,
        // or a stall that would blow the wall-clock deadline — stall
        // units are ms, deadlines us) on a per-stream task is abandoned
        // before anything runs and re-enqueued under the next attempt's
        // fault site. The task stays `outstanding` throughout.
        let fatal = match inject {
            Some(FaultKind::Panic) => true,
            Some(FaultKind::Stall { units }) => self
                .robustness
                .deadline
                .is_some_and(|d| units.saturating_mul(1000) > d),
            _ => false,
        };
        if fatal
            && self.robustness.recover
            && kind.stream_retryable()
            && task.attempt < task.retry_budget.unwrap_or(self.robustness.max_retries)
        {
            let mut task = task;
            task.attempt += 1;
            let mut st = self.state.lock();
            st.seq += 1;
            // Budget-aware requeue: consumed attempts lift the task's
            // rank so a near-budget retry isn't starved behind fresh
            // same-class work (see `retry_priority_key`).
            let key = crate::task::retry_priority_key(
                task.kind,
                task.weight,
                st.seq,
                task.attempt,
                task.retry_budget.unwrap_or(self.robustness.max_retries),
            );
            st.ready.insert(key, task);
            drop(st);
            self.cv.notify_all();
            return;
        }
        let attempt = task.attempt;
        WORKER.with(|w| {
            if let Some(ctx) = w.borrow_mut().as_mut() {
                ctx.stack.push((name.clone(), signals.clone(), sds, sbar));
            }
        });
        let started = Instant::now();
        if self.robustness.deadline.is_some() {
            self.state.lock().running.insert(name.clone(), started);
        }
        if let Some(FaultKind::Stall { units }) = inject {
            std::thread::sleep(std::time::Duration::from_millis(units));
        }
        let seg_start = self.now();
        let caught: Option<String> = if self.robustness.recover {
            let body = task.body;
            let task_name = name.clone();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                if matches!(inject, Some(FaultKind::Panic)) {
                    panic!("injected fault: task `{task_name}` panicked");
                }
                body();
            }))
            .err()
            .map(|p| payload_message(p.as_ref()))
        } else {
            if matches!(inject, Some(FaultKind::Panic)) {
                panic!("injected fault: task `{name}` panicked");
            }
            (task.body)();
            None
        };
        let seg_end = self.now();
        let proc = WORKER.with(|w| {
            let mut b = w.borrow_mut();
            let ctx = b.as_mut().expect("worker ctx");
            ctx.stack.pop();
            ctx.index
        });
        self.trace.lock().segments.push(Segment {
            proc,
            kind,
            name: name.clone(),
            start: seg_start,
            end: seg_end,
        });
        self.tasks_run.fetch_add(1, Ordering::Relaxed);
        // Backstop: auto-signal the task's declared signals so a forgotten
        // explicit signal cannot deadlock the run. Panicked tasks reach
        // this too — that is what keeps their dependents and the merge
        // runnable in degraded mode.
        let mut st = self.state.lock();
        if self.robustness.deadline.is_some() {
            st.running.remove(&name);
            if let Some(deadline) = self.robustness.deadline {
                let elapsed = started.elapsed().as_micros() as u64;
                if elapsed > deadline {
                    Self::record_stall(
                        &mut st,
                        format!("deadline:{name}"),
                        format!(
                            "task `{name}` exceeded the {deadline}us deadline \
                             ({elapsed}us elapsed)"
                        ),
                    );
                }
            }
        }
        if let Some(msg) = caught {
            st.panics.push((name.clone(), msg));
        } else if attempt > 0 && !fatal {
            st.recoveries.push((name.clone(), attempt));
        }
        for e in &signals {
            if !st.events[e.index()].signaled && !self.is_lost(&st, *e) {
                Self::signal_locked(&mut st, *e);
            }
        }
        st.outstanding -= 1;
        if st.outstanding == 0 && st.ready.is_empty() && st.pending.is_empty() {
            st.done = true;
        }
        drop(st);
        self.cv.notify_all();
    }

    fn signal_locked(st: &mut SupState, event: EventId) {
        st.events[event.index()].signaled = true;
        let mut moved = Vec::new();
        let mut keep = Vec::new();
        for p in std::mem::take(&mut st.pending) {
            if p.prereqs.iter().all(|e| st.events[e.index()].signaled) {
                moved.push(p);
            } else {
                keep.push(p);
            }
        }
        st.pending = keep;
        for p in moved {
            st.ready.insert(p.key, p.task);
        }
    }

    /// Whether the fault plan drops every signal of this event
    /// (`signal:{name}` site with [`FaultKind::LoseSignal`]).
    fn is_lost(&self, st: &SupState, event: EventId) -> bool {
        match &self.robustness.plan {
            Some(plan) => {
                let name = &st.events[event.index()].name;
                plan.at(&format!("signal:{name}")) == Some(FaultKind::LoseSignal)
            }
            None => false,
        }
    }

    /// Records a watchdog diagnosis once per dedup key.
    fn record_stall(st: &mut SupState, key: String, msg: String) {
        if st.stall_reported.insert(key) {
            st.stalls.push(msg);
        }
    }

    /// Recover-mode wedge release: records the wait-for diagnosis and
    /// force-signals every unsignaled event the wedge is waiting on so
    /// the run drains (with degraded streams) instead of aborting.
    /// Returns false when there is nothing to release — the caller then
    /// falls through to the historical deadlock panic.
    fn release_wedge_locked(&self, st: &mut SupState, report: &str) -> bool {
        let mut events: Vec<EventId> = st.blocked.values().copied().collect();
        for frames in st.wait_frames.values() {
            for f in frames {
                events.push(f.awaited);
            }
        }
        for p in &st.pending {
            events.extend_from_slice(&p.prereqs);
        }
        events.sort_by_key(|e| e.index());
        events.dedup();
        events.retain(|e| !st.events[e.index()].signaled);
        if events.is_empty() {
            return false;
        }
        Self::record_stall(
            st,
            report.to_string(),
            format!("watchdog released wedge: {report}"),
        );
        // Each release signals at least one previously-unsignaled event
        // and events are finite, so recovery rounds terminate.
        for e in events {
            Self::signal_locked(st, e);
        }
        true
    }

    /// Parks on the condvar; with a deadline configured the park is
    /// timed so the watchdog can diagnose tasks that stall while
    /// *running* (a stalled task occupies its worker, so the wedge
    /// detector never sees all workers parked).
    fn park_watched(&self, st: &mut parking_lot::MutexGuard<'_, SupState>) {
        match self.robustness.deadline {
            Some(deadline) if self.robustness.recover => {
                let timeout = std::time::Duration::from_micros((deadline / 2).max(5_000));
                let _ = self.cv.wait_for(st, timeout);
                let overdue: Vec<(String, u64)> = st
                    .running
                    .iter()
                    .filter_map(|(name, started)| {
                        let elapsed = started.elapsed().as_micros() as u64;
                        (elapsed > deadline).then(|| (name.clone(), elapsed))
                    })
                    .collect();
                for (name, elapsed) in overdue {
                    Self::record_stall(
                        st,
                        format!("deadline:{name}"),
                        format!(
                            "task `{name}` exceeded the {deadline}us deadline \
                             ({elapsed}us elapsed)"
                        ),
                    );
                }
            }
            _ => self.cv.wait(st),
        }
    }

    /// Decides — with the caller already counted in `st.parked` — whether
    /// the run is wedged: every worker parked, nothing runnable, and no
    /// parked worker's awaited event signaled (a signaled one is merely
    /// mid-wakeup: notified but not yet re-holding the lock). Returns the
    /// wait-for-graph diagnosis when it is. Assumes the paper's model
    /// that only tasks signal events once the run has started.
    fn check_deadlock_locked(&self, st: &SupState) -> Option<String> {
        let stuck = st.parked == self.workers
            && st.ready.is_empty()
            && st.outstanding > 0
            && st.blocked.values().all(|e| !st.events[e.index()].signaled);
        if !stuck {
            return None;
        }
        let mut g = crate::wfg::WaitForGraph::new();
        for (ix, ev) in st.events.iter().enumerate() {
            g.name_event(EventId(ix as u32), &ev.name);
        }
        let mut workers: Vec<&u32> = st.wait_frames.keys().collect();
        workers.sort();
        for wix in workers {
            for f in &st.wait_frames[wix] {
                let mut awaits = vec![f.awaited];
                if let Some(h) = f.hint {
                    awaits.push(h);
                }
                g.add_waiter(f.task.clone(), awaits);
                for &e in &f.signals {
                    g.add_signaler(e, f.task.clone());
                }
            }
        }
        for p in &st.pending {
            g.add_waiter(p.task.name.clone(), p.prereqs.clone());
            for &e in &p.task.signals {
                g.add_signaler(e, p.task.name.clone());
            }
        }
        for t in st.ready.values() {
            for &e in &t.signals {
                g.add_signaler(e, t.name.clone());
            }
        }
        Some(match g.find_cycle() {
            Some(cycle) => format!("wait-for cycle: {cycle}"),
            None => format!(
                "no wait-for cycle (scheduling wedge); blocked: {}",
                g.describe_waiters()
            ),
        })
    }

    /// Pops the best ready task this worker may nest while blocked on
    /// `awaited` (prefers the task that signals `awaited` or the hint).
    fn pop_eligible(
        &self,
        st: &mut SupState,
        awaited: EventId,
        hint: Option<EventId>,
    ) -> Option<ReadyTask> {
        let stack_signals: (Vec<EventId>, bool, bool) = WORKER.with(|w| {
            let b = w.borrow();
            let ctx = b.as_ref().expect("worker ctx");
            if ctx.stack.len() >= 32 {
                // Nesting cap: fall back to parking rather than risking
                // stack exhaustion.
                return (vec![EventId(u32::MAX)], true, true);
            }
            let mut evs = Vec::new();
            let mut def = false;
            let mut bar = false;
            for (_, sigs, d, b2) in &ctx.stack {
                evs.extend_from_slice(sigs);
                def |= d;
                bar |= b2;
            }
            (evs, def, bar)
        });
        if stack_signals.0.first() == Some(&EventId(u32::MAX)) {
            return None;
        }
        // Preference 1: the signaler of the awaited event (or of the
        // hinted co-resolving event).
        let mut chosen: Option<PrioKey> = None;
        for (key, t) in st.ready.iter() {
            if t.signals.contains(&awaited) || hint.is_some_and(|h| t.signals.contains(&h)) {
                chosen = Some(*key);
                break;
            }
        }
        // Preference 2: any task whose wait-set cannot reach our stack.
        if chosen.is_none() {
            for (key, t) in st.ready.iter() {
                if !t
                    .may_wait
                    .intersects(&stack_signals.0, stack_signals.1, stack_signals.2)
                {
                    chosen = Some(*key);
                    break;
                }
            }
        }
        chosen.map(|key| st.ready.remove(&key).expect("chosen key"))
    }
}

impl ExecEnv for ThreadedSupervisor {
    fn new_event(&self, class: EventClass) -> EventId {
        self.new_event_named(class, "")
    }

    fn new_event_named(&self, class: EventClass, name: &str) -> EventId {
        let mut st = self.state.lock();
        let id = EventId(st.events.len() as u32);
        st.events.push(EventState {
            class,
            signaled: false,
            name: name.to_string(),
        });
        id
    }

    fn signal(&self, event: EventId) {
        let mut st = self.state.lock();
        if self.is_lost(&st, event) {
            // Injected lost signal: drop it on the floor. The backstop
            // drops it too; the watchdog eventually force-releases any
            // waiter it wedges.
            return;
        }
        if !st.events[event.index()].signaled {
            Self::signal_locked(&mut st, event);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn is_signaled(&self, event: EventId) -> bool {
        self.state.lock().events[event.index()].signaled
    }

    fn wait_hinted(&self, event: EventId, signaler_hint: Option<EventId>) {
        // Fast path.
        {
            let st = self.state.lock();
            if st.events[event.index()].signaled {
                return;
            }
        }
        let sup = WORKER.with(|w| w.borrow().is_some());
        if !sup {
            // Called from outside a worker (e.g. the initialization
            // thread, §2.3.2): plain blocking wait.
            let mut st = self.state.lock();
            while !st.events[event.index()].signaled && !st.deadlocked {
                self.cv.wait(&mut st);
            }
            return;
        }
        // Record this wait in the worker's frame stack (wait-for-graph
        // input): the current task is the top of the worker's task stack.
        let (wix, task_name, task_signals) = WORKER.with(|w| {
            let b = w.borrow();
            let ctx = b.as_ref().expect("worker ctx");
            let (name, sigs) = match ctx.stack.last() {
                Some((n, s, ..)) => (n.clone(), s.clone()),
                None => ("<worker>".to_string(), Vec::new()),
            };
            (ctx.index, name, sigs)
        });
        self.state
            .lock()
            .wait_frames
            .entry(wix)
            .or_default()
            .push(WaitFrame {
                task: task_name,
                awaited: event,
                hint: signaler_hint,
                signals: task_signals,
            });
        loop {
            let mut st = self.state.lock();
            if st.events[event.index()].signaled || st.deadlocked {
                if let Some(frames) = st.wait_frames.get_mut(&wix) {
                    frames.pop();
                }
                return;
            }
            let class = st.events[event.index()].class;
            let nested = if class == EventClass::Barrier {
                // §2.3.3: barrier waits never reschedule the worker.
                None
            } else {
                self.pop_eligible(&mut st, event, signaler_hint)
            };
            match nested {
                Some(task) => {
                    drop(st);
                    // Recursion bounded by the eligibility rule + depth cap.
                    let this = ARC_SELF
                        .with(|a| a.borrow().clone())
                        .expect("wait() with nesting requires a worker thread");
                    this.run_task(task);
                }
                None => {
                    st.blocked.insert(wix, event);
                    st.parked += 1;
                    if let Some(report) = self.check_deadlock_locked(&st) {
                        if self.robustness.recover && self.release_wedge_locked(&mut st, &report) {
                            st.parked -= 1;
                            st.blocked.remove(&wix);
                            self.cv.notify_all();
                            continue;
                        }
                        // Every worker is parked with nothing runnable:
                        // a genuine scheduling deadlock. Surface loudly.
                        st.deadlocked = true;
                        st.parked -= 1;
                        let outstanding = st.outstanding;
                        let awaited = format!("{event:?} ({})", st.events[event.index()].name);
                        drop(st);
                        self.cv.notify_all();
                        panic!(
                            "supervisor deadlock: all workers blocked \
                             (this worker on {awaited}); {outstanding} tasks \
                             outstanding; {report}"
                        );
                    }
                    self.park_watched(&mut st);
                    st.parked -= 1;
                    st.blocked.remove(&wix);
                }
            }
        }
    }

    fn spawn(&self, task: TaskDesc) {
        let mut st = self.state.lock();
        st.seq += 1;
        st.outstanding += 1;
        let key = priority_key(task.kind, task.weight, st.seq);
        let ready = ReadyTask {
            name: task.name,
            kind: task.kind,
            signals: task.signals,
            signals_def_scope: task.signals_def_scope,
            signals_barriers: task.signals_barriers,
            may_wait: task.may_wait,
            weight: task.weight,
            attempt: 0,
            retry_budget: task.retry_budget,
            body: task.body,
        };
        let unsatisfied: Vec<EventId> = task
            .prereqs
            .iter()
            .copied()
            .filter(|e| !st.events[e.index()].signaled)
            .collect();
        if unsatisfied.is_empty() {
            st.ready.insert(key, ready);
        } else {
            st.pending.push(PendingTask {
                prereqs: unsatisfied,
                key,
                task: ready,
            });
        }
        drop(st);
        self.cv.notify_all();
    }

    fn charge(&self, work: Work, units: u64) {
        self.charges[work as usize].fetch_add(units, Ordering::Relaxed);
    }

    fn virtual_now(&self) -> u64 {
        self.now()
    }
}

thread_local! {
    static ARC_SELF: RefCell<Option<Arc<ThreadedSupervisor>>> = const { RefCell::new(None) };
}

/// Runs a task graph on `workers` OS threads. `setup` creates events and
/// spawns the initial tasks (the paper's compiler-initialization thread,
/// which then blocks while the workers perform the compilation).
///
/// Returns when every task has completed.
///
/// # Panics
///
/// Panics if the task graph deadlocks — all workers blocked or idle with
/// nothing runnable. The detecting worker builds a wait-for graph
/// ([`crate::wfg`]) and the panic names the cycle when one exists; the
/// payload is re-raised on the calling thread. Correct compiler task
/// graphs never deadlock; the scheduler tests exercise the detector
/// directly.
pub fn run_threaded(workers: usize, setup: impl FnOnce(&Arc<ThreadedSupervisor>)) -> RunReport {
    run_threaded_with(workers, Robustness::default(), setup)
}

/// [`run_threaded`] with a [`Robustness`] configuration: fault
/// injection, per-task wall-clock deadlines (microseconds), and — when
/// `recover` is set — catch-and-degrade instead of unwinding on task
/// panics and wedges. Caught panics and watchdog diagnoses come back in
/// [`RunReport::task_panics`] / [`RunReport::stalls`].
pub fn run_threaded_with(
    workers: usize,
    robustness: Robustness,
    setup: impl FnOnce(&Arc<ThreadedSupervisor>),
) -> RunReport {
    assert!(workers >= 1, "need at least one worker");
    let sup = Arc::new(ThreadedSupervisor::new(workers, robustness));
    setup(&sup);
    let mut handles = Vec::new();
    for ix in 0..workers {
        let sup = Arc::clone(&sup);
        handles.push(
            std::thread::Builder::new()
                .name(format!("ccm2-worker-{ix}"))
                .stack_size(16 * 1024 * 1024)
                .spawn(move || {
                    ARC_SELF.with(|a| *a.borrow_mut() = Some(Arc::clone(&sup)));
                    sup.worker_loop(ix as u32);
                    ARC_SELF.with(|a| *a.borrow_mut() = None);
                })
                .expect("spawn worker"),
        );
    }
    // Join every worker before re-raising anything: no thread may be
    // leaked, and every panic payload must be accounted for (not just
    // the first joiner's).
    let mut payloads = Vec::new();
    for h in handles {
        if let Err(payload) = h.join() {
            payloads.push(payload);
        }
    }
    match payloads.len() {
        0 => {}
        1 => {
            // Re-raise with the worker's own payload so the deadlock
            // diagnosis (or compiler bug) reaches the caller verbatim.
            std::panic::resume_unwind(payloads.pop().expect("len checked"));
        }
        n => {
            let msgs: Vec<String> = payloads
                .iter()
                .map(|p| payload_message(p.as_ref()))
                .collect();
            panic!("{n} workers panicked: {}", msgs.join("; "));
        }
    }
    let trace = sup.trace.lock().clone();
    let mut charges = [0u64; Work::COUNT];
    for (ix, c) in sup.charges.iter().enumerate() {
        charges[ix] = c.load(Ordering::Relaxed);
    }
    let (task_panics, stalls, recoveries) = {
        let mut st = sup.state.lock();
        (
            std::mem::take(&mut st.panics),
            std::mem::take(&mut st.stalls),
            std::mem::take(&mut st.recoveries),
        )
    };
    RunReport {
        virtual_time: None,
        wall_micros: sup.now(),
        trace,
        tasks_run: sup.tasks_run.load(Ordering::Relaxed) as usize,
        charges,
        task_panics,
        stalls,
        recoveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_simple_tasks_to_completion() {
        let counter = Arc::new(AtomicUsize::new(0));
        let report = run_threaded(2, |sup| {
            for i in 0..10 {
                let c = Arc::clone(&counter);
                sup.spawn(TaskDesc::new(
                    format!("t{i}"),
                    TaskKind::ShortCodeGen,
                    Box::new(move || {
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                ));
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert_eq!(report.tasks_run, 10);
        assert_eq!(report.trace.segments.len(), 10);
    }

    #[test]
    fn avoided_events_gate_tasks() {
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            let gate = sup.new_event(EventClass::Avoided);
            let o1 = Arc::clone(&order);
            let mut gated = TaskDesc::new(
                "gated",
                TaskKind::Lexor, // highest priority, but gated
                Box::new(move || o1.lock().push("gated")),
            );
            gated.prereqs = vec![gate];
            sup.spawn(gated);
            let o2 = Arc::clone(&order);
            let sup2 = Arc::clone(sup);
            let mut opener = TaskDesc::new(
                "opener",
                TaskKind::ShortCodeGen, // lowest priority, but runnable
                Box::new(move || {
                    o2.lock().push("opener");
                    sup2.signal(gate);
                }),
            );
            opener.signals = vec![gate];
            sup.spawn(opener);
        });
        assert_eq!(*order.lock(), vec!["opener", "gated"]);
    }

    #[test]
    fn blocked_worker_runs_the_signaler() {
        // One worker: task A waits on e; the signaler task must be nested
        // on A's stack (otherwise: deadlock panic).
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            let e = sup.new_event(EventClass::Handled);
            let o1 = Arc::clone(&order);
            let sup1 = Arc::clone(sup);
            sup.spawn(TaskDesc::new(
                "waiter",
                TaskKind::Lexor,
                Box::new(move || {
                    o1.lock().push("waiter-pre");
                    sup1.wait(e);
                    o1.lock().push("waiter-post");
                }),
            ));
            let o2 = Arc::clone(&order);
            let sup2 = Arc::clone(sup);
            let mut signaler = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    o2.lock().push("signaler");
                    sup2.signal(e);
                }),
            );
            signaler.signals = vec![e];
            sup.spawn(signaler);
        });
        assert_eq!(*order.lock(), vec!["waiter-pre", "signaler", "waiter-post"]);
    }

    #[test]
    fn eligibility_rule_blocks_unsafe_nesting() {
        // Worker runs A (signals e1, waits on e2). Candidate B may wait on
        // e1 → ineligible; candidate C (signals e2) is the signaler →
        // nested. Run with 1 worker so nesting is forced.
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            let e1 = sup.new_event(EventClass::Handled);
            let e2 = sup.new_event(EventClass::Handled);
            let o = Arc::clone(&order);
            let supa = Arc::clone(sup);
            let mut a = TaskDesc::new(
                "A",
                TaskKind::Lexor,
                Box::new(move || {
                    o.lock().push("A-pre");
                    supa.wait(e2);
                    o.lock().push("A-post");
                    supa.signal(e1);
                }),
            );
            a.signals = vec![e1];
            sup.spawn(a);
            let o = Arc::clone(&order);
            let mut b = TaskDesc::new(
                "B",
                TaskKind::Splitter, // better priority than C
                Box::new(move || o.lock().push("B")),
            );
            b.may_wait = WaitSet {
                events: vec![e1],
                all_def_scopes: false,
                any_barrier: false,
            };
            sup.spawn(b);
            let o = Arc::clone(&order);
            let supc = Arc::clone(sup);
            let mut c = TaskDesc::new(
                "C",
                TaskKind::ShortCodeGen,
                Box::new(move || {
                    o.lock().push("C");
                    supc.signal(e2);
                }),
            );
            c.signals = vec![e2];
            sup.spawn(c);
        });
        let got = order.lock().clone();
        assert_eq!(got[0], "A-pre");
        assert_eq!(got[1], "C", "signaler nested, not the unsafe B");
        assert_eq!(got[2], "A-post");
    }

    #[test]
    fn priority_order_respected_single_worker() {
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            // Spawn in reverse priority; with one worker they must run in
            // §2.3.4 order once the queue is populated. Spawn from a
            // gating task so all are queued before any runs.
            let gate = sup.new_event(EventClass::Avoided);
            for (name, kind) in [
                ("codegen-short", TaskKind::ShortCodeGen),
                ("codegen-long", TaskKind::LongCodeGen),
                ("procparse", TaskKind::ProcParse),
                ("lexor", TaskKind::Lexor),
            ] {
                let o = Arc::clone(&order);
                let mut t = TaskDesc::new(name, kind, Box::new(move || o.lock().push(name)));
                t.prereqs = vec![gate];
                sup.spawn(t);
            }
            let sup2 = Arc::clone(sup);
            let mut opener =
                TaskDesc::new("open", TaskKind::Merge, Box::new(move || sup2.signal(gate)));
            opener.signals = vec![gate];
            sup.spawn(opener);
        });
        assert_eq!(
            *order.lock(),
            vec!["lexor", "procparse", "codegen-long", "codegen-short"]
        );
    }

    #[test]
    fn heavier_codegen_first() {
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            let gate = sup.new_event(EventClass::Avoided);
            for (name, w) in [("small", 5u64), ("large", 500), ("medium", 50)] {
                let o = Arc::clone(&order);
                let mut t = TaskDesc::new(
                    name,
                    TaskKind::LongCodeGen,
                    Box::new(move || o.lock().push(name)),
                );
                t.weight = w;
                t.prereqs = vec![gate];
                sup.spawn(t);
            }
            let sup2 = Arc::clone(sup);
            let mut opener =
                TaskDesc::new("open", TaskKind::Merge, Box::new(move || sup2.signal(gate)));
            opener.signals = vec![gate];
            sup.spawn(opener);
        });
        assert_eq!(*order.lock(), vec!["large", "medium", "small"]);
    }

    #[test]
    fn many_tasks_many_workers_stress() {
        let counter = Arc::new(AtomicUsize::new(0));
        let report = run_threaded(4, |sup| {
            let e = sup.new_event(EventClass::Handled);
            for i in 0..200 {
                let c = Arc::clone(&counter);
                let sup2 = Arc::clone(sup);
                let is_signaler = i == 150;
                let mut t = TaskDesc::new(
                    format!("t{i}"),
                    if i % 2 == 0 {
                        TaskKind::ProcParse
                    } else {
                        TaskKind::ShortCodeGen
                    },
                    Box::new(move || {
                        if is_signaler {
                            sup2.signal(e);
                        } else if i % 17 == 0 {
                            sup2.wait(e);
                        }
                        c.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                if is_signaler {
                    t.signals = vec![e];
                }
                sup.spawn(t);
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(report.tasks_run, 200);
    }
}

#[cfg(test)]
mod hint_tests {
    use super::*;
    use crate::task::{TaskDesc, TaskKind, WaitSet};
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    /// Regression: a worker blocked on a *dynamically created* event (one
    /// appearing in no task's declared signals — the Optimistic DKY
    /// per-symbol events) must still find its resolver through the
    /// signaler hint; without the hint, conservative eligibility would
    /// wedge a single worker forever.
    #[test]
    fn hint_breaks_conservative_eligibility_stall() {
        let order = Arc::new(Mutex::new(Vec::new()));
        run_threaded(1, |sup| {
            let scope_done = sup.new_event_named(EventClass::Handled, "scope");
            let symbol_ev = sup.new_event_named(EventClass::Handled, "symbol");
            // Waiter: blocks on symbol_ev with hint scope_done.
            let o = Arc::clone(&order);
            let sup1 = Arc::clone(sup);
            let mut waiter = TaskDesc::new(
                "waiter",
                TaskKind::DefModParse,
                Box::new(move || {
                    o.lock().push("waiter-pre");
                    sup1.wait_hinted(symbol_ev, Some(scope_done));
                    o.lock().push("waiter-post");
                }),
            );
            waiter.signals_def_scope = true;
            waiter.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: true,
                any_barrier: false,
            };
            sup.spawn(waiter);
            // Resolver: a def-parse-like task (all_def_scopes wait set →
            // ineligible under the plain rule vs the suspended waiter,
            // which signals_def_scope) that signals both events.
            let o = Arc::clone(&order);
            let sup2 = Arc::clone(sup);
            let mut resolver = TaskDesc::new(
                "resolver",
                TaskKind::DefModParse,
                Box::new(move || {
                    o.lock().push("resolver");
                    sup2.signal(symbol_ev);
                    sup2.signal(scope_done);
                }),
            );
            resolver.signals = vec![scope_done];
            resolver.signals_def_scope = true;
            resolver.may_wait = WaitSet {
                events: vec![],
                all_def_scopes: true,
                any_barrier: false,
            };
            sup.spawn(resolver);
        });
        assert_eq!(*order.lock(), vec!["waiter-pre", "resolver", "waiter-post"]);
    }

    /// Regression: the deadlock detector must not fire while another
    /// parked worker's awaited event has already been signaled (it is
    /// merely mid-wakeup). Exercised by hammering a two-worker
    /// producer/consumer pattern that previously tripped the detector.
    #[test]
    fn no_false_deadlock_under_signal_wakeup_races() {
        for _ in 0..200 {
            let done = Arc::new(AtomicUsize::new(0));
            run_threaded(2, |sup| {
                let e1 = sup.new_event(EventClass::Handled);
                let e2 = sup.new_event(EventClass::Handled);
                for (ix, (my, other)) in [(e1, e2), (e2, e1)].into_iter().enumerate() {
                    let sup2 = Arc::clone(sup);
                    let d = Arc::clone(&done);
                    let mut t = TaskDesc::new(
                        format!("pingpong{ix}"),
                        TaskKind::ProcParse,
                        Box::new(move || {
                            sup2.signal(my);
                            sup2.wait(other);
                            d.fetch_add(1, AtomicOrdering::Relaxed);
                        }),
                    );
                    t.signals = vec![my];
                    t.may_wait = WaitSet {
                        events: vec![other],
                        all_def_scopes: false,
                        any_barrier: false,
                    };
                    sup.spawn(t);
                }
            });
            assert_eq!(done.load(AtomicOrdering::Relaxed), 2);
        }
    }

    /// Injected event cycle — A awaits what only B signals and vice
    /// versa: diagnosed with a named wait-for cycle instead of hanging,
    /// and the diagnosis propagates to the `run_threaded` caller.
    #[test]
    #[should_panic(expected = "wait-for cycle")]
    fn injected_event_cycle_is_diagnosed_not_hung() {
        run_threaded(2, |sup| {
            let ea = sup.new_event_named(EventClass::Handled, "needs-A");
            let eb = sup.new_event_named(EventClass::Handled, "needs-B");
            for (name, my, other) in [("A", ea, eb), ("B", eb, ea)] {
                let sup2 = Arc::clone(sup);
                let mut t = TaskDesc::new(
                    name,
                    TaskKind::ProcParse,
                    Box::new(move || {
                        sup2.wait(other);
                        sup2.signal(my);
                    }),
                );
                t.signals = vec![my];
                t.may_wait = WaitSet {
                    events: vec![other],
                    all_def_scopes: false,
                    any_barrier: false,
                };
                sup.spawn(t);
            }
        });
    }

    /// A task gated on an avoided event that no live task signals used
    /// to park every worker silently — the idle-park path had no
    /// detector at all.
    #[test]
    #[should_panic(expected = "supervisor deadlock")]
    fn unsignaled_gate_is_diagnosed_not_hung() {
        run_threaded(2, |sup| {
            let gate = sup.new_event_named(EventClass::Avoided, "never-signaled");
            let mut t = TaskDesc::new("gated", TaskKind::Lexor, Box::new(|| {}));
            t.prereqs = vec![gate];
            sup.spawn(t);
        });
    }

    #[test]
    fn event_labels_survive() {
        run_threaded(1, |sup| {
            let e = sup.new_event_named(EventClass::Avoided, "my-label");
            assert!(!sup.is_signaled(e));
            sup.signal(e);
            assert!(sup.is_signaled(e));
        });
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use ccm2_faults::FaultPlan;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn recovered_panic_completes_run_and_signals_dependents() {
        let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
        let ran = Arc::new(AtomicUsize::new(0));
        let report = run_threaded_with(
            2,
            Robustness::degrading(Some(Arc::clone(&plan)), None),
            |sup| {
                let done = sup.new_event_named(EventClass::Avoided, "victim-done");
                let mut victim = TaskDesc::new(
                    "victim",
                    TaskKind::ProcParse,
                    Box::new(|| unreachable!("injection fires before the body")),
                );
                victim.signals = vec![done];
                sup.spawn(victim);
                let r = Arc::clone(&ran);
                let mut dep = TaskDesc::new(
                    "dependent",
                    TaskKind::ShortCodeGen,
                    Box::new(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                dep.prereqs = vec![done];
                sup.spawn(dep);
                for i in 0..4 {
                    let r = Arc::clone(&ran);
                    sup.spawn(TaskDesc::new(
                        format!("ok{i}"),
                        TaskKind::ShortCodeGen,
                        Box::new(move || {
                            r.fetch_add(1, Ordering::Relaxed);
                        }),
                    ));
                }
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 5, "dependent + 4 ok tasks ran");
        assert_eq!(report.task_panics.len(), 1);
        assert_eq!(report.task_panics[0].0, "victim");
        assert!(report.task_panics[0].1.contains("injected fault"));
        assert!(plan.any_fired());
    }

    #[test]
    fn lost_signal_is_force_released_by_watchdog() {
        let plan = Arc::new(FaultPlan::single("signal:gate", FaultKind::LoseSignal));
        let post = Arc::new(AtomicUsize::new(0));
        let report = run_threaded_with(2, Robustness::degrading(Some(plan), None), |sup| {
            let gate = sup.new_event_named(EventClass::Handled, "gate");
            let p = Arc::clone(&post);
            let sup1 = Arc::clone(sup);
            let mut waiter = TaskDesc::new(
                "waiter",
                TaskKind::ProcParse,
                Box::new(move || {
                    sup1.wait(gate);
                    p.fetch_add(1, Ordering::Relaxed);
                }),
            );
            waiter.may_wait = WaitSet {
                events: vec![gate],
                all_def_scopes: false,
                any_barrier: false,
            };
            sup.spawn(waiter);
            let sup2 = Arc::clone(sup);
            let mut signaler = TaskDesc::new(
                "signaler",
                TaskKind::ShortCodeGen,
                Box::new(move || sup2.signal(gate)),
            );
            signaler.signals = vec![gate];
            sup.spawn(signaler);
        });
        assert_eq!(post.load(Ordering::Relaxed), 1, "waiter released");
        assert!(
            !report.stalls.is_empty(),
            "wedge release must be diagnosed; got: {:?}",
            report.stalls
        );
    }

    #[test]
    fn injected_stall_is_diagnosed_within_deadline() {
        let plan = Arc::new(FaultPlan::single(
            "task:stalling",
            FaultKind::Stall { units: 60 },
        ));
        // Deadline 10ms, stall 60ms: the parked second worker's timed
        // wait must diagnose the overrun while the task is still asleep.
        let report = run_threaded_with(2, Robustness::degrading(Some(plan), Some(10_000)), |sup| {
            sup.spawn(TaskDesc::new(
                "stalling",
                TaskKind::ProcParse,
                Box::new(|| {}),
            ));
        });
        assert_eq!(report.tasks_run, 1);
        assert!(
            report
                .stalls
                .iter()
                .any(|s| s.contains("stalling") && s.contains("deadline")),
            "stall diagnosis expected; got: {:?}",
            report.stalls
        );
    }

    /// Supervised recovery: a transient fault (exact-match site) is
    /// retried on a fresh dispatch; the body runs, dependents run, and
    /// nothing degrades.
    #[test]
    fn transient_fault_is_retried_and_recovers() {
        let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
        let ran = Arc::new(AtomicUsize::new(0));
        let report = run_threaded_with(
            2,
            Robustness::supervised(Some(Arc::clone(&plan)), None, 2),
            |sup| {
                let done = sup.new_event_named(EventClass::Avoided, "victim-done");
                let r = Arc::clone(&ran);
                let mut victim = TaskDesc::new(
                    "victim",
                    TaskKind::ProcParse,
                    Box::new(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                victim.signals = vec![done];
                sup.spawn(victim);
                let r = Arc::clone(&ran);
                let mut dep = TaskDesc::new(
                    "dependent",
                    TaskKind::ShortCodeGen,
                    Box::new(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                dep.prereqs = vec![done];
                sup.spawn(dep);
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 2, "victim + dependent ran");
        assert!(report.task_panics.is_empty(), "{:?}", report.task_panics);
        assert!(report.stalls.is_empty(), "{:?}", report.stalls);
        assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
    }

    /// A persistent fault (`task:{name}*` glob) exhausts retries and
    /// then degrades; a fatal stall never sleeps on retried attempts.
    #[test]
    fn persistent_fault_exhausts_retries_and_degrades() {
        let plan = Arc::new(FaultPlan::single("task:victim*", FaultKind::Panic));
        let report = run_threaded_with(
            1,
            Robustness::supervised(Some(Arc::clone(&plan)), None, 2),
            |sup| {
                sup.spawn(TaskDesc::new(
                    "victim",
                    TaskKind::ProcParse,
                    Box::new(|| unreachable!("every attempt faults")),
                ));
            },
        );
        assert_eq!(report.task_panics.len(), 1);
        assert_eq!(report.task_panics[0].0, "victim");
        assert!(report.recoveries.is_empty());
        assert!(
            plan.fired().iter().any(|f| f.contains("task:victim#r2")),
            "all retry attempts were dispatched: {:?}",
            plan.fired()
        );
    }

    /// A stall that would blow the wall-clock deadline (units are ms,
    /// deadline us) is fatal: the retried dispatch skips the sleep
    /// entirely and no stall is diagnosed.
    #[test]
    fn fatal_stall_is_retried_without_sleeping() {
        let plan = Arc::new(FaultPlan::single(
            "task:victim",
            FaultKind::Stall { units: 60_000 },
        ));
        let started = std::time::Instant::now();
        let report = run_threaded_with(
            2,
            Robustness::supervised(Some(plan), Some(10_000), 1),
            |sup| {
                sup.spawn(TaskDesc::new(
                    "victim",
                    TaskKind::ProcParse,
                    Box::new(|| {}),
                ));
            },
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "retried stall must not serve the 60s sleep"
        );
        assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
        assert!(report.stalls.is_empty(), "{:?}", report.stalls);
    }

    /// Budget-aware retry scheduling on real threads: with one worker
    /// the dispatch order is the queue order, so the trace shows whether
    /// the retried victim ran before or after the competitors spawned
    /// after it. The boosted requeue must put its (successful) retry
    /// ahead of every fresh same-class task; the original-priority
    /// requeue would run it last.
    #[test]
    fn near_budget_retry_jumps_ahead_of_fresh_same_class_work() {
        let plan = Arc::new(FaultPlan::single("task:victim", FaultKind::Panic));
        let report = run_threaded_with(1, Robustness::supervised(Some(plan), None, 1), |sup| {
            sup.spawn(TaskDesc::new(
                "victim",
                TaskKind::ShortCodeGen,
                Box::new(|| {}),
            ));
            for i in 0..3 {
                sup.spawn(TaskDesc::new(
                    format!("comp{i}"),
                    TaskKind::ShortCodeGen,
                    Box::new(|| {}),
                ));
            }
        });
        assert_eq!(report.recoveries, vec![("victim".to_string(), 1)]);
        let pos = |name: &str| {
            report
                .trace
                .segments
                .iter()
                .position(|s| s.name == name)
                .unwrap_or_else(|| panic!("no segment for {name}"))
        };
        let victim = pos("victim");
        for i in 0..3 {
            let comp = pos(&format!("comp{i}"));
            assert!(
                victim < comp,
                "boosted retry must run before comp{i} \
                 (victim segment #{victim}, comp segment #{comp})"
            );
        }
    }

    #[test]
    fn multiple_worker_panics_are_aggregated() {
        // Without recover mode two organic panics on two workers must
        // both be accounted for in the re-raised payload.
        let res = std::panic::catch_unwind(|| {
            run_threaded(2, |sup| {
                for i in 0..2 {
                    sup.spawn(TaskDesc::new(
                        format!("boom{i}"),
                        TaskKind::ProcParse,
                        Box::new(move || panic!("organic panic {i}")),
                    ));
                }
            });
        });
        let payload = res.expect_err("run must panic");
        let msg = payload_message(payload.as_ref());
        assert!(
            msg.contains("2 workers panicked") || msg.contains("organic panic"),
            "unexpected payload: {msg}"
        );
    }

    #[test]
    fn plain_run_unaffected_by_default_robustness() {
        let report = run_threaded(2, |sup| {
            for i in 0..8 {
                sup.spawn(TaskDesc::new(
                    format!("t{i}"),
                    TaskKind::ShortCodeGen,
                    Box::new(|| {}),
                ));
            }
        });
        assert!(report.task_panics.is_empty());
        assert!(report.stalls.is_empty());
    }
}
