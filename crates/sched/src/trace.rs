//! Execution traces for the WatchTool figures.
//!
//! Figures 4 and 7 of the paper are *WatchTool snapshots*: processor
//! activity (vertical) against time (horizontal), shaded by task kind.
//! Both executors record a [`Segment`] for every contiguous stretch of a
//! task running on a processor; [`render_watchtool`] draws the ASCII
//! equivalent.

use crate::task::TaskKind;

/// One contiguous execution of (part of) a task on a processor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Processor (worker) index.
    pub proc: u32,
    /// The task's kind (determines shading).
    pub kind: TaskKind,
    /// The task's display name.
    pub name: String,
    /// Start time (virtual units in the simulator, microseconds under the
    /// threaded executor).
    pub start: u64,
    /// End time.
    pub end: u64,
}

/// A whole run's trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All recorded segments.
    pub segments: Vec<Segment>,
}

impl Trace {
    /// Total busy time per processor.
    pub fn busy_per_proc(&self, procs: u32) -> Vec<u64> {
        let mut busy = vec![0u64; procs as usize];
        for s in &self.segments {
            if (s.proc as usize) < busy.len() {
                busy[s.proc as usize] += s.end - s.start;
            }
        }
        busy
    }

    /// The latest end time (the makespan).
    pub fn makespan(&self) -> u64 {
        self.segments.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Overall utilization in [0, 1]: busy time / (procs × makespan).
    pub fn utilization(&self, procs: u32) -> f64 {
        let span = self.makespan();
        if span == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy_per_proc(procs).iter().sum();
        busy as f64 / (span as f64 * procs as f64)
    }
}

/// The shading characters per task kind, darkest for codegen — matching
/// the paper's description of Figure 7 ("dark gray bars at the left are
/// lexical analysis … darker gray bars on the right are statement
/// analysis / code generation").
fn shade(kind: TaskKind) -> char {
    match kind {
        TaskKind::Lexor => 'L',
        TaskKind::Splitter => 'S',
        TaskKind::CacheSplice => 'c',
        TaskKind::Importer => 'i',
        TaskKind::DefModParse => 'd',
        TaskKind::ModuleParse => 'm',
        TaskKind::ProcParse => 'p',
        TaskKind::Analyze => 'a',
        TaskKind::LongCodeGen => '#',
        TaskKind::ShortCodeGen => '#',
        TaskKind::Merge => 'g',
    }
}

/// Renders a trace as an ASCII WatchTool snapshot: one row per processor,
/// `width` columns of time, task-kind shading, `.` for idle.
pub fn render_watchtool(trace: &Trace, procs: u32, width: usize) -> String {
    let span = trace.makespan().max(1);
    let mut rows = vec![vec!['.'; width]; procs as usize];
    for s in &trace.segments {
        if s.proc as usize >= rows.len() {
            continue;
        }
        let c0 = (s.start as u128 * width as u128 / span as u128) as usize;
        let c1 = ((s.end as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
        let hi = c1.max(c0 + 1).min(width);
        for cell in &mut rows[s.proc as usize][c0..hi] {
            *cell = shade(s.kind);
        }
    }
    let mut out = String::new();
    for (p, row) in rows.iter().enumerate() {
        out.push_str(&format!("P{p} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "    time 0..{span} ({} segments)  legend: L=lex S=split i=import d=defparse m=modparse p=procparse a=analyze #=codegen g=merge .=idle\n",
        trace.segments.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(proc: u32, kind: TaskKind, start: u64, end: u64) -> Segment {
        Segment {
            proc,
            kind,
            name: String::from("t"),
            start,
            end,
        }
    }

    #[test]
    fn busy_and_makespan() {
        let t = Trace {
            segments: vec![
                seg(0, TaskKind::Lexor, 0, 10),
                seg(1, TaskKind::ShortCodeGen, 5, 25),
                seg(0, TaskKind::ShortCodeGen, 12, 20),
            ],
        };
        assert_eq!(t.makespan(), 25);
        assert_eq!(t.busy_per_proc(2), vec![18, 20]);
        let u = t.utilization(2);
        assert!((u - 38.0 / 50.0).abs() < 1e-9);
    }

    #[test]
    fn watchtool_renders_rows() {
        let t = Trace {
            segments: vec![
                seg(0, TaskKind::Lexor, 0, 50),
                seg(1, TaskKind::ShortCodeGen, 50, 100),
            ],
        };
        let art = render_watchtool(&t, 2, 20);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("P0 |LLLLLLLLLL"));
        assert!(lines[1].contains('#'));
        assert!(lines[1].starts_with("P1 |.........."));
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let t = Trace::default();
        let art = render_watchtool(&t, 1, 10);
        assert!(art.starts_with("P0 |..........|"));
        assert_eq!(t.utilization(4), 0.0);
    }
}
