//! Wait-for-graph deadlock diagnosis.
//!
//! When an executor's runnable queue drains while blocked tasks remain,
//! the run would hang (threaded) or stall forever at a fixed virtual
//! time (simulator). Both executors instead build a *wait-for graph* —
//! blocked task → awaited event → declared signaler — and, when the
//! graph contains a cycle, panic with the cycle spelled out:
//!
//! ```text
//! procparse(P) -[heading(Q)]-> procparse(Q) -[scope#3]-> procparse(P)
//! ```
//!
//! Nodes are the *blocked* tasks (suspended mid-`wait`, or gated on
//! unsatisfied avoided prereqs). An edge `A -[e]-> B` means A awaits
//! event `e` and B is a blocked task that declared it would signal `e`
//! (or its co-signaler hint, see [`crate::ExecEnv::wait_hinted`]).
//! Signalers that are still runnable are *not* nodes: they can make
//! progress, so a path through them is a scheduling wedge rather than a
//! true cycle — the no-cycle case, which the executors report with the
//! full blocked list instead.
//!
//! Everything is insertion-ordered, so the reported cycle is
//! deterministic for a deterministic task graph.

use std::collections::HashMap;

use ccm2_support::ids::EventId;

/// One blocked task and the events it awaits.
struct Waiter {
    task: String,
    awaits: Vec<EventId>,
}

/// A wait-for graph under construction. Add every blocked task with
/// [`WaitForGraph::add_waiter`], every live declared signal with
/// [`WaitForGraph::add_signaler`], then ask for [`WaitForGraph::find_cycle`].
#[derive(Default)]
pub struct WaitForGraph {
    waiters: Vec<Waiter>,
    /// (event, name of a live task that declared signaling it).
    signalers: Vec<(EventId, String)>,
    /// Display names for events (empty/missing → `event#N`).
    names: HashMap<EventId, String>,
}

impl WaitForGraph {
    /// An empty graph.
    pub fn new() -> WaitForGraph {
        WaitForGraph::default()
    }

    /// Records a blocked task. `awaits` lists the events whose signaling
    /// would unblock it: the awaited event (plus its co-signaler hint)
    /// for a suspended task, the unsatisfied prereqs for a gated one.
    pub fn add_waiter(&mut self, task: impl Into<String>, awaits: Vec<EventId>) {
        self.waiters.push(Waiter {
            task: task.into(),
            awaits,
        });
    }

    /// Records that the (unfinished) task `task` declared it will signal
    /// `event`.
    pub fn add_signaler(&mut self, event: EventId, task: impl Into<String>) {
        self.signalers.push((event, task.into()));
    }

    /// Records an event's display name.
    pub fn name_event(&mut self, event: EventId, name: &str) {
        if !name.is_empty() {
            self.names.insert(event, name.to_string());
        }
    }

    fn event_label(&self, e: EventId) -> String {
        match self.names.get(&e) {
            Some(n) => n.clone(),
            None => format!("event#{}", e.0),
        }
    }

    /// Searches for a cycle among the blocked tasks and renders it as
    /// `A -[e1]-> B -[e2]-> A`. Returns `None` when the blocked tasks
    /// form no cycle (e.g. an eligibility wedge with runnable resolvers,
    /// or a wait on an event no live task signals).
    pub fn find_cycle(&self) -> Option<String> {
        let index: HashMap<&str, usize> = self
            .waiters
            .iter()
            .enumerate()
            .map(|(i, w)| (w.task.as_str(), i))
            .collect();
        // Adjacency in insertion order: waiter i --(event)--> waiter j.
        let mut adj: Vec<Vec<(EventId, usize)>> = vec![Vec::new(); self.waiters.len()];
        for (i, w) in self.waiters.iter().enumerate() {
            for &e in &w.awaits {
                for (ev, signaler) in &self.signalers {
                    if *ev == e {
                        if let Some(&j) = index.get(signaler.as_str()) {
                            if !adj[i].contains(&(e, j)) {
                                adj[i].push((e, j));
                            }
                        }
                    }
                }
            }
        }
        // Iterative DFS with an explicit path, white/gray/black coloring.
        let n = self.waiters.len();
        let mut color = vec![0u8; n];
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            // Path entries: (node, edge label that led here, next edge ix).
            let mut path: Vec<(usize, Option<EventId>, usize)> = vec![(start, None, 0)];
            color[start] = 1;
            while let Some(&mut (node, _, ref mut edge_ix)) = path.last_mut() {
                if *edge_ix >= adj[node].len() {
                    color[node] = 2;
                    path.pop();
                    continue;
                }
                let (via, next) = adj[node][*edge_ix];
                *edge_ix += 1;
                match color[next] {
                    0 => {
                        color[next] = 1;
                        path.push((next, Some(via), 0));
                    }
                    1 => {
                        // Found a cycle: from `next`'s position in the
                        // path around to `node`, closing with `via`.
                        let from = path
                            .iter()
                            .position(|&(nd, ..)| nd == next)
                            .expect("gray node is on the path");
                        let mut out = String::new();
                        for (k, &(nd, ..)) in path.iter().enumerate().skip(from) {
                            if k > from {
                                let (_, via_k, _) = path[k];
                                out.push_str(&format!(
                                    " -[{}]-> ",
                                    self.event_label(via_k.expect("non-root has an edge"))
                                ));
                            }
                            out.push_str(&self.waiters[nd].task);
                        }
                        out.push_str(&format!(
                            " -[{}]-> {}",
                            self.event_label(via),
                            self.waiters[next].task
                        ));
                        return Some(out);
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// One-line summary of every blocked task and what it awaits, for
    /// the no-cycle deadlock report.
    pub fn describe_waiters(&self) -> String {
        self.waiters
            .iter()
            .map(|w| {
                let evs: Vec<String> = w.awaits.iter().map(|&e| self.event_label(e)).collect();
                format!("{} awaits [{}]", w.task, evs.join(", "))
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_task_cycle_is_found_and_named() {
        let mut g = WaitForGraph::new();
        g.add_waiter("A", vec![EventId(1)]);
        g.add_waiter("B", vec![EventId(2)]);
        g.add_signaler(EventId(1), "B");
        g.add_signaler(EventId(2), "A");
        g.name_event(EventId(1), "scope(B)");
        let cycle = g.find_cycle().expect("cycle");
        assert_eq!(cycle, "A -[scope(B)]-> B -[event#2]-> A");
    }

    #[test]
    fn self_cycle_is_found() {
        let mut g = WaitForGraph::new();
        g.add_waiter("A", vec![EventId(7)]);
        g.add_signaler(EventId(7), "A");
        assert_eq!(g.find_cycle().expect("cycle"), "A -[event#7]-> A");
    }

    #[test]
    fn chain_without_cycle_is_none() {
        let mut g = WaitForGraph::new();
        g.add_waiter("A", vec![EventId(1)]);
        g.add_waiter("B", vec![EventId(2)]);
        // B's awaited event is signaled by a runnable task: no node.
        g.add_signaler(EventId(1), "B");
        g.add_signaler(EventId(2), "runnable-resolver");
        assert!(g.find_cycle().is_none());
        assert!(g.describe_waiters().contains("A awaits [event#1]"));
    }

    #[test]
    fn three_task_cycle_reached_through_a_tail() {
        // T -> A -> B -> C -> A: the cycle excludes the tail T.
        let mut g = WaitForGraph::new();
        g.add_waiter("T", vec![EventId(10)]);
        g.add_waiter("A", vec![EventId(1)]);
        g.add_waiter("B", vec![EventId(2)]);
        g.add_waiter("C", vec![EventId(3)]);
        g.add_signaler(EventId(10), "A");
        g.add_signaler(EventId(1), "B");
        g.add_signaler(EventId(2), "C");
        g.add_signaler(EventId(3), "A");
        let cycle = g.find_cycle().expect("cycle");
        assert_eq!(cycle, "A -[event#1]-> B -[event#2]-> C -[event#3]-> A");
    }

    #[test]
    fn gated_task_with_multiple_prereqs_can_close_the_cycle() {
        let mut g = WaitForGraph::new();
        g.add_waiter("gated", vec![EventId(1), EventId(2)]);
        g.add_waiter("waiter", vec![EventId(3)]);
        g.add_signaler(EventId(2), "waiter");
        g.add_signaler(EventId(3), "gated");
        let cycle = g.find_cycle().expect("cycle");
        assert!(
            cycle.contains("gated") && cycle.contains("waiter"),
            "{cycle}"
        );
    }
}
