//! Builtin ("pervasive") names.
//!
//! Paper §2.2: in a conventional compiler, builtins live in a global scope
//! that is the logical parent of the module being compiled; in a concurrent
//! compiler that design would make the *first* reference to a builtin incur
//! DKY waits on every scope out to the global one. Because builtin names
//! cannot be redefined in Modula-2+, the paper instead treats them *as if
//! declared local to every scope* via a modification of the search — no
//! entry replication.
//!
//! [`BuiltinTable`] is that mechanism: one immutable map consulted by the
//! symbol-table search (see [`crate::symtab`]) before it chains outward.

use std::collections::HashMap;

use ccm2_support::intern::{Interner, Symbol};

use crate::types::TypeId;
use crate::value::ConstValue;

/// Builtin procedures and functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `ABS(x)`.
    Abs,
    /// `CAP(ch)`.
    Cap,
    /// `CHR(x)`.
    Chr,
    /// `DEC(v [, n])`.
    Dec,
    /// `DISPOSE(p)`.
    Dispose,
    /// `EXCL(s, x)`.
    Excl,
    /// `FLOAT(x)`.
    Float,
    /// `HALT`.
    Halt,
    /// `HIGH(a)` — high index of an open array.
    High,
    /// `INC(v [, n])`.
    Inc,
    /// `INCL(s, x)`.
    Incl,
    /// `MAX(T)`.
    Max,
    /// `MIN(T)`.
    Min,
    /// `NEW(p)`.
    New,
    /// `ODD(x)`.
    Odd,
    /// `ORD(x)`.
    Ord,
    /// `TRUNC(r)`.
    Trunc,
    /// `VAL(T, x)`.
    Val,
    /// `WriteInt(x, w)` — environment I/O, provided pervasively by the
    /// Modula-2+ runtime in this reproduction.
    WriteInt,
    /// `WriteCard(x, w)`.
    WriteCard,
    /// `WriteChar(c)`.
    WriteChar,
    /// `WriteString(s)`.
    WriteString,
    /// `WriteLn`.
    WriteLn,
    /// `WriteReal(r, w)`.
    WriteReal,
    /// `sin(x)` — builtin math, the paper's own example of a builtin name.
    Sin,
    /// `cos(x)`.
    Cos,
    /// `sqrt(x)` — the paper's other example.
    Sqrt,
    /// `exp(x)`.
    Exp,
    /// `ln(x)`.
    Ln,
}

impl Builtin {
    /// All builtins with their source-level names.
    pub const ALL: &'static [(&'static str, Builtin)] = &[
        ("ABS", Builtin::Abs),
        ("CAP", Builtin::Cap),
        ("CHR", Builtin::Chr),
        ("DEC", Builtin::Dec),
        ("DISPOSE", Builtin::Dispose),
        ("EXCL", Builtin::Excl),
        ("FLOAT", Builtin::Float),
        ("HALT", Builtin::Halt),
        ("HIGH", Builtin::High),
        ("INC", Builtin::Inc),
        ("INCL", Builtin::Incl),
        ("MAX", Builtin::Max),
        ("MIN", Builtin::Min),
        ("NEW", Builtin::New),
        ("ODD", Builtin::Odd),
        ("ORD", Builtin::Ord),
        ("TRUNC", Builtin::Trunc),
        ("VAL", Builtin::Val),
        ("WriteInt", Builtin::WriteInt),
        ("WriteCard", Builtin::WriteCard),
        ("WriteChar", Builtin::WriteChar),
        ("WriteString", Builtin::WriteString),
        ("WriteLn", Builtin::WriteLn),
        ("WriteReal", Builtin::WriteReal),
        ("sin", Builtin::Sin),
        ("cos", Builtin::Cos),
        ("sqrt", Builtin::Sqrt),
        ("exp", Builtin::Exp),
        ("ln", Builtin::Ln),
    ];
}

/// What a builtin name denotes.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BuiltinDef {
    /// A pervasive constant (`TRUE`, `FALSE`, `NIL`).
    Const(ConstValue, TypeId),
    /// A pervasive type name (`INTEGER`, `REAL`, …).
    Type(TypeId),
    /// A builtin procedure/function.
    Proc(Builtin),
}

/// The pervasive-name table consulted by symbol search at every scope.
///
/// # Examples
///
/// ```
/// use ccm2_support::Interner;
/// use ccm2_sema::builtins::{BuiltinDef, BuiltinTable};
/// use ccm2_sema::types::TypeId;
///
/// let interner = Interner::new();
/// let table = BuiltinTable::new(&interner);
/// let sym = interner.intern("INTEGER");
/// assert_eq!(table.lookup(sym), Some(BuiltinDef::Type(TypeId::INTEGER)));
/// assert!(table.lookup(interner.intern("NotABuiltin")).is_none());
/// ```
#[derive(Debug)]
pub struct BuiltinTable {
    map: HashMap<Symbol, BuiltinDef>,
}

impl BuiltinTable {
    /// Builds the table, interning every pervasive name in `interner`.
    pub fn new(interner: &Interner) -> BuiltinTable {
        let mut map = HashMap::new();
        map.insert(
            interner.intern("TRUE"),
            BuiltinDef::Const(ConstValue::Bool(true), TypeId::BOOLEAN),
        );
        map.insert(
            interner.intern("FALSE"),
            BuiltinDef::Const(ConstValue::Bool(false), TypeId::BOOLEAN),
        );
        map.insert(
            interner.intern("NIL"),
            BuiltinDef::Const(ConstValue::Nil, TypeId::NILTYPE),
        );
        for (name, id) in [
            ("INTEGER", TypeId::INTEGER),
            ("CARDINAL", TypeId::CARDINAL),
            ("BOOLEAN", TypeId::BOOLEAN),
            ("CHAR", TypeId::CHAR),
            ("REAL", TypeId::REAL),
            ("BITSET", TypeId::BITSET),
            ("PROC", TypeId::PROC),
            ("ADDRESS", TypeId::ADDRESS),
        ] {
            map.insert(interner.intern(name), BuiltinDef::Type(id));
        }
        for &(name, b) in Builtin::ALL {
            map.insert(interner.intern(name), BuiltinDef::Proc(b));
        }
        BuiltinTable { map }
    }

    /// Looks up a pervasive name.
    pub fn lookup(&self, name: Symbol) -> Option<BuiltinDef> {
        self.map.get(&name).copied()
    }

    /// Returns `true` if `name` is pervasive (and therefore cannot be
    /// redeclared — checked during declaration analysis).
    pub fn contains(&self, name: Symbol) -> bool {
        self.map.contains_key(&name)
    }

    /// Number of pervasive names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_types_present() {
        let i = Interner::new();
        let t = BuiltinTable::new(&i);
        assert_eq!(
            t.lookup(i.intern("TRUE")),
            Some(BuiltinDef::Const(ConstValue::Bool(true), TypeId::BOOLEAN))
        );
        assert_eq!(
            t.lookup(i.intern("NIL")),
            Some(BuiltinDef::Const(ConstValue::Nil, TypeId::NILTYPE))
        );
        assert_eq!(
            t.lookup(i.intern("REAL")),
            Some(BuiltinDef::Type(TypeId::REAL))
        );
    }

    #[test]
    fn paper_examples_sin_and_sqrt_are_builtin() {
        let i = Interner::new();
        let t = BuiltinTable::new(&i);
        assert_eq!(
            t.lookup(i.intern("sin")),
            Some(BuiltinDef::Proc(Builtin::Sin))
        );
        assert_eq!(
            t.lookup(i.intern("sqrt")),
            Some(BuiltinDef::Proc(Builtin::Sqrt))
        );
    }

    #[test]
    fn case_sensitive() {
        let i = Interner::new();
        let t = BuiltinTable::new(&i);
        assert!(t.contains(i.intern("ORD")));
        assert!(!t.contains(i.intern("ord")));
    }

    #[test]
    fn all_proc_names_resolve() {
        let i = Interner::new();
        let t = BuiltinTable::new(&i);
        for &(name, b) in Builtin::ALL {
            assert_eq!(t.lookup(i.intern(name)), Some(BuiltinDef::Proc(b)));
        }
    }
}
