//! Compile-time evaluation of constant expressions.
//!
//! Constant expressions appear in `CONST` declarations, subrange/array
//! bounds, case labels and `FOR` steps. Evaluation resolves names through
//! the concurrent symbol tables, so it participates fully in the DKY
//! machinery — an imported constant may force a DKY wait on the exporting
//! definition module's table, which is precisely the declaration-phase
//! information flow the paper describes in §4.4.

use ccm2_support::diag::Diagnostic;
use ccm2_support::ids::ScopeId;
use ccm2_support::source::Span;

use ccm2_syntax::ast::{BinOp, Expr, ExprKind, SetElem, UnOp};

use crate::builtins::{Builtin, BuiltinDef};
use crate::symtab::{LookupResult, SymbolKind};
use crate::types::{Type, TypeId};
use crate::value::ConstValue;
use crate::Sema;

/// Evaluates a constant expression in `scope`.
///
/// Returns the value and its type, or `None` after reporting a diagnostic.
pub fn eval_const(sema: &Sema, scope: ScopeId, expr: &Expr) -> Option<(ConstValue, TypeId)> {
    let ev = Evaluator { sema, scope };
    ev.eval(expr)
}

struct Evaluator<'a> {
    sema: &'a Sema,
    scope: ScopeId,
}

impl<'a> Evaluator<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> Option<(ConstValue, TypeId)> {
        let file = self.sema.tables.scope(self.scope).file();
        self.sema.sink.report(Diagnostic::error(file, span, msg));
        None
    }

    fn eval(&self, expr: &Expr) -> Option<(ConstValue, TypeId)> {
        match &expr.kind {
            ExprKind::IntLit(v) => Some((ConstValue::Int(*v), TypeId::INTEGER)),
            ExprKind::RealLit(bits) => Some((ConstValue::Real(*bits), TypeId::REAL)),
            ExprKind::CharLit(c) => Some((ConstValue::Char(*c), TypeId::CHAR)),
            ExprKind::StrLit(s) => Some((ConstValue::Str(*s), TypeId::STRING)),
            ExprKind::Name(id) => match self.sema.resolver.lookup(self.scope, id.name) {
                Some(LookupResult::Entry(e)) => self.entry_value(&e, expr.span),
                Some(LookupResult::Builtin(BuiltinDef::Const(v, ty))) => Some((v, ty)),
                Some(LookupResult::Builtin(_)) => self.err(expr.span, "builtin is not a constant"),
                None => self.err(
                    expr.span,
                    format!(
                        "undeclared identifier `{}` in constant expression",
                        self.sema.interner.resolve(id.name)
                    ),
                ),
            },
            ExprKind::Field { base, field } => {
                // Qualified constant `Module.c`.
                let ExprKind::Name(mod_id) = &base.kind else {
                    return self.err(expr.span, "constant expression too complex");
                };
                match self.sema.resolver.lookup(self.scope, mod_id.name) {
                    Some(LookupResult::Entry(e)) => match e.kind {
                        SymbolKind::Module { scope } => {
                            match self.sema.resolver.lookup_qualified(scope, field.name) {
                                Some(e) => self.entry_value(&e, expr.span),
                                None => self.err(
                                    expr.span,
                                    format!(
                                        "`{}` is not exported by `{}`",
                                        self.sema.interner.resolve(field.name),
                                        self.sema.interner.resolve(mod_id.name)
                                    ),
                                ),
                            }
                        }
                        _ => self.err(expr.span, "constant expression too complex"),
                    },
                    _ => self.err(
                        expr.span,
                        format!(
                            "undeclared identifier `{}`",
                            self.sema.interner.resolve(mod_id.name)
                        ),
                    ),
                }
            }
            ExprKind::Unary { op, operand } => {
                let (v, ty) = self.eval(operand)?;
                match (op, v) {
                    (UnOp::Neg, ConstValue::Int(x)) => {
                        Some((ConstValue::Int(x.wrapping_neg()), ty))
                    }
                    (UnOp::Neg, ConstValue::Real(_)) => {
                        Some((ConstValue::from_real(-v.as_real().expect("real")), ty))
                    }
                    (UnOp::Pos, ConstValue::Int(_) | ConstValue::Real(_)) => Some((v, ty)),
                    (UnOp::Not, ConstValue::Bool(b)) => {
                        Some((ConstValue::Bool(!b), TypeId::BOOLEAN))
                    }
                    _ => self.err(expr.span, "invalid operand in constant expression"),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, ta) = self.eval(lhs)?;
                let (b, _tb) = self.eval(rhs)?;
                self.binary(*op, a, b, ta, expr.span)
            }
            ExprKind::SetCons { elems, .. } => {
                let mut mask: u64 = 0;
                for el in elems {
                    match el {
                        SetElem::Single(e) => {
                            let (v, _) = self.eval(e)?;
                            let Some(o) = v.ordinal() else {
                                return self.err(e.span, "set element must be ordinal");
                            };
                            if !(0..64).contains(&o) {
                                return self.err(e.span, "set element out of range 0..63");
                            }
                            mask |= 1 << o;
                        }
                        SetElem::Range(lo, hi) => {
                            let (lv, _) = self.eval(lo)?;
                            let (hv, _) = self.eval(hi)?;
                            let (Some(l), Some(h)) = (lv.ordinal(), hv.ordinal()) else {
                                return self.err(lo.span, "set range must be ordinal");
                            };
                            if !(0..64).contains(&l) || !(0..64).contains(&h) || l > h {
                                return self.err(lo.span, "bad set range");
                            }
                            for k in l..=h {
                                mask |= 1 << k;
                            }
                        }
                    }
                }
                Some((ConstValue::Set(mask), TypeId::BITSET))
            }
            ExprKind::Call { callee, args } => self.builtin_call(callee, args, expr.span),
            _ => self.err(expr.span, "expression is not constant"),
        }
    }

    fn entry_value(
        &self,
        e: &crate::symtab::SymbolEntry,
        span: Span,
    ) -> Option<(ConstValue, TypeId)> {
        match &e.kind {
            SymbolKind::Const { value, ty } => Some((*value, *ty)),
            SymbolKind::EnumConst { ty, value } => Some((ConstValue::Int(*value), *ty)),
            _ => self.err(
                span,
                format!("`{}` is not a constant", self.sema.interner.resolve(e.name)),
            ),
        }
    }

    fn binary(
        &self,
        op: BinOp,
        a: ConstValue,
        b: ConstValue,
        ta: TypeId,
        span: Span,
    ) -> Option<(ConstValue, TypeId)> {
        use ConstValue::*;
        let out = match (op, a, b) {
            (BinOp::Add, Int(x), Int(y)) => (Int(x.wrapping_add(y)), ta),
            (BinOp::Sub, Int(x), Int(y)) => (Int(x.wrapping_sub(y)), ta),
            (BinOp::Mul, Int(x), Int(y)) => (Int(x.wrapping_mul(y)), ta),
            (BinOp::IntDiv, Int(x), Int(y)) => {
                if y == 0 {
                    return self.err(span, "division by zero in constant expression");
                }
                (Int(x.div_euclid(y)), ta)
            }
            (BinOp::Modulo, Int(x), Int(y)) => {
                if y == 0 {
                    return self.err(span, "division by zero in constant expression");
                }
                (Int(x.rem_euclid(y)), ta)
            }
            (BinOp::Add, Real(_), Real(_)) => (
                ConstValue::from_real(a.as_real().expect("real") + b.as_real().expect("real")),
                TypeId::REAL,
            ),
            (BinOp::Sub, Real(_), Real(_)) => (
                ConstValue::from_real(a.as_real().expect("real") - b.as_real().expect("real")),
                TypeId::REAL,
            ),
            (BinOp::Mul, Real(_), Real(_)) => (
                ConstValue::from_real(a.as_real().expect("real") * b.as_real().expect("real")),
                TypeId::REAL,
            ),
            (BinOp::RealDiv, Real(_), Real(_)) => {
                let d = b.as_real().expect("real");
                if d == 0.0 {
                    return self.err(span, "division by zero in constant expression");
                }
                (
                    ConstValue::from_real(a.as_real().expect("real") / d),
                    TypeId::REAL,
                )
            }
            (BinOp::And, Bool(x), Bool(y)) => (Bool(x && y), TypeId::BOOLEAN),
            (BinOp::Or, Bool(x), Bool(y)) => (Bool(x || y), TypeId::BOOLEAN),
            (BinOp::Add, Set(x), Set(y)) => (Set(x | y), ta),
            (BinOp::Sub, Set(x), Set(y)) => (Set(x & !y), ta),
            (BinOp::Mul, Set(x), Set(y)) => (Set(x & y), ta),
            (BinOp::RealDiv, Set(x), Set(y)) => (Set(x ^ y), ta),
            (BinOp::In, _, Set(y)) => {
                let Some(o) = a.ordinal() else {
                    return self.err(span, "IN requires an ordinal");
                };
                (
                    Bool((0..64).contains(&o) && (y >> o) & 1 == 1),
                    TypeId::BOOLEAN,
                )
            }
            (BinOp::Eq, _, _) => (Bool(a == b), TypeId::BOOLEAN),
            (BinOp::Neq, _, _) => (Bool(a != b), TypeId::BOOLEAN),
            (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, _, _) => {
                let cmp = match (a, b) {
                    (Int(x), Int(y)) => x.partial_cmp(&y),
                    (Char(x), Char(y)) => x.partial_cmp(&y),
                    (Bool(x), Bool(y)) => x.partial_cmp(&y),
                    (Real(_), Real(_)) => a
                        .as_real()
                        .expect("real")
                        .partial_cmp(&b.as_real().expect("real")),
                    _ => None,
                };
                let Some(ord) = cmp else {
                    return self.err(span, "incomparable constant operands");
                };
                let r = match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                (Bool(r), TypeId::BOOLEAN)
            }
            _ => return self.err(span, "invalid operands in constant expression"),
        };
        Some(out)
    }

    fn builtin_call(
        &self,
        callee: &Expr,
        args: &[Expr],
        span: Span,
    ) -> Option<(ConstValue, TypeId)> {
        let ExprKind::Name(id) = &callee.kind else {
            return self.err(span, "expression is not constant");
        };
        let Some(LookupResult::Builtin(BuiltinDef::Proc(b))) =
            self.sema.resolver.lookup(self.scope, id.name)
        else {
            return self.err(span, "only builtin functions are allowed in constants");
        };
        // MIN/MAX take a *type* argument.
        if matches!(b, Builtin::Min | Builtin::Max) {
            let [arg] = args else {
                return self.err(span, "MIN/MAX take one type argument");
            };
            let ExprKind::Name(tn) = &arg.kind else {
                return self.err(span, "MIN/MAX take a type name");
            };
            let ty = match self.sema.resolver.lookup(self.scope, tn.name) {
                Some(LookupResult::Builtin(BuiltinDef::Type(t))) => t,
                Some(LookupResult::Entry(e)) => match e.kind {
                    SymbolKind::TypeName { ty } => ty,
                    _ => return self.err(span, "MIN/MAX take a type name"),
                },
                _ => return self.err(span, "MIN/MAX take a type name"),
            };
            let Some((lo, hi)) = self.sema.types.ordinal_bounds(ty) else {
                return self.err(span, "MIN/MAX require an ordinal type");
            };
            let v = if b == Builtin::Min { lo } else { hi };
            let out_ty = self.sema.types.strip_subrange(ty);
            return Some(match self.sema.types.get(out_ty) {
                Type::Char => (ConstValue::Char(v as u8), TypeId::CHAR),
                Type::Boolean => (ConstValue::Bool(v != 0), TypeId::BOOLEAN),
                _ => (ConstValue::Int(v), out_ty),
            });
        }
        let [arg] = args else {
            return self.err(span, "builtin takes one argument in constants");
        };
        let (v, vt) = self.eval(arg)?;
        let out = match (b, v) {
            (Builtin::Abs, ConstValue::Int(x)) => (ConstValue::Int(x.abs()), vt),
            (Builtin::Abs, ConstValue::Real(_)) => (
                ConstValue::from_real(v.as_real().expect("real").abs()),
                TypeId::REAL,
            ),
            (Builtin::Ord, _) => match v.ordinal() {
                Some(o) => (ConstValue::Int(o), TypeId::CARDINAL),
                None => return self.err(span, "ORD requires an ordinal"),
            },
            (Builtin::Chr, ConstValue::Int(x)) if (0..=255).contains(&x) => {
                (ConstValue::Char(x as u8), TypeId::CHAR)
            }
            (Builtin::Cap, ConstValue::Char(c)) => {
                (ConstValue::Char(c.to_ascii_uppercase()), TypeId::CHAR)
            }
            (Builtin::Odd, ConstValue::Int(x)) => {
                (ConstValue::Bool(x.rem_euclid(2) == 1), TypeId::BOOLEAN)
            }
            (Builtin::Trunc, ConstValue::Real(_)) => (
                ConstValue::Int(v.as_real().expect("real") as i64),
                TypeId::CARDINAL,
            ),
            (Builtin::Float, ConstValue::Int(x)) => (ConstValue::from_real(x as f64), TypeId::REAL),
            _ => return self.err(span, "builtin not usable in constant expression"),
        };
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::{DkyStrategy, NullWaiter, ScopeKind};
    use crate::Sema;
    use ccm2_support::diag::DiagnosticSink;
    use ccm2_support::intern::Interner;
    use ccm2_support::source::{FileId, SourceMap};
    use ccm2_support::work::NullMeter;
    use ccm2_syntax::lexer::lex_file;
    use std::sync::Arc;

    fn eval_src(src: &str) -> (Option<(ConstValue, TypeId)>, Arc<DiagnosticSink>) {
        let interner = Arc::new(Interner::new());
        let sink = Arc::new(DiagnosticSink::new());
        let sema = Sema::new(
            Arc::clone(&interner),
            Arc::clone(&sink),
            DkyStrategy::Skeptical,
            Arc::new(NullWaiter),
            Arc::new(NullMeter),
        );
        let scope =
            sema.tables
                .new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        sema.tables.mark_complete(scope);
        let map = SourceMap::new();
        let f = map.add("c.frag", src);
        let toks = lex_file(&f, &interner, &sink);
        let expr = ccm2_syntax::parser::parse_const_expr(&toks, &interner, &sink)
            .expect("const expr parses");
        (eval_const(&sema, scope, &expr), sink)
    }

    #[test]
    fn arithmetic() {
        let (v, sink) = eval_src("2 + 3 * 4");
        assert_eq!(v, Some((ConstValue::Int(14), TypeId::INTEGER)));
        assert!(!sink.has_errors());
    }

    #[test]
    fn div_and_mod() {
        let (v, _) = eval_src("17 DIV 5");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Int(3)));
        let (v, _) = eval_src("17 MOD 5");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Int(2)));
    }

    #[test]
    fn division_by_zero_reports() {
        let (v, sink) = eval_src("1 DIV 0");
        assert!(v.is_none());
        assert!(sink.has_errors());
    }

    #[test]
    fn reals() {
        let (v, _) = eval_src("1.5 * 2.0");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::from_real(3.0)));
    }

    #[test]
    fn booleans_and_comparisons() {
        let (v, _) = eval_src("(1 < 2) AND NOT FALSE");
        assert_eq!(v, Some((ConstValue::Bool(true), TypeId::BOOLEAN)));
        let (v, _) = eval_src("3 # 3");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Bool(false)));
    }

    #[test]
    fn sets() {
        let (v, _) = eval_src("{1, 3..5}");
        assert_eq!(v, Some((ConstValue::Set(0b111010), TypeId::BITSET)));
        let (v, _) = eval_src("3 IN {1, 3}");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Bool(true)));
    }

    #[test]
    fn builtin_functions() {
        let (v, _) = eval_src("ABS(-4)");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Int(4)));
        let (v, _) = eval_src("ORD('A')");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Int(65)));
        let (v, _) = eval_src("CHR(66)");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Char(b'B')));
        let (v, _) = eval_src("MAX(CHAR)");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Char(255)));
        let (v, _) = eval_src("TRUNC(2.9)");
        assert_eq!(v.map(|x| x.0), Some(ConstValue::Int(2)));
    }

    #[test]
    fn non_constant_reports() {
        let (v, sink) = eval_src("undeclaredThing + 1");
        assert!(v.is_none());
        assert!(sink.has_errors());
    }
}
