//! Declaration semantic analysis.
//!
//! One invocation of [`declare_decls`] processes the declaration part of a
//! single scope — exactly the work of the paper's *Parser/Declarations
//! Analyzer* task (§3): constants are evaluated, types elaborated,
//! variables given frame slots, and procedure headings processed.
//!
//! Procedure headings implement the §2.4 information-flow alternatives:
//!
//! * [`HeadingMode::CopyToChild`] (alternative 1, the paper's choice): the
//!   parent elaborates the heading and *copies* the parameter entries into
//!   the child scope, then fires the `heading_done` hook — the avoided
//!   event that releases the child stream's tasks;
//! * [`HeadingMode::Reprocess`] (alternative 3, the ~3% slower ablation):
//!   the parent only inserts the procedure entry; the child re-elaborates
//!   the heading itself via [`declare_own_params`], producing identical
//!   entries by construction;
//! * [`HeadingMode::Dual`]: both flows — the parent copies entries into
//!   the child exactly as under `CopyToChild`, and the child additionally
//!   re-elaborates the heading via [`verify_heading`] as a cross-check.
//!   The verify step runs where `Reprocess` already safely runs its
//!   child-side work, so it inherits that mode's deadlock-freedom.
//!
//! (Alternative 2 — child processes the heading and copies to the parent —
//! is rejected by the paper as deadlock-prone and is not implemented;
//! `Dual` is *not* alternative 2: entry ownership stays with the parent.)

use ccm2_support::diag::Diagnostic;
use ccm2_support::ids::{ScopeId, StreamId};
use ccm2_support::source::Span;
use ccm2_support::work::Work;

use ccm2_syntax::ast::{Decl, ProcBody, ProcHeading, TypeExpr, TypeExprKind};

use crate::builtins::BuiltinDef;
use crate::consteval::eval_const;
use crate::symtab::{
    LookupResult, ParamSig, ProcInfo, ProcSig, ScopeKind, SymbolEntry, SymbolKind, VarInfo,
};
use crate::types::{Type, TypeId};
use crate::Sema;

/// Which §2.4 procedure-heading information flow to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HeadingMode {
    /// Alternative 1: parent processes the heading, copies entries into
    /// the child scope (the paper's choice).
    #[default]
    CopyToChild,
    /// Alternative 3: parent and child each process the heading.
    Reprocess,
    /// Both flows: parent copies entries as under [`CopyToChild`]
    /// *and* the child re-elaborates the heading as a cross-check
    /// ([`verify_heading`]). Clean sources produce byte-identical
    /// output to `CopyToChild`.
    ///
    /// [`CopyToChild`]: HeadingMode::CopyToChild
    Dual,
}

impl HeadingMode {
    /// Stable tag mixed into the incremental environment digest so
    /// cache entries recorded under one heading mode are never spliced
    /// into a compile running another (the child-side work each mode
    /// does — none, re-declare, verify — differs in metering and
    /// diagnostics even when entries agree).
    pub fn cache_tag(self) -> u8 {
        match self {
            HeadingMode::CopyToChild => 0,
            HeadingMode::Reprocess => 1,
            HeadingMode::Dual => 2,
        }
    }
}

/// A procedure discovered during declaration analysis of a scope, ready
/// for its own declaration analysis and, later, statement analysis /
/// code generation.
#[derive(Clone, Debug)]
pub struct PendingProc {
    /// The heading as written.
    pub heading: ProcHeading,
    /// Where the body lives.
    pub body: ProcBody,
    /// The procedure's own scope.
    pub scope: ScopeId,
    /// The dotted code-unit name (`M.P.Q`).
    pub code_name: ccm2_support::intern::Symbol,
    /// The elaborated signature.
    pub sig: ProcSig,
}

/// Hooks connecting declaration analysis to the execution environment.
pub trait DeclareHooks {
    /// Maps a splitter stream id to the scope pre-created for it.
    fn scope_for_stream(&self, stream: StreamId) -> ScopeId;
    /// Called when a procedure's heading has been fully processed in the
    /// parent scope (the child's avoided event, §2.4). Receives the
    /// elaborated signature and code name so the child stream's
    /// code-generation task can use them without re-elaborating.
    fn heading_done(&self, scope: ScopeId, code_name: ccm2_support::intern::Symbol, sig: &ProcSig);
}

/// Hooks for sequential compilation: child scopes are created on demand
/// and nothing is signaled.
pub struct LocalHooks<'a> {
    sema: &'a Sema,
}

impl<'a> LocalHooks<'a> {
    /// Creates hooks over `sema`.
    pub fn new(sema: &'a Sema) -> LocalHooks<'a> {
        LocalHooks { sema }
    }
}

impl DeclareHooks for LocalHooks<'_> {
    fn scope_for_stream(&self, stream: StreamId) -> ScopeId {
        // A sequential compilation never sees remote bodies.
        unreachable!("sequential compilation has no stream {stream}");
    }
    fn heading_done(
        &self,
        _scope: ScopeId,
        _code_name: ccm2_support::intern::Symbol,
        _sig: &ProcSig,
    ) {
    }
}

impl std::fmt::Debug for LocalHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalHooks(tables = {:?})", self.sema.tables)
    }
}

/// Elaborates a type expression in `scope`.
///
/// `forward` lists type names declared *later* in the same declaration
/// part; `POINTER TO`-references to them are created with a pending
/// pointee and patched by [`declare_decls`] once the target exists (the
/// only forward reference Modula-2 allows).
pub fn elaborate_type(
    sema: &Sema,
    scope: ScopeId,
    texpr: &TypeExpr,
    forward: &mut ForwardRefs,
) -> TypeId {
    sema.meter.charge(Work::DeclAnalyze, 1);
    let file = sema.tables.scope(scope).file();
    let err = |span: Span, msg: String| {
        sema.sink.report(Diagnostic::error(file, span, msg));
        TypeId::ERROR
    };
    match &texpr.kind {
        TypeExprKind::Named { module, name } => {
            if let Some(m) = module {
                // Qualified type name `Mod.T`.
                match sema.resolver.lookup(scope, m.name) {
                    Some(LookupResult::Entry(e)) => match e.kind {
                        SymbolKind::Module { scope: mscope } => {
                            match sema.resolver.lookup_qualified(mscope, name.name) {
                                Some(e) => match e.kind {
                                    SymbolKind::TypeName { ty } => ty,
                                    _ => err(
                                        name.span,
                                        format!(
                                            "`{}` is not a type",
                                            sema.interner.resolve(name.name)
                                        ),
                                    ),
                                },
                                None => err(
                                    name.span,
                                    format!(
                                        "`{}` is not exported by `{}`",
                                        sema.interner.resolve(name.name),
                                        sema.interner.resolve(m.name)
                                    ),
                                ),
                            }
                        }
                        _ => err(
                            m.span,
                            format!("`{}` is not a module", sema.interner.resolve(m.name)),
                        ),
                    },
                    _ => err(
                        m.span,
                        format!("undeclared module `{}`", sema.interner.resolve(m.name)),
                    ),
                }
            } else {
                match sema.resolver.lookup(scope, name.name) {
                    Some(LookupResult::Entry(e)) => match e.kind {
                        SymbolKind::TypeName { ty } => ty,
                        _ => err(
                            name.span,
                            format!("`{}` is not a type", sema.interner.resolve(name.name)),
                        ),
                    },
                    Some(LookupResult::Builtin(BuiltinDef::Type(ty))) => ty,
                    Some(LookupResult::Builtin(_)) => err(
                        name.span,
                        format!("`{}` is not a type", sema.interner.resolve(name.name)),
                    ),
                    None => err(
                        name.span,
                        format!("undeclared type `{}`", sema.interner.resolve(name.name)),
                    ),
                }
            }
        }
        TypeExprKind::Array { index, elem } => {
            let index = elaborate_type(sema, scope, index, forward);
            let elem = elaborate_type(sema, scope, elem, forward);
            if !sema.types.is_ordinal(index) {
                return err(texpr.span, "array index type must be ordinal".into());
            }
            sema.types.add(Type::Array { index, elem })
        }
        TypeExprKind::OpenArray { elem } => {
            let elem = elaborate_type(sema, scope, elem, forward);
            sema.types.add(Type::OpenArray { elem })
        }
        TypeExprKind::Record { fields } => {
            let mut out = Vec::new();
            for section in fields {
                let ty = elaborate_type(sema, scope, &section.ty, forward);
                for n in &section.names {
                    if out.iter().any(|(f, _)| *f == n.name) {
                        sema.sink.report(Diagnostic::error(
                            file,
                            n.span,
                            format!("duplicate record field `{}`", sema.interner.resolve(n.name)),
                        ));
                        continue;
                    }
                    out.push((n.name, ty));
                }
            }
            sema.types.add(Type::Record { fields: out })
        }
        TypeExprKind::Pointer { to } => {
            // `POINTER TO Name` may forward-reference a type declared
            // later in the same declaration part (the one forward
            // reference Modula-2 allows). With incremental declaration
            // the later names are unknowable, so every unqualified named
            // pointee is deferred: the pointer is created pending and
            // patched when the declaration part finishes.
            if let TypeExprKind::Named { module: None, name } = &to.kind {
                let ptr = sema.types.add(Type::Pointer {
                    to: TypeId::PENDING,
                });
                forward.add_patch(*name, ptr);
                return ptr;
            }
            let to = elaborate_type(sema, scope, to, forward);
            sema.types.add(Type::Pointer { to })
        }
        TypeExprKind::Set { of } => {
            let of_id = elaborate_type(sema, scope, of, forward);
            match sema.types.ordinal_bounds(of_id) {
                Some((lo, hi)) if lo >= 0 && hi <= 63 => sema.types.add(Type::Set { of: of_id }),
                Some(_) => err(texpr.span, "set base ordinals must lie in 0..63".into()),
                None => err(texpr.span, "set base type must be ordinal".into()),
            }
        }
        TypeExprKind::Enumeration { members } => {
            let ty = sema.types.add(Type::Enumeration {
                members: members.iter().map(|m| m.name).collect(),
            });
            // Enumeration constants are declared in the enclosing scope.
            for (ord, m) in members.iter().enumerate() {
                let entry = SymbolEntry {
                    name: m.name,
                    kind: SymbolKind::EnumConst {
                        ty,
                        value: ord as i64,
                    },
                    span: m.span,
                };
                if let Err(prev) = sema.tables.insert(scope, entry) {
                    report_redeclaration(sema, file, m.span, m.name, &prev);
                }
            }
            ty
        }
        TypeExprKind::Subrange { lo, hi } => {
            let lo_v = eval_const(sema, scope, lo);
            let hi_v = eval_const(sema, scope, hi);
            match (lo_v, hi_v) {
                (Some((lv, lt)), Some((hv, _))) => {
                    let (Some(l), Some(h)) = (lv.ordinal(), hv.ordinal()) else {
                        return err(texpr.span, "subrange bounds must be ordinal".into());
                    };
                    if l > h {
                        return err(texpr.span, "empty subrange".into());
                    }
                    let base = sema.types.strip_subrange(lt);
                    sema.types.add(Type::Subrange { base, lo: l, hi: h })
                }
                _ => TypeId::ERROR,
            }
        }
        TypeExprKind::ProcType { params, ret } => {
            let params = params
                .iter()
                .map(|(is_var, t)| (*is_var, elaborate_type(sema, scope, t, forward)))
                .collect();
            let ret = ret
                .as_ref()
                .map(|t| elaborate_type(sema, scope, t, forward));
            sema.types.add(Type::Proc { params, ret })
        }
    }
}

/// Deferred pointer-pointee patches: every `POINTER TO Name` with an
/// unqualified pointee is created pending and resolved when its
/// declaration part finishes (Modula-2's one legal forward reference).
#[derive(Debug, Default)]
pub struct ForwardRefs {
    patches: Vec<(ccm2_syntax::ast::Ident, TypeId)>,
}

impl ForwardRefs {
    fn add_patch(&mut self, name: ccm2_syntax::ast::Ident, ptr: TypeId) {
        self.patches.push((name, ptr));
    }
}

/// Resolves every deferred pointer patch in `forward` by looking the
/// pointee names up from `scope` (the table now holds everything the
/// declaration part declared). Reports undeclared pointees.
pub fn resolve_patches(sema: &Sema, scope: ScopeId, forward: &mut ForwardRefs) {
    let file = sema.tables.scope(scope).file();
    for (name, ptr) in forward.patches.drain(..) {
        let target = match sema.resolver.lookup(scope, name.name) {
            Some(LookupResult::Entry(e)) => match e.kind {
                SymbolKind::TypeName { ty } => Some(ty),
                _ => None,
            },
            Some(LookupResult::Builtin(BuiltinDef::Type(ty))) => Some(ty),
            _ => None,
        };
        match target {
            Some(ty) => sema.types.patch_pointer(ptr, ty),
            None => {
                sema.types.patch_pointer(ptr, TypeId::ERROR);
                sema.sink.report(Diagnostic::error(
                    file,
                    name.span,
                    format!(
                        "undeclared pointer target type `{}`",
                        sema.interner.resolve(name.name)
                    ),
                ));
            }
        }
    }
}

fn report_redeclaration(
    sema: &Sema,
    file: ccm2_support::source::FileId,
    span: Span,
    name: ccm2_support::intern::Symbol,
    _prev: &SymbolEntry,
) {
    sema.sink.report(Diagnostic::error(
        file,
        span,
        format!(
            "`{}` is already declared in this scope",
            sema.interner.resolve(name)
        ),
    ));
}

/// Elaborates a procedure heading in `resolve_scope` (the parent), giving
/// its signature.
pub fn elaborate_heading(sema: &Sema, resolve_scope: ScopeId, heading: &ProcHeading) -> ProcSig {
    let mut forward = ForwardRefs::default();
    let mut params = Vec::new();
    for section in &heading.params {
        let ty = elaborate_type(sema, resolve_scope, &section.ty, &mut forward);
        for _ in &section.names {
            params.push(ParamSig {
                is_var: section.is_var,
                ty,
            });
        }
    }
    let ret = heading
        .ret
        .as_ref()
        .map(|t| elaborate_type(sema, resolve_scope, t, &mut forward));
    resolve_patches(sema, resolve_scope, &mut forward);
    ProcSig { params, ret }
}

/// Inserts the formal-parameter entries of `heading` into `proc_scope`,
/// with types resolved in `resolve_scope`.
///
/// Under [`HeadingMode::CopyToChild`] the parent calls this with
/// `resolve_scope` = parent; under [`HeadingMode::Reprocess`] the child
/// calls [`declare_own_params`], which resolves through its own chain —
/// producing identical entries because parameter slots are assigned in
/// declaration order either way.
pub fn declare_params_into(
    sema: &Sema,
    proc_scope: ScopeId,
    resolve_scope: ScopeId,
    heading: &ProcHeading,
) -> ProcSig {
    let table = sema.tables.scope(proc_scope);
    let file = table.file();
    let level = table.level();
    let mut forward = ForwardRefs::default();
    let mut params = Vec::new();
    for section in &heading.params {
        let ty = elaborate_type(sema, resolve_scope, &section.ty, &mut forward);
        for n in &section.names {
            let slot = table.alloc_slot();
            params.push(ParamSig {
                is_var: section.is_var,
                ty,
            });
            let entry = SymbolEntry {
                name: n.name,
                kind: SymbolKind::Var(VarInfo {
                    ty,
                    slot,
                    level,
                    is_var_param: section.is_var,
                    module: None,
                }),
                span: n.span,
            };
            if let Err(prev) = sema.tables.insert(proc_scope, entry) {
                report_redeclaration(sema, file, n.span, n.name, &prev);
            }
        }
    }
    let ret = heading
        .ret
        .as_ref()
        .map(|t| elaborate_type(sema, resolve_scope, t, &mut forward));
    resolve_patches(sema, resolve_scope, &mut forward);
    ProcSig { params, ret }
}

/// Child-side heading re-processing for [`HeadingMode::Reprocess`]
/// (§2.4 alternative 3): parameter types resolve through the child's own
/// ancestry chain.
pub fn declare_own_params(sema: &Sema, proc_scope: ScopeId, heading: &ProcHeading) -> ProcSig {
    // Resolving from the child's chain visits parent scopes — identical
    // results, duplicated effort (the paper measured ~3%).
    sema.meter
        .charge(Work::DeclAnalyze, 1 + heading.param_count() as u64);
    declare_params_into(sema, proc_scope, proc_scope, heading)
}

/// Child-side heading cross-validation for [`HeadingMode::Dual`]: the
/// parameter entries were already copied in by the parent, so the child
/// only re-elaborates the signature through its own chain (which visits
/// the same ancestor scopes) and discards it. Duplicated effort like
/// `Reprocess`, but no scope mutation — clean sources are unaffected.
pub fn verify_heading(sema: &Sema, proc_scope: ScopeId, heading: &ProcHeading) -> ProcSig {
    sema.meter
        .charge(Work::DeclAnalyze, 1 + heading.param_count() as u64);
    elaborate_heading(sema, proc_scope, heading)
}

/// Incremental declaration analysis for one scope: feed declarations as
/// they are parsed ([`Declarer::declare`]), then [`Declarer::finish`].
/// This is what lets the concurrent compiler fire a procedure heading's
/// avoided event the moment the heading is parsed, long before the rest
/// of the enclosing scope has been (paper §3: fast processing of
/// declaration parts helps resolve DKY blockages early).
pub struct Declarer<'a> {
    sema: &'a Sema,
    scope: ScopeId,
    mode: HeadingMode,
    hooks: &'a dyn DeclareHooks,
    forward: ForwardRefs,
    pending: Vec<PendingProc>,
    code_prefix: String,
    scope_is_module: bool,
}

impl<'a> Declarer<'a> {
    /// Starts declaration analysis of `scope`.
    pub fn new(
        sema: &'a Sema,
        scope: ScopeId,
        mode: HeadingMode,
        hooks: &'a dyn DeclareHooks,
    ) -> Declarer<'a> {
        let table = sema.tables.scope(scope);
        Declarer {
            sema,
            scope,
            mode,
            hooks,
            forward: ForwardRefs::default(),
            pending: Vec::new(),
            code_prefix: code_prefix_of(sema, scope),
            scope_is_module: table.kind() != ScopeKind::Procedure,
        }
    }

    /// Processes one declaration.
    pub fn declare(&mut self, decl: &Decl) {
        let sema = self.sema;
        let scope = self.scope;
        let table = sema.tables.scope(scope);
        let file = table.file();
        let module_name = table.name();
        sema.meter.charge(Work::DeclAnalyze, 1);
        match decl {
            Decl::Const { name, value } => {
                let entry = match eval_const(sema, scope, value) {
                    Some((v, ty)) => SymbolEntry {
                        name: name.name,
                        kind: SymbolKind::Const { value: v, ty },
                        span: name.span,
                    },
                    None => SymbolEntry {
                        name: name.name,
                        kind: SymbolKind::Const {
                            value: crate::value::ConstValue::Int(0),
                            ty: TypeId::ERROR,
                        },
                        span: name.span,
                    },
                };
                if let Err(prev) = sema.tables.insert(scope, entry) {
                    report_redeclaration(sema, file, name.span, name.name, &prev);
                }
            }
            Decl::Type { name, ty } => {
                let tid = match ty {
                    Some(texpr) => elaborate_type(sema, scope, texpr, &mut self.forward),
                    None => sema.types.add(Type::Opaque { name: name.name }),
                };
                let entry = SymbolEntry {
                    name: name.name,
                    kind: SymbolKind::TypeName { ty: tid },
                    span: name.span,
                };
                if let Err(prev) = sema.tables.insert(scope, entry) {
                    report_redeclaration(sema, file, name.span, name.name, &prev);
                }
            }
            Decl::Var { names, ty } => {
                let tid = elaborate_type(sema, scope, ty, &mut self.forward);
                for n in names {
                    let slot = table.alloc_slot();
                    let entry = SymbolEntry {
                        name: n.name,
                        kind: SymbolKind::Var(VarInfo {
                            ty: tid,
                            slot,
                            level: table.level(),
                            is_var_param: false,
                            module: self.scope_is_module.then_some(module_name),
                        }),
                        span: n.span,
                    };
                    if let Err(prev) = sema.tables.insert(scope, entry) {
                        report_redeclaration(sema, file, n.span, n.name, &prev);
                    }
                }
            }
            Decl::Procedure(p) => {
                let name = p.heading.name;
                let code_name = sema.interner.intern(&format!(
                    "{}.{}",
                    self.code_prefix,
                    sema.interner.resolve(name.name)
                ));
                // Identify / create the child scope.
                let child = match &p.body {
                    ProcBody::Remote(stream) => Some(self.hooks.scope_for_stream(*stream)),
                    ProcBody::Local(_) => Some(sema.tables.new_scope(
                        ScopeKind::Procedure,
                        name.name,
                        Some(scope),
                        file,
                    )),
                    ProcBody::HeadingOnly => None,
                };
                // Elaborate the heading in the parent scope; under
                // CopyToChild also populate the child's parameter entries.
                let sig = match (child, self.mode) {
                    (Some(child), HeadingMode::CopyToChild | HeadingMode::Dual) => {
                        declare_params_into(sema, child, scope, &p.heading)
                    }
                    _ => elaborate_heading(sema, scope, &p.heading),
                };
                let level = child.map(|c| sema.tables.scope(c).level()).unwrap_or(1);
                let entry = SymbolEntry {
                    name: name.name,
                    kind: SymbolKind::Proc(ProcInfo {
                        sig: sig.clone(),
                        code_name,
                        level,
                    }),
                    span: name.span,
                };
                if let Err(prev) = sema.tables.insert(scope, entry) {
                    report_redeclaration(sema, file, name.span, name.name, &prev);
                }
                if let Some(child) = child {
                    // The child's avoided event: its tasks may now start
                    // (§2.4 — "delay processing the child scope until the
                    // parent scope had completely processed the heading").
                    self.hooks.heading_done(child, code_name, &sig);
                    self.pending.push(PendingProc {
                        heading: p.heading.clone(),
                        body: p.body.clone(),
                        scope: child,
                        code_name,
                        sig,
                    });
                }
            }
        }
    }

    /// Finishes the declaration part: resolves deferred pointer patches
    /// and returns the procedures found (in declaration order). Does
    /// **not** mark the scope complete — the caller does that.
    pub fn finish(mut self) -> Vec<PendingProc> {
        resolve_patches(self.sema, self.scope, &mut self.forward);
        self.pending
    }
}

/// Batch form of [`Declarer`]: processes a complete declaration list.
pub fn declare_decls(
    sema: &Sema,
    scope: ScopeId,
    decls: &[Decl],
    mode: HeadingMode,
    hooks: &dyn DeclareHooks,
) -> Vec<PendingProc> {
    let mut d = Declarer::new(sema, scope, mode, hooks);
    for decl in decls {
        d.declare(decl);
    }
    d.finish()
}

/// Binds a module's import list into its scope: `IMPORT A;` inserts a
/// [`SymbolKind::Module`] entry, `FROM A IMPORT x;` inserts
/// [`SymbolKind::Alias`] entries (searched in the exporting scope as an
/// "other" initial scope, per Table 2).
///
/// `module_scope_of` maps a module name to its interface scope — the
/// driver's once-only table (§3) backs this in the concurrent compiler.
pub fn bind_imports(
    sema: &Sema,
    scope: ScopeId,
    imports: &[ccm2_syntax::ast::Import],
    module_scope_of: &dyn Fn(ccm2_support::intern::Symbol) -> Option<ScopeId>,
) {
    let file = sema.tables.scope(scope).file();
    for imp in imports {
        let module = imp.module();
        let Some(mscope) = module_scope_of(module.name) else {
            sema.sink.report(Diagnostic::error(
                file,
                module.span,
                format!(
                    "cannot find definition module `{}`",
                    sema.interner.resolve(module.name)
                ),
            ));
            continue;
        };
        match imp {
            ccm2_syntax::ast::Import::Whole { module } => {
                let entry = SymbolEntry {
                    name: module.name,
                    kind: SymbolKind::Module { scope: mscope },
                    span: module.span,
                };
                if let Err(prev) = sema.tables.insert(scope, entry) {
                    // Importing the same module twice is tolerated.
                    if !matches!(prev.kind, SymbolKind::Module { .. }) {
                        report_redeclaration(sema, file, module.span, module.name, &prev);
                    }
                }
            }
            ccm2_syntax::ast::Import::From { names, .. } => {
                for n in names {
                    let entry = SymbolEntry {
                        name: n.name,
                        kind: SymbolKind::Alias {
                            from_scope: mscope,
                            name: n.name,
                        },
                        span: n.span,
                    };
                    if let Err(prev) = sema.tables.insert(scope, entry) {
                        if !matches!(prev.kind, SymbolKind::Alias { .. }) {
                            report_redeclaration(sema, file, n.span, n.name, &prev);
                        }
                    }
                }
            }
        }
    }
}

/// The dotted code-name prefix for procedures declared in `scope`
/// (the scope's own dotted path).
pub fn code_prefix_of(sema: &Sema, scope: ScopeId) -> String {
    let chain = sema.tables.ancestry(scope);
    let mut parts: Vec<String> = chain
        .iter()
        .map(|s| sema.interner.resolve(sema.tables.scope(*s).name()))
        .collect();
    parts.reverse();
    parts.join(".")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::{DkyStrategy, NullWaiter};
    use ccm2_support::diag::DiagnosticSink;
    use ccm2_support::intern::Interner;
    use ccm2_support::source::{FileId, SourceMap};
    use ccm2_support::work::NullMeter;
    use ccm2_syntax::lexer::lex_file;
    use ccm2_syntax::parser::parse_implementation;
    use std::sync::Arc;

    fn setup(src: &str) -> (Sema, ScopeId, Vec<Decl>, Arc<DiagnosticSink>) {
        let interner = Arc::new(Interner::new());
        let sink = Arc::new(DiagnosticSink::new());
        let sema = Sema::new(
            Arc::clone(&interner),
            Arc::clone(&sink),
            DkyStrategy::Skeptical,
            Arc::new(NullWaiter),
            Arc::new(NullMeter),
        );
        let map = SourceMap::new();
        let f = map.add("M.mod", src);
        let toks = lex_file(&f, &interner, &sink);
        let m = parse_implementation(&toks, &interner, &sink).expect("parses");
        let scope = sema
            .tables
            .new_scope(ScopeKind::MainModule, m.name.name, None, FileId(0));
        (sema, scope, m.decls, sink)
    }

    fn lookup_kind(sema: &Sema, scope: ScopeId, name: &str) -> SymbolKind {
        let sym = sema.interner.intern(name);
        match sema.resolver.lookup(scope, sym) {
            Some(LookupResult::Entry(e)) => e.kind,
            other => panic!("lookup {name}: {other:?}"),
        }
    }

    #[test]
    fn consts_types_vars_declared() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             CONST n = 3; \
             TYPE Vec = ARRAY [1..n] OF REAL; \
             VAR v : Vec; k : INTEGER; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        let pending = declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        sema.tables.mark_complete(scope);
        assert!(pending.is_empty());
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert!(matches!(
            lookup_kind(&sema, scope, "n"),
            SymbolKind::Const { .. }
        ));
        let SymbolKind::TypeName { ty } = lookup_kind(&sema, scope, "Vec") else {
            panic!()
        };
        let Type::Array { index, .. } = sema.types.get(ty) else {
            panic!()
        };
        assert_eq!(sema.types.ordinal_bounds(index), Some((1, 3)));
        let SymbolKind::Var(v) = lookup_kind(&sema, scope, "k") else {
            panic!()
        };
        assert_eq!(v.slot, 1, "v got slot 0, k slot 1");
        assert!(v.module.is_some(), "module-level var is global");
    }

    #[test]
    fn enumeration_members_enter_scope() {
        let (sema, scope, decls, sink) =
            setup("IMPLEMENTATION MODULE M; TYPE Color = (red, green, blue); BEGIN END M.");
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        sema.tables.mark_complete(scope);
        assert!(!sink.has_errors());
        let SymbolKind::EnumConst { value, .. } = lookup_kind(&sema, scope, "green") else {
            panic!()
        };
        assert_eq!(value, 1);
    }

    #[test]
    fn forward_pointer_patched() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             TYPE P = POINTER TO Node; \
                  Node = RECORD next : P; val : INTEGER END; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        sema.tables.mark_complete(scope);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let SymbolKind::TypeName { ty: p } = lookup_kind(&sema, scope, "P") else {
            panic!()
        };
        let Type::Pointer { to } = sema.types.get(p) else {
            panic!()
        };
        assert!(matches!(sema.types.get(to), Type::Record { .. }));
    }

    #[test]
    fn never_declared_forward_pointer_reports() {
        let (sema, scope, decls, sink) =
            setup("IMPLEMENTATION MODULE M; TYPE P = POINTER TO Ghost; BEGIN END M.");
        // `Ghost` is not in the forward set (no TYPE Ghost), so this is an
        // undeclared-type error rather than a patch failure.
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        assert!(sink.has_errors());
    }

    #[test]
    fn procedure_headings_copy_params_to_child() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             PROCEDURE Add(a, b : INTEGER; VAR out : INTEGER); \
             BEGIN out := a + b END Add; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        let pending = declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        sema.tables.mark_complete(scope);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(pending.len(), 1);
        let p = &pending[0];
        assert_eq!(sema.interner.resolve(p.code_name), "M.Add");
        assert_eq!(p.sig.params.len(), 3);
        assert!(p.sig.params[2].is_var);
        // Child scope already holds the parameters (alternative 1).
        let child = sema.tables.scope(p.scope);
        assert_eq!(child.len(), 3);
        assert_eq!(child.slot_count(), 3);
        let SymbolKind::Var(a) = lookup_kind(&sema, p.scope, "a") else {
            panic!()
        };
        assert_eq!(a.slot, 0);
        assert_eq!(a.level, 1);
        assert!(!a.is_var_param);
    }

    #[test]
    fn reprocess_mode_defers_param_entry_to_child() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             PROCEDURE Inc(VAR x : INTEGER); BEGIN x := x + 1 END Inc; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        let pending = declare_decls(&sema, scope, &decls, HeadingMode::Reprocess, &hooks);
        assert!(!sink.has_errors());
        let p = &pending[0];
        assert!(
            sema.tables.scope(p.scope).is_empty(),
            "child empty before reprocess"
        );
        // Child side re-elaborates (alternative 3).
        let sig = declare_own_params(&sema, p.scope, &p.heading);
        assert_eq!(sig, p.sig);
        assert_eq!(sema.tables.scope(p.scope).len(), 1);
    }

    #[test]
    fn dual_mode_copies_params_and_verify_agrees() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             PROCEDURE Add(a, b : INTEGER; VAR out : INTEGER); \
             BEGIN out := a + b END Add; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        let pending = declare_decls(&sema, scope, &decls, HeadingMode::Dual, &hooks);
        sema.tables.mark_complete(scope);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let p = &pending[0];
        // Parent flow identical to CopyToChild: entries already present.
        assert_eq!(sema.tables.scope(p.scope).len(), 3);
        // Child-side cross-check resolves through the child's own chain
        // and reproduces the signature without touching the scope.
        let sig = verify_heading(&sema, p.scope, &p.heading);
        assert_eq!(sig, p.sig);
        assert_eq!(sema.tables.scope(p.scope).len(), 3);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
    }

    #[test]
    fn heading_mode_cache_tags_are_distinct_and_stable() {
        assert_eq!(HeadingMode::CopyToChild.cache_tag(), 0);
        assert_eq!(HeadingMode::Reprocess.cache_tag(), 1);
        assert_eq!(HeadingMode::Dual.cache_tag(), 2);
    }

    #[test]
    fn nested_procedure_code_names_are_dotted() {
        let (sema, scope, decls, sink) = setup(
            "IMPLEMENTATION MODULE M; \
             PROCEDURE Outer; \
               PROCEDURE Inner; BEGIN END Inner; \
             BEGIN END Outer; \
             BEGIN END M.",
        );
        let hooks = LocalHooks::new(&sema);
        let pending = declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        assert!(!sink.has_errors());
        let outer = &pending[0];
        let ccm2_syntax::ast::ProcBody::Local(local) = &outer.body else {
            panic!()
        };
        let inner_pending = declare_decls(
            &sema,
            outer.scope,
            &local.decls,
            HeadingMode::CopyToChild,
            &hooks,
        );
        assert_eq!(
            sema.interner.resolve(inner_pending[0].code_name),
            "M.Outer.Inner"
        );
        assert_eq!(sema.tables.scope(inner_pending[0].scope).level(), 2);
    }

    #[test]
    fn redeclaration_reports_error() {
        let (sema, scope, decls, sink) =
            setup("IMPLEMENTATION MODULE M; CONST x = 1; VAR x : INTEGER; BEGIN END M.");
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        assert!(sink.has_errors());
    }

    #[test]
    fn set_of_out_of_range_base_reports() {
        let (sema, scope, decls, sink) =
            setup("IMPLEMENTATION MODULE M; TYPE S = SET OF [0..100]; BEGIN END M.");
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        assert!(sink.has_errors());
    }

    #[test]
    fn opaque_types_from_definition_modules() {
        let (sema, scope, _, _) = setup("IMPLEMENTATION MODULE M; BEGIN END M.");
        let name = sema.interner.intern("T");
        let decls = vec![Decl::Type {
            name: ccm2_syntax::ast::Ident {
                name,
                span: Span::default(),
            },
            ty: None,
        }];
        let hooks = LocalHooks::new(&sema);
        declare_decls(&sema, scope, &decls, HeadingMode::CopyToChild, &hooks);
        let SymbolKind::TypeName { ty } = lookup_kind(&sema, scope, "T") else {
            panic!()
        };
        assert!(matches!(sema.types.get(ty), Type::Opaque { .. }));
    }
}
