//! Semantic analysis for the concurrent Modula-2+ compiler.
//!
//! This crate implements the parts of the paper (Wortman & Junkin, PLDI
//! 1992) that concern meaning rather than scheduling:
//!
//! * [`types`] — the type representation and compatibility rules;
//! * [`symtab`] — one symbol table per scope of declaration, the
//!   three-outcome concurrent search (found / not-found / *Doesn't Know
//!   Yet*) and all four DKY strategies of §2.2;
//! * [`builtins`] — pervasive names treated as local to every scope
//!   (§2.2's builtin-name optimization);
//! * [`stats`] — the Table 2 identifier-lookup statistics;
//! * [`consteval`] — constant-expression evaluation;
//! * [`declare`] — declaration analysis, including the §2.4
//!   procedure-heading information-flow alternatives.
//!
//! Everything here is scheduler-agnostic: blocking on incomplete tables
//! goes through the [`symtab::DkyWaiter`] trait, and work is charged to a
//! [`ccm2_support::work::WorkMeter`], so the same code runs under the
//! sequential compiler, the threaded Supervisors executor, and the
//! virtual-time multiprocessor simulation.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_support::{DiagnosticSink, Interner, NullMeter};
//! use ccm2_support::source::FileId;
//! use ccm2_sema::{Sema, symtab::{DkyStrategy, NullWaiter, ScopeKind}};
//!
//! let interner = Arc::new(Interner::new());
//! let sink = Arc::new(DiagnosticSink::new());
//! let sema = Sema::new(
//!     Arc::clone(&interner),
//!     sink,
//!     DkyStrategy::Skeptical,
//!     Arc::new(NullWaiter),
//!     Arc::new(NullMeter),
//! );
//! let scope = sema.tables.new_scope(
//!     ScopeKind::MainModule,
//!     interner.intern("M"),
//!     None,
//!     FileId(0),
//! );
//! sema.tables.mark_complete(scope);
//! assert!(sema.resolver.lookup(scope, interner.intern("TRUE")).is_some());
//! ```

pub mod builtins;
pub mod consteval;
pub mod declare;
pub mod stats;
pub mod symtab;
pub mod types;
pub mod value;

use std::sync::Arc;

use ccm2_support::diag::DiagnosticSink;
use ccm2_support::intern::Interner;
use ccm2_support::work::WorkMeter;

use builtins::BuiltinTable;
use stats::LookupStats;
use symtab::{DkyStrategy, DkyWaiter, Resolver, SymbolTables};
use types::TypeStore;

/// The shared semantic-analysis context for one compilation.
///
/// All fields are thread-safe; one `Sema` is shared (via `Arc`) by every
/// concurrently running compiler task.
pub struct Sema {
    /// The identifier interner.
    pub interner: Arc<Interner>,
    /// The type arena.
    pub types: Arc<TypeStore>,
    /// All scope symbol tables.
    pub tables: Arc<SymbolTables>,
    /// The strategy-aware symbol search engine.
    pub resolver: Resolver,
    /// Where diagnostics go.
    pub sink: Arc<DiagnosticSink>,
    /// Work charging for the virtual-time cost model.
    pub meter: Arc<dyn WorkMeter>,
}

impl std::fmt::Debug for Sema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sema(strategy = {}, scopes = {})",
            self.resolver.strategy().name(),
            self.tables.len()
        )
    }
}

impl Sema {
    /// Creates a fresh context with the given DKY strategy and blocking
    /// interface.
    pub fn new(
        interner: Arc<Interner>,
        sink: Arc<DiagnosticSink>,
        strategy: DkyStrategy,
        waiter: Arc<dyn DkyWaiter>,
        meter: Arc<dyn WorkMeter>,
    ) -> Sema {
        let types = Arc::new(TypeStore::new());
        let tables = Arc::new(SymbolTables::new());
        let builtins = Arc::new(BuiltinTable::new(&interner));
        let stats = Arc::new(LookupStats::new());
        let resolver = Resolver::new(
            Arc::clone(&tables),
            builtins,
            stats,
            strategy,
            waiter,
            Arc::clone(&meter),
        );
        Sema {
            interner,
            types,
            tables,
            resolver,
            sink,
            meter,
        }
    }

    /// The lookup statistics gathered so far (Table 2).
    pub fn stats(&self) -> &Arc<LookupStats> {
        self.resolver.stats()
    }
}
