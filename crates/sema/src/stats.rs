//! Identifier-lookup statistics (paper Table 2).
//!
//! Every symbol-table search is classified along three axes:
//!
//! * **found when** — `First try` (found in the first table searched),
//!   `Search` (found chaining outward), `After DKY` (found in a table that
//!   completed after a Doesn't-Know-Yet blockage), or `Never`;
//! * **scope** — `self` (the searching stream's own scope), `other` (an
//!   explicitly designated initial scope, e.g. a FROM-import's exporting
//!   module), `outer` (reached by chaining through the scope parentage),
//!   `WITH` (a WITH-statement scope) or `Builtin`;
//! * **completeness** — whether the table the identifier was found in was
//!   complete when the search began.
//!
//! Simple and qualified identifiers are tabulated separately, exactly as
//! in the paper. Counters are atomic so concurrently running analysis
//! tasks record without locking.

use std::sync::atomic::{AtomicU64, Ordering};

/// When (and whether) a search succeeded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FoundWhen {
    /// Found in the first table searched.
    FirstTry,
    /// Found during the outward search through the scope parentage chain.
    Search,
    /// Found in a scope completed after a DKY blockage.
    AfterDky,
    /// Not found anywhere (an undeclared identifier).
    Never,
}

/// Which scope the identifier was found in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScopeClass {
    /// The scope of the stream that initiated the search.
    SelfScope,
    /// An explicitly designated initial search scope (FROM imports).
    Other,
    /// A scope reached chaining outward.
    Outer,
    /// A `WITH` statement scope.
    With,
    /// The pervasive (builtin) scope.
    Builtin,
}

/// Whether the found-in table was complete when the search started.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Completeness {
    /// Table was complete.
    Complete,
    /// Table was still under construction.
    Incomplete,
}

const FW: usize = 3; // FirstTry, Search, AfterDky (Never counted apart)
const SC: usize = 5;
const CP: usize = 2;

fn fw_index(f: FoundWhen) -> usize {
    match f {
        FoundWhen::FirstTry => 0,
        FoundWhen::Search => 1,
        FoundWhen::AfterDky => 2,
        FoundWhen::Never => unreachable!("Never has its own counter"),
    }
}

fn sc_index(s: ScopeClass) -> usize {
    match s {
        ScopeClass::SelfScope => 0,
        ScopeClass::Other => 1,
        ScopeClass::Outer => 2,
        ScopeClass::With => 3,
        ScopeClass::Builtin => 4,
    }
}

fn cp_index(c: Completeness) -> usize {
    match c {
        Completeness::Complete => 0,
        Completeness::Incomplete => 1,
    }
}

/// Thread-safe lookup-statistics accumulator.
#[derive(Debug, Default)]
pub struct LookupStats {
    simple: [[[AtomicU64; CP]; SC]; FW],
    simple_never: AtomicU64,
    qualified: [[AtomicU64; CP]; FW],
    qualified_never: AtomicU64,
    /// DKY blockages incurred (tasks actually waited).
    dky_blockages: AtomicU64,
}

impl LookupStats {
    /// Creates a zeroed accumulator.
    pub fn new() -> LookupStats {
        LookupStats::default()
    }

    /// Records one successful simple-identifier lookup.
    pub fn record_simple(&self, found: FoundWhen, scope: ScopeClass, comp: Completeness) {
        if found == FoundWhen::Never {
            self.simple_never.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.simple[fw_index(found)][sc_index(scope)][cp_index(comp)]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one qualified-identifier lookup.
    pub fn record_qualified(&self, found: FoundWhen, comp: Completeness) {
        if found == FoundWhen::Never {
            self.qualified_never.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.qualified[fw_index(found)][cp_index(comp)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that a task blocked on a DKY condition.
    pub fn record_dky_blockage(&self) {
        self.dky_blockages.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one simple-identifier counter.
    pub fn simple_count(&self, found: FoundWhen, scope: ScopeClass, comp: Completeness) -> u64 {
        if found == FoundWhen::Never {
            return self.simple_never.load(Ordering::Relaxed);
        }
        self.simple[fw_index(found)][sc_index(scope)][cp_index(comp)].load(Ordering::Relaxed)
    }

    /// Reads one qualified-identifier counter.
    pub fn qualified_count(&self, found: FoundWhen, comp: Completeness) -> u64 {
        if found == FoundWhen::Never {
            return self.qualified_never.load(Ordering::Relaxed);
        }
        self.qualified[fw_index(found)][cp_index(comp)].load(Ordering::Relaxed)
    }

    /// Number of simple lookups that failed everywhere.
    pub fn simple_never(&self) -> u64 {
        self.simple_never.load(Ordering::Relaxed)
    }

    /// Total simple-identifier lookups.
    pub fn simple_total(&self) -> u64 {
        let mut total = self.simple_never();
        for fw in &self.simple {
            for sc in fw {
                for c in sc {
                    total += c.load(Ordering::Relaxed);
                }
            }
        }
        total
    }

    /// Total qualified-identifier lookups.
    pub fn qualified_total(&self) -> u64 {
        let mut total = self.qualified_never.load(Ordering::Relaxed);
        for fw in &self.qualified {
            for c in fw {
                total += c.load(Ordering::Relaxed);
            }
        }
        total
    }

    /// Number of DKY blockages recorded.
    pub fn dky_blockages(&self) -> u64 {
        self.dky_blockages.load(Ordering::Relaxed)
    }

    /// Merges another accumulator into this one (used when aggregating a
    /// whole test-suite run, as the paper does for Table 2).
    pub fn merge(&self, other: &LookupStats) {
        for (fw_i, fw) in other.simple.iter().enumerate() {
            for (sc_i, sc) in fw.iter().enumerate() {
                for (cp_i, c) in sc.iter().enumerate() {
                    self.simple[fw_i][sc_i][cp_i]
                        .fetch_add(c.load(Ordering::Relaxed), Ordering::Relaxed);
                }
            }
        }
        self.simple_never.fetch_add(
            other.simple_never.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        for (fw_i, fw) in other.qualified.iter().enumerate() {
            for (cp_i, c) in fw.iter().enumerate() {
                self.qualified[fw_i][cp_i].fetch_add(c.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        self.qualified_never.fetch_add(
            other.qualified_never.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.dky_blockages.fetch_add(
            other.dky_blockages.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Renders the Table 2 rows: `(label, count, percent)` triples for the
    /// simple-identifier side.
    pub fn simple_rows(&self) -> Vec<(String, u64, f64)> {
        let total = self.simple_total().max(1) as f64;
        let mut rows = Vec::new();
        let combos: &[(FoundWhen, ScopeClass, Completeness, &str)] = &[
            (
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                Completeness::Complete,
                "First try  self    complete",
            ),
            (
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                Completeness::Incomplete,
                "First try  self    incomplete",
            ),
            (
                FoundWhen::FirstTry,
                ScopeClass::Other,
                Completeness::Complete,
                "First try  other   complete",
            ),
            (
                FoundWhen::FirstTry,
                ScopeClass::Other,
                Completeness::Incomplete,
                "First try  other   incomplete",
            ),
            (
                FoundWhen::Search,
                ScopeClass::Outer,
                Completeness::Incomplete,
                "Search     outer   incomplete",
            ),
            (
                FoundWhen::Search,
                ScopeClass::Outer,
                Completeness::Complete,
                "Search     outer   complete",
            ),
            (
                FoundWhen::AfterDky,
                ScopeClass::Outer,
                Completeness::Complete,
                "After DKY  outer   complete",
            ),
            (
                FoundWhen::AfterDky,
                ScopeClass::Other,
                Completeness::Complete,
                "After DKY  other   complete",
            ),
            (
                FoundWhen::FirstTry,
                ScopeClass::With,
                Completeness::Complete,
                "First try  WITH    complete",
            ),
            (
                FoundWhen::FirstTry,
                ScopeClass::Builtin,
                Completeness::Complete,
                "First try  Builtin complete",
            ),
        ];
        for &(f, s, c, label) in combos {
            let n = self.simple_count(f, s, c);
            if n > 0 {
                rows.push((label.to_string(), n, n as f64 * 100.0 / total));
            }
        }
        let never = self.simple_never();
        if never > 0 {
            rows.push((
                "Never      --      --".to_string(),
                never,
                never as f64 * 100.0 / total,
            ));
        }
        rows
    }

    /// Renders the Table 2 rows for the qualified-identifier side.
    pub fn qualified_rows(&self) -> Vec<(String, u64, f64)> {
        let total = self.qualified_total().max(1) as f64;
        let mut rows = Vec::new();
        let combos: &[(FoundWhen, Completeness, &str)] = &[
            (
                FoundWhen::FirstTry,
                Completeness::Incomplete,
                "First try  incomplete",
            ),
            (
                FoundWhen::FirstTry,
                Completeness::Complete,
                "First try  complete",
            ),
            (
                FoundWhen::AfterDky,
                Completeness::Complete,
                "After DKY  complete",
            ),
        ];
        for &(f, c, label) in combos {
            let n = self.qualified_count(f, c);
            if n > 0 {
                rows.push((label.to_string(), n, n as f64 * 100.0 / total));
            }
        }
        let never = self.qualified_never.load(Ordering::Relaxed);
        if never > 0 {
            rows.push((
                "Never      --".to_string(),
                never,
                never as f64 * 100.0 / total,
            ));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let s = LookupStats::new();
        s.record_simple(
            FoundWhen::FirstTry,
            ScopeClass::SelfScope,
            Completeness::Complete,
        );
        s.record_simple(
            FoundWhen::Search,
            ScopeClass::Outer,
            Completeness::Incomplete,
        );
        s.record_simple(FoundWhen::Never, ScopeClass::Outer, Completeness::Complete);
        assert_eq!(
            s.simple_count(
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                Completeness::Complete
            ),
            1
        );
        assert_eq!(s.simple_never(), 1);
        assert_eq!(s.simple_total(), 3);
    }

    #[test]
    fn qualified_separate_from_simple() {
        let s = LookupStats::new();
        s.record_qualified(FoundWhen::FirstTry, Completeness::Complete);
        assert_eq!(s.qualified_total(), 1);
        assert_eq!(s.simple_total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LookupStats::new();
        let b = LookupStats::new();
        a.record_simple(
            FoundWhen::FirstTry,
            ScopeClass::Builtin,
            Completeness::Complete,
        );
        b.record_simple(
            FoundWhen::FirstTry,
            ScopeClass::Builtin,
            Completeness::Complete,
        );
        b.record_dky_blockage();
        a.merge(&b);
        assert_eq!(
            a.simple_count(
                FoundWhen::FirstTry,
                ScopeClass::Builtin,
                Completeness::Complete
            ),
            2
        );
        assert_eq!(a.dky_blockages(), 1);
    }

    #[test]
    fn rows_report_percentages() {
        let s = LookupStats::new();
        for _ in 0..3 {
            s.record_simple(
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                Completeness::Complete,
            );
        }
        s.record_simple(
            FoundWhen::AfterDky,
            ScopeClass::Outer,
            Completeness::Complete,
        );
        let rows = s.simple_rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].2 - 75.0).abs() < 1e-9);
    }
}
