//! Scope-based concurrent symbol tables and the Doesn't-Know-Yet machinery.
//!
//! Per paper §2.2, there is one symbol table per scope of declaration
//! (definition module, main module, procedure), linked to its parent to
//! form the scope ancestry path. Because scopes are built by concurrently
//! running tasks, a search has **three** possible outcomes: found,
//! not-found, or *Doesn't Know Yet* (the table being searched is still
//! under construction). Entry creation is atomic with respect to search
//! (footnote 1 of the paper), so a found entry is always complete.
//!
//! The four DKY strategies of §2.2 are implemented by the resolver's
//! table search:
//!
//! * **Avoidance** — scheduling guarantees searched tables are complete
//!   (task gating happens in the `ccm2` driver); the search itself then
//!   behaves like Pessimistic as a safety net.
//! * **Pessimistic** — block on *any* incomplete table before searching.
//! * **Skeptical** (Figure 6) — search the incomplete table; block only on
//!   a miss; re-search after completion.
//! * **Optimistic** — per-symbol events: on a miss in an incomplete table,
//!   wait until either that symbol is inserted or the table completes.
//!
//! Blocking is delegated to a [`DkyWaiter`] supplied by the execution
//! environment (the Supervisors scheduler in the concurrent compiler, a
//! no-op in the sequential one), keeping this crate scheduler-agnostic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use ccm2_support::ids::ScopeId;
use ccm2_support::intern::Symbol;
use ccm2_support::source::{FileId, Span};
use ccm2_support::work::{Work, WorkMeter};

use crate::builtins::{BuiltinDef, BuiltinTable};
use crate::stats::{Completeness, FoundWhen, LookupStats, ScopeClass};
use crate::types::TypeId;
use crate::value::ConstValue;

/// The DKY-handling strategy in force for a compilation (paper §2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DkyStrategy {
    /// Delay scope analysis until parent declaration analysis completes.
    Avoidance,
    /// Block whenever an incomplete table is encountered.
    Pessimistic,
    /// Search incomplete tables; block only on a miss (Figure 6). The
    /// paper's recommended compromise, and the default here.
    #[default]
    Skeptical,
    /// Per-symbol events; maximum concurrency, highest overhead.
    Optimistic,
}

impl DkyStrategy {
    /// All strategies, for ablation sweeps.
    pub const ALL: [DkyStrategy; 4] = [
        DkyStrategy::Avoidance,
        DkyStrategy::Pessimistic,
        DkyStrategy::Skeptical,
        DkyStrategy::Optimistic,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DkyStrategy::Avoidance => "Avoidance",
            DkyStrategy::Pessimistic => "Pessimistic",
            DkyStrategy::Skeptical => "Skeptical",
            DkyStrategy::Optimistic => "Optimistic",
        }
    }
}

/// What kind of declaration scope a table describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScopeKind {
    /// A definition module's interface scope.
    DefModule,
    /// The implementation (main) module scope.
    MainModule,
    /// A procedure scope.
    Procedure,
}

/// A procedure parameter signature.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ParamSig {
    /// `true` for VAR parameters.
    pub is_var: bool,
    /// Parameter type.
    pub ty: TypeId,
}

/// A procedure signature (the §2.4 shared heading information).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ProcSig {
    /// Parameters in order.
    pub params: Vec<ParamSig>,
    /// Return type for function procedures.
    pub ret: Option<TypeId>,
}

/// Variable addressing information.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarInfo {
    /// The variable's type.
    pub ty: TypeId,
    /// Slot index within its frame (or module global area).
    pub slot: u32,
    /// Static nesting level of the owning scope (module = 0).
    pub level: u32,
    /// `true` if this is a VAR parameter (the slot holds an address).
    pub is_var_param: bool,
    /// `Some(module name)` for module-level (global) variables.
    pub module: Option<Symbol>,
}

/// Procedure naming/visibility information.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProcInfo {
    /// The signature.
    pub sig: ProcSig,
    /// The dotted code-unit name (e.g. `M.Outer.Inner`) used for
    /// merge-time linking.
    pub code_name: Symbol,
    /// Static nesting level of the procedure's own scope.
    pub level: u32,
}

/// What a symbol denotes.
#[derive(Clone, PartialEq, Debug)]
pub enum SymbolKind {
    /// A named constant.
    Const {
        /// Its value.
        value: ConstValue,
        /// Its type.
        ty: TypeId,
    },
    /// A type name.
    TypeName {
        /// The named type.
        ty: TypeId,
    },
    /// A variable (local, parameter, or module global).
    Var(VarInfo),
    /// A procedure.
    Proc(ProcInfo),
    /// An imported module (`IMPORT A;` makes `A` denote A's scope).
    Module {
        /// The module's interface scope.
        scope: ScopeId,
    },
    /// An enumeration constant.
    EnumConst {
        /// The enumeration type.
        ty: TypeId,
        /// The member's ordinal.
        value: i64,
    },
    /// A FROM-import alias: the real entry lives in another scope, which
    /// is searched as an explicitly designated initial scope ("other" in
    /// Table 2).
    Alias {
        /// The exporting module's scope.
        from_scope: ScopeId,
        /// The name inside that scope.
        name: Symbol,
    },
}

/// One symbol-table entry.
#[derive(Clone, PartialEq, Debug)]
pub struct SymbolEntry {
    /// The declared name.
    pub name: Symbol,
    /// What it denotes.
    pub kind: SymbolKind,
    /// Where it was declared.
    pub span: Span,
}

/// One scope's symbol table.
///
/// Insertion is atomic w.r.t. search (a single mutex guards the map), and
/// completion is a monotonic flag: once `complete` is observed true, the
/// table will never change again.
#[derive(Debug)]
pub struct ScopeTable {
    id: ScopeId,
    parent: Option<ScopeId>,
    kind: ScopeKind,
    name: Symbol,
    level: u32,
    file: FileId,
    entries: Mutex<HashMap<Symbol, SymbolEntry>>,
    complete: AtomicBool,
    next_slot: AtomicU32,
}

impl ScopeTable {
    /// The scope's id.
    pub fn id(&self) -> ScopeId {
        self.id
    }

    /// The parent scope, if any.
    pub fn parent(&self) -> Option<ScopeId> {
        self.parent
    }

    /// The scope kind.
    pub fn kind(&self) -> ScopeKind {
        self.kind
    }

    /// The scope's name (module or procedure name).
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// Static nesting level (modules are 0).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The source file this scope was declared in (for diagnostics).
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Whether the table has been marked complete.
    pub fn is_complete(&self) -> bool {
        self.complete.load(Ordering::Acquire)
    }

    /// Atomically searches for `name`.
    pub fn get(&self, name: Symbol) -> Option<SymbolEntry> {
        self.entries.lock().get(&name).cloned()
    }

    /// Number of entries currently in the table.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the table currently has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Allocates the next variable slot in this scope.
    pub fn alloc_slot(&self) -> u32 {
        self.next_slot.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of slots allocated so far (the frame size).
    pub fn slot_count(&self) -> u32 {
        self.next_slot.load(Ordering::Relaxed)
    }

    /// All entries, sorted by name index (deterministic; used by the
    /// §2.4-alternative-1 heading copy and by tests).
    pub fn entries_sorted(&self) -> Vec<SymbolEntry> {
        let map = self.entries.lock();
        let mut v: Vec<SymbolEntry> = map.values().cloned().collect();
        v.sort_by_key(|e| e.name.index());
        v
    }
}

/// Observer of table mutations; the Supervisors driver uses this to signal
/// scheduler events (table completion for Pessimistic/Skeptical DKY events,
/// symbol insertion for Optimistic per-symbol events).
pub trait TableNotifier: Send + Sync {
    /// A scope's table was marked complete.
    fn scope_completed(&self, scope: ScopeId);
    /// An entry was inserted into a scope's table.
    fn symbol_inserted(&self, scope: ScopeId, name: Symbol);
}

/// A notifier that ignores everything (sequential compilation).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullNotifier;

impl TableNotifier for NullNotifier {
    fn scope_completed(&self, _scope: ScopeId) {}
    fn symbol_inserted(&self, _scope: ScopeId, _name: Symbol) {}
}

/// Blocking interface used when a search hits a DKY condition.
///
/// The concurrent driver implements this on top of scheduler events so a
/// blocked worker can run other tasks (paper §2.3.4); the sequential
/// compiler uses [`NullWaiter`] (its tables are always completed before
/// use).
pub trait DkyWaiter: Send + Sync {
    /// Blocks until `scope`'s table is complete.
    fn wait_scope_complete(&self, scope: ScopeId);
    /// Blocks until `name` is inserted into `scope` or the scope
    /// completes, whichever comes first (Optimistic handling).
    fn wait_symbol(&self, scope: ScopeId, name: Symbol);
}

/// A waiter that never blocks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullWaiter;

impl DkyWaiter for NullWaiter {
    fn wait_scope_complete(&self, _scope: ScopeId) {}
    fn wait_symbol(&self, _scope: ScopeId, _name: Symbol) {}
}

/// The registry of all scope tables in one compilation.
#[derive(Default)]
pub struct SymbolTables {
    scopes: RwLock<Vec<Arc<ScopeTable>>>,
    notifier: RwLock<Option<Arc<dyn TableNotifier>>>,
}

impl std::fmt::Debug for SymbolTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SymbolTables({} scopes)", self.scopes.read().len())
    }
}

impl SymbolTables {
    /// Creates an empty registry.
    pub fn new() -> SymbolTables {
        SymbolTables::default()
    }

    /// Installs the notifier (done once by the driver before compilation
    /// starts).
    pub fn set_notifier(&self, notifier: Arc<dyn TableNotifier>) {
        *self.notifier.write() = Some(notifier);
    }

    /// Creates a new scope table and returns its id.
    pub fn new_scope(
        &self,
        kind: ScopeKind,
        name: Symbol,
        parent: Option<ScopeId>,
        file: FileId,
    ) -> ScopeId {
        let level = match parent {
            Some(p) if kind == ScopeKind::Procedure => self.scope(p).level() + 1,
            _ => 0,
        };
        let mut scopes = self.scopes.write();
        let id = ScopeId(scopes.len() as u32);
        scopes.push(Arc::new(ScopeTable {
            id,
            parent,
            kind,
            name,
            level,
            file,
            entries: Mutex::new(HashMap::new()),
            complete: AtomicBool::new(false),
            next_slot: AtomicU32::new(0),
        }));
        id
    }

    /// Fetches a scope table.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this registry.
    pub fn scope(&self, id: ScopeId) -> Arc<ScopeTable> {
        self.scopes.read()[id.index()].clone()
    }

    /// Number of scopes created.
    pub fn len(&self) -> usize {
        self.scopes.read().len()
    }

    /// Whether no scopes exist yet.
    pub fn is_empty(&self) -> bool {
        self.scopes.read().is_empty()
    }

    /// Inserts an entry; returns the previous entry if the name was
    /// already declared in the scope (a redeclaration error the caller
    /// reports).
    pub fn insert(&self, scope: ScopeId, entry: SymbolEntry) -> Result<(), SymbolEntry> {
        let table = self.scope(scope);
        debug_assert!(
            !table.is_complete(),
            "insert into completed table {scope:?}"
        );
        let name = entry.name;
        {
            let mut map = table.entries.lock();
            if let Some(prev) = map.get(&name) {
                return Err(prev.clone());
            }
            map.insert(name, entry);
        }
        if let Some(n) = self.notifier.read().as_ref() {
            n.symbol_inserted(scope, name);
        }
        Ok(())
    }

    /// Marks a scope's table complete and notifies the scheduler. This is
    /// the moment the corresponding DKY event is signaled (paper §2.3.3).
    pub fn mark_complete(&self, scope: ScopeId) {
        let table = self.scope(scope);
        table.complete.store(true, Ordering::Release);
        if let Some(n) = self.notifier.read().as_ref() {
            n.scope_completed(scope);
        }
    }

    /// The chain of scopes from `scope` outward to the outermost scope.
    pub fn ancestry(&self, scope: ScopeId) -> Vec<ScopeId> {
        let mut chain = vec![scope];
        let mut cur = scope;
        while let Some(p) = self.scope(cur).parent() {
            chain.push(p);
            cur = p;
        }
        chain
    }
}

/// Result of searching one table under a DKY strategy.
#[derive(Debug)]
struct TableSearch {
    entry: Option<SymbolEntry>,
    /// Completeness of the table when the search *began* (Table 2's
    /// "completeness" column).
    initial: Completeness,
    /// Whether the entry was only found after a DKY blockage.
    after_dky: bool,
}

/// The symbol-search engine: owns the strategy, statistics and blocking
/// interface, and implements simple/qualified lookup over a
/// [`SymbolTables`] registry.
pub struct Resolver {
    tables: Arc<SymbolTables>,
    builtins: Arc<BuiltinTable>,
    stats: Arc<LookupStats>,
    strategy: DkyStrategy,
    waiter: Arc<dyn DkyWaiter>,
    meter: Arc<dyn WorkMeter>,
}

impl std::fmt::Debug for Resolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Resolver(strategy = {})", self.strategy.name())
    }
}

impl Resolver {
    /// Creates a resolver.
    pub fn new(
        tables: Arc<SymbolTables>,
        builtins: Arc<BuiltinTable>,
        stats: Arc<LookupStats>,
        strategy: DkyStrategy,
        waiter: Arc<dyn DkyWaiter>,
        meter: Arc<dyn WorkMeter>,
    ) -> Resolver {
        Resolver {
            tables,
            builtins,
            stats,
            strategy,
            waiter,
            meter,
        }
    }

    /// The table registry this resolver searches.
    pub fn tables(&self) -> &Arc<SymbolTables> {
        &self.tables
    }

    /// The builtin table.
    pub fn builtins(&self) -> &Arc<BuiltinTable> {
        &self.builtins
    }

    /// The statistics accumulator.
    pub fn stats(&self) -> &Arc<LookupStats> {
        &self.stats
    }

    /// The strategy in force.
    pub fn strategy(&self) -> DkyStrategy {
        self.strategy
    }

    /// Searches one table applying the DKY strategy. `may_block` is false
    /// for the searching task's own scope (the owner never waits on
    /// itself — that would deadlock).
    fn search_table(&self, scope: ScopeId, name: Symbol, may_block: bool) -> TableSearch {
        self.meter.charge(Work::Lookup, 1);
        let table = self.tables.scope(scope);
        let initial = if table.is_complete() {
            Completeness::Complete
        } else {
            Completeness::Incomplete
        };
        if initial == Completeness::Incomplete && may_block {
            match self.strategy {
                DkyStrategy::Skeptical => {
                    // Figure 6: search the incomplete table first.
                    if let Some(e) = table.get(name) {
                        return TableSearch {
                            entry: Some(e),
                            initial,
                            after_dky: false,
                        };
                    }
                    // Miss in an incomplete table: DKY blockage.
                    self.stats.record_dky_blockage();
                    self.waiter.wait_scope_complete(scope);
                    self.meter.charge(Work::Lookup, 1); // duplicate search cost
                    return TableSearch {
                        entry: table.get(name),
                        initial,
                        after_dky: true,
                    };
                }
                DkyStrategy::Pessimistic | DkyStrategy::Avoidance => {
                    // Block before searching at all. (Under Avoidance the
                    // scheduler should have prevented this; blocking is the
                    // safe fallback.)
                    self.stats.record_dky_blockage();
                    self.waiter.wait_scope_complete(scope);
                    return TableSearch {
                        entry: table.get(name),
                        initial,
                        after_dky: true,
                    };
                }
                DkyStrategy::Optimistic => {
                    if let Some(e) = table.get(name) {
                        return TableSearch {
                            entry: Some(e),
                            initial,
                            after_dky: false,
                        };
                    }
                    // Wait on the per-symbol event (or table completion).
                    self.stats.record_dky_blockage();
                    self.waiter.wait_symbol(scope, name);
                    self.meter.charge(Work::Lookup, 1);
                    return TableSearch {
                        entry: table.get(name),
                        initial,
                        after_dky: true,
                    };
                }
            }
        }
        TableSearch {
            entry: table.get(name),
            initial,
            after_dky: false,
        }
    }

    /// Resolves a FROM-import alias by searching the exporting module's
    /// scope (an "other" initial scope in Table 2 terms). Returns the
    /// resolved entry plus the classification of the resolving search.
    fn resolve_alias(
        &self,
        from_scope: ScopeId,
        name: Symbol,
    ) -> (Option<SymbolEntry>, Completeness, bool) {
        let s = self.search_table(from_scope, name, true);
        (s.entry, s.initial, s.after_dky)
    }

    /// Simple-identifier lookup: search the originating scope, then the
    /// pervasive builtins, then chain outward through the scope ancestry
    /// (paper §2.2's modified search that treats builtins as local).
    ///
    /// Returns the resolved entry, or `None` for undeclared identifiers
    /// (recorded as `Never` in the statistics; the caller reports the
    /// diagnostic).
    pub fn lookup(&self, origin: ScopeId, name: Symbol) -> Option<LookupResult> {
        // 1. The originating scope (never blocks: the owner may still be
        //    building it, and statement tasks only run once it's complete).
        let s = self.search_table(origin, name, false);
        if let Some(entry) = s.entry {
            return self.finish_simple(
                entry,
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                s.initial,
            );
        }
        // 2. Builtins, treated as if declared local to every scope.
        if let Some(def) = self.builtins.lookup(name) {
            self.stats.record_simple(
                FoundWhen::FirstTry,
                ScopeClass::Builtin,
                Completeness::Complete,
            );
            return Some(LookupResult::Builtin(def));
        }
        // 3. Chain outward.
        let mut cur = self.tables.scope(origin).parent();
        while let Some(scope) = cur {
            let s = self.search_table(scope, name, true);
            if let Some(entry) = s.entry {
                let when = if s.after_dky {
                    FoundWhen::AfterDky
                } else {
                    FoundWhen::Search
                };
                return self.finish_simple(entry, when, ScopeClass::Outer, s.initial);
            }
            cur = self.tables.scope(scope).parent();
        }
        self.stats
            .record_simple(FoundWhen::Never, ScopeClass::Outer, Completeness::Complete);
        None
    }

    /// Classifies + records a successful simple lookup, resolving aliases.
    fn finish_simple(
        &self,
        entry: SymbolEntry,
        when: FoundWhen,
        scope_class: ScopeClass,
        completeness: Completeness,
    ) -> Option<LookupResult> {
        if let SymbolKind::Alias { from_scope, name } = entry.kind {
            // The real search happens in the exporting scope: Table 2
            // classifies these under scope "other".
            let (resolved, comp, after_dky) = self.resolve_alias(from_scope, name);
            let when = if after_dky { FoundWhen::AfterDky } else { when };
            return match resolved {
                Some(e) => {
                    self.stats.record_simple(when, ScopeClass::Other, comp);
                    Some(LookupResult::Entry(e))
                }
                None => {
                    self.stats
                        .record_simple(FoundWhen::Never, ScopeClass::Other, comp);
                    None
                }
            };
        }
        self.stats.record_simple(when, scope_class, completeness);
        Some(LookupResult::Entry(entry))
    }

    /// Qualified-identifier lookup `Module.name`: the search starts
    /// directly in the named module's scope.
    pub fn lookup_qualified(&self, module_scope: ScopeId, name: Symbol) -> Option<SymbolEntry> {
        let s = self.search_table(module_scope, name, true);
        match s.entry {
            Some(entry) => {
                let when = if s.after_dky {
                    FoundWhen::AfterDky
                } else {
                    FoundWhen::FirstTry
                };
                self.stats.record_qualified(when, s.initial);
                // Aliases inside definition modules (re-exports) resolve
                // transparently.
                if let SymbolKind::Alias { from_scope, name } = entry.kind {
                    let (resolved, _, _) = self.resolve_alias(from_scope, name);
                    return resolved;
                }
                Some(entry)
            }
            None => {
                self.stats.record_qualified(FoundWhen::Never, s.initial);
                None
            }
        }
    }

    /// Records a WITH-scope hit (the WITH binding set is managed by the
    /// statement analyzer, which calls this when a field name resolves to
    /// an active WITH record).
    pub fn record_with_hit(&self) {
        self.stats.record_simple(
            FoundWhen::FirstTry,
            ScopeClass::With,
            Completeness::Complete,
        );
    }
}

/// A successful lookup: either a real table entry or a pervasive builtin.
#[derive(Clone, PartialEq, Debug)]
pub enum LookupResult {
    /// Found a declared entry.
    Entry(SymbolEntry),
    /// The name is a pervasive builtin.
    Builtin(BuiltinDef),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::intern::Interner;
    use ccm2_support::source::FileId;
    use ccm2_support::work::NullMeter;

    fn fixture() -> (Arc<Interner>, Arc<SymbolTables>, Resolver) {
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let builtins = Arc::new(BuiltinTable::new(&interner));
        let stats = Arc::new(LookupStats::new());
        let resolver = Resolver::new(
            Arc::clone(&tables),
            builtins,
            stats,
            DkyStrategy::Skeptical,
            Arc::new(NullWaiter),
            Arc::new(NullMeter),
        );
        (interner, tables, resolver)
    }

    fn const_entry(name: Symbol, v: i64) -> SymbolEntry {
        SymbolEntry {
            name,
            kind: SymbolKind::Const {
                value: ConstValue::Int(v),
                ty: TypeId::INTEGER,
            },
            span: Span::default(),
        }
    }

    #[test]
    fn insert_and_find_in_self_scope() {
        let (i, tables, r) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let x = i.intern("x");
        tables.insert(m, const_entry(x, 1)).expect("fresh");
        tables.mark_complete(m);
        let found = r.lookup(m, x).expect("found");
        assert!(matches!(found, LookupResult::Entry(_)));
        assert_eq!(
            r.stats().simple_count(
                FoundWhen::FirstTry,
                ScopeClass::SelfScope,
                Completeness::Complete
            ),
            1
        );
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (i, tables, _) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let x = i.intern("x");
        tables.insert(m, const_entry(x, 1)).expect("fresh");
        assert!(tables.insert(m, const_entry(x, 2)).is_err());
    }

    #[test]
    fn outward_chain_search() {
        let (i, tables, r) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let p = tables.new_scope(ScopeKind::Procedure, i.intern("P"), Some(m), FileId(0));
        let g = i.intern("g");
        tables.insert(m, const_entry(g, 9)).expect("fresh");
        tables.mark_complete(m);
        tables.mark_complete(p);
        let found = r.lookup(p, g).expect("found in parent");
        assert!(matches!(found, LookupResult::Entry(_)));
        assert_eq!(
            r.stats()
                .simple_count(FoundWhen::Search, ScopeClass::Outer, Completeness::Complete),
            1
        );
    }

    #[test]
    fn builtin_found_before_outward_walk() {
        let (i, tables, r) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let p = tables.new_scope(ScopeKind::Procedure, i.intern("P"), Some(m), FileId(0));
        // The parent table is *incomplete*; a builtin lookup must not
        // walk outward (that is the whole point of the paper's local
        // builtin treatment).
        let found = r.lookup(p, i.intern("TRUE")).expect("builtin");
        assert!(matches!(found, LookupResult::Builtin(_)));
        assert_eq!(r.stats().dky_blockages(), 0);
        assert_eq!(
            r.stats().simple_count(
                FoundWhen::FirstTry,
                ScopeClass::Builtin,
                Completeness::Complete
            ),
            1
        );
    }

    #[test]
    fn undeclared_records_never() {
        let (i, tables, r) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        tables.mark_complete(m);
        assert!(r.lookup(m, i.intern("nope")).is_none());
        assert_eq!(r.stats().simple_never(), 1);
    }

    #[test]
    fn skeptical_finds_in_incomplete_table_without_blocking() {
        let (i, tables, r) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let p = tables.new_scope(ScopeKind::Procedure, i.intern("P"), Some(m), FileId(0));
        tables.mark_complete(p);
        let g = i.intern("g");
        tables.insert(m, const_entry(g, 1)).expect("fresh");
        // m is NOT complete; Skeptical must still find g there, without a
        // DKY blockage, and classify it as found-in-incomplete.
        let found = r.lookup(p, g);
        assert!(found.is_some());
        assert_eq!(r.stats().dky_blockages(), 0);
        assert_eq!(
            r.stats().simple_count(
                FoundWhen::Search,
                ScopeClass::Outer,
                Completeness::Incomplete
            ),
            1
        );
    }

    #[test]
    fn skeptical_miss_in_incomplete_table_blocks_and_retries() {
        // A waiter that completes the table when waited upon, simulating
        // the concurrent producer.
        struct CompletingWaiter {
            tables: Arc<SymbolTables>,
            entry: SymbolEntry,
        }
        impl DkyWaiter for CompletingWaiter {
            fn wait_scope_complete(&self, scope: ScopeId) {
                self.tables
                    .insert(scope, self.entry.clone())
                    .expect("fresh");
                self.tables.mark_complete(scope);
            }
            fn wait_symbol(&self, scope: ScopeId, _name: Symbol) {
                self.wait_scope_complete(scope);
            }
        }

        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let g = interner.intern("late");
        let m = tables.new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        let p = tables.new_scope(
            ScopeKind::Procedure,
            interner.intern("P"),
            Some(m),
            FileId(0),
        );
        tables.mark_complete(p);
        let waiter = CompletingWaiter {
            tables: Arc::clone(&tables),
            entry: const_entry(g, 5),
        };
        let stats = Arc::new(LookupStats::new());
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::clone(&stats),
            DkyStrategy::Skeptical,
            Arc::new(waiter),
            Arc::new(NullMeter),
        );
        let found = r.lookup(p, g);
        assert!(found.is_some(), "found after DKY wait");
        assert_eq!(stats.dky_blockages(), 1);
        assert_eq!(
            stats.simple_count(
                FoundWhen::AfterDky,
                ScopeClass::Outer,
                Completeness::Incomplete
            ),
            1
        );
    }

    #[test]
    fn pessimistic_blocks_even_when_present() {
        use std::sync::atomic::AtomicU64;
        #[derive(Default)]
        struct CountingWaiter {
            waits: AtomicU64,
        }
        impl DkyWaiter for CountingWaiter {
            fn wait_scope_complete(&self, _scope: ScopeId) {
                self.waits.fetch_add(1, Ordering::Relaxed);
            }
            fn wait_symbol(&self, _scope: ScopeId, _name: Symbol) {
                self.waits.fetch_add(1, Ordering::Relaxed);
            }
        }
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let g = interner.intern("g");
        let m = tables.new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        let p = tables.new_scope(
            ScopeKind::Procedure,
            interner.intern("P"),
            Some(m),
            FileId(0),
        );
        tables.mark_complete(p);
        tables.insert(m, const_entry(g, 2)).expect("fresh");
        let waiter = Arc::new(CountingWaiter::default());
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::new(LookupStats::new()),
            DkyStrategy::Pessimistic,
            Arc::clone(&waiter) as Arc<dyn DkyWaiter>,
            Arc::new(NullMeter),
        );
        // Entry *is* present, but the table is incomplete: Pessimistic
        // must wait anyway — that is its defining (conservative) behavior.
        let found = r.lookup(p, g);
        assert!(found.is_some());
        assert_eq!(waiter.waits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn from_import_alias_resolves_in_other_scope() {
        let (i, tables, r) = fixture();
        let def = tables.new_scope(ScopeKind::DefModule, i.intern("Lib"), None, FileId(0));
        let x = i.intern("x");
        tables.insert(def, const_entry(x, 42)).expect("fresh");
        tables.mark_complete(def);
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        tables
            .insert(
                m,
                SymbolEntry {
                    name: x,
                    kind: SymbolKind::Alias {
                        from_scope: def,
                        name: x,
                    },
                    span: Span::default(),
                },
            )
            .expect("fresh");
        tables.mark_complete(m);
        let found = r.lookup(m, x).expect("resolves through alias");
        let LookupResult::Entry(e) = found else {
            panic!("expected entry")
        };
        assert!(matches!(e.kind, SymbolKind::Const { .. }));
        assert_eq!(
            r.stats().simple_count(
                FoundWhen::FirstTry,
                ScopeClass::Other,
                Completeness::Complete
            ),
            1
        );
    }

    #[test]
    fn qualified_lookup_records_separately() {
        let (i, tables, r) = fixture();
        let def = tables.new_scope(ScopeKind::DefModule, i.intern("Lib"), None, FileId(0));
        let x = i.intern("x");
        tables.insert(def, const_entry(x, 42)).expect("fresh");
        tables.mark_complete(def);
        assert!(r.lookup_qualified(def, x).is_some());
        assert!(r.lookup_qualified(def, i.intern("missing")).is_none());
        assert_eq!(r.stats().qualified_total(), 2);
        assert_eq!(r.stats().simple_total(), 0);
    }

    #[test]
    fn ancestry_chain_is_ordered_inward_out() {
        let (i, tables, _) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let p = tables.new_scope(ScopeKind::Procedure, i.intern("P"), Some(m), FileId(0));
        let q = tables.new_scope(ScopeKind::Procedure, i.intern("Q"), Some(p), FileId(0));
        assert_eq!(tables.ancestry(q), vec![q, p, m]);
        assert_eq!(tables.scope(q).level(), 2);
        assert_eq!(tables.scope(m).level(), 0);
    }

    #[test]
    fn scope_levels_for_def_modules_are_zero() {
        let (i, tables, _) = fixture();
        let d = tables.new_scope(ScopeKind::DefModule, i.intern("D"), None, FileId(0));
        assert_eq!(tables.scope(d).level(), 0);
        assert_eq!(tables.scope(d).kind(), ScopeKind::DefModule);
    }

    #[test]
    fn slot_allocation_is_sequential() {
        let (i, tables, _) = fixture();
        let m = tables.new_scope(ScopeKind::MainModule, i.intern("M"), None, FileId(0));
        let t = tables.scope(m);
        assert_eq!(t.alloc_slot(), 0);
        assert_eq!(t.alloc_slot(), 1);
        assert_eq!(t.slot_count(), 2);
    }
}

#[cfg(test)]
mod classification_tests {
    use super::*;
    use crate::builtins::BuiltinTable;
    use crate::stats::{Completeness, FoundWhen, LookupStats};
    use ccm2_support::intern::Interner;
    use ccm2_support::source::FileId;
    use ccm2_support::work::NullMeter;
    use std::sync::Arc;

    fn entry(name: Symbol) -> SymbolEntry {
        SymbolEntry {
            name,
            kind: SymbolKind::Const {
                value: ConstValue::Int(1),
                ty: TypeId::INTEGER,
            },
            span: Span::default(),
        }
    }

    /// A waiter that inserts an entry and completes the scope when the
    /// per-symbol event is waited on (Optimistic resolution path).
    struct SymbolWaiter {
        tables: Arc<SymbolTables>,
        insert: Option<(ScopeId, Symbol)>,
    }

    impl DkyWaiter for SymbolWaiter {
        fn wait_scope_complete(&self, scope: ScopeId) {
            if let Some((s, n)) = self.insert {
                if self.tables.scope(s).get(n).is_none() {
                    let _ = self.tables.insert(s, entry(n));
                }
            }
            self.tables.mark_complete(scope);
        }
        fn wait_symbol(&self, scope: ScopeId, _name: Symbol) {
            self.wait_scope_complete(scope);
        }
    }

    #[test]
    fn qualified_lookup_after_dky_classified() {
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let x = interner.intern("x");
        let def = tables.new_scope(
            ScopeKind::DefModule,
            interner.intern("Lib"),
            None,
            FileId(0),
        );
        // Incomplete def scope: qualified skeptical search misses, waits,
        // and the waiter completes the table with the entry present.
        tables.insert(def, entry(x)).expect("fresh");
        // Remove again? No — to exercise "after DKY found": leave absent
        // at first. Use a second symbol.
        let y = interner.intern("y");
        let stats = Arc::new(LookupStats::new());
        let waiter = SymbolWaiter {
            tables: Arc::clone(&tables),
            insert: Some((def, y)),
        };
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::clone(&stats),
            DkyStrategy::Skeptical,
            Arc::new(waiter),
            Arc::new(NullMeter),
        );
        // `x` is already there: found first-try in an incomplete table.
        assert!(r.lookup_qualified(def, x).is_some());
        assert_eq!(
            stats.qualified_count(FoundWhen::FirstTry, Completeness::Incomplete),
            1
        );
        // `y` arrives only after the DKY wait.
        assert!(r.lookup_qualified(def, y).is_some());
        assert_eq!(
            stats.qualified_count(FoundWhen::AfterDky, Completeness::Incomplete),
            1
        );
        assert_eq!(stats.dky_blockages(), 1);
    }

    #[test]
    fn optimistic_wait_symbol_resolves_inserted_entry() {
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let m = tables.new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        let p = tables.new_scope(
            ScopeKind::Procedure,
            interner.intern("P"),
            Some(m),
            FileId(0),
        );
        tables.mark_complete(p);
        let late = interner.intern("late");
        let stats = Arc::new(LookupStats::new());
        let waiter = SymbolWaiter {
            tables: Arc::clone(&tables),
            insert: Some((m, late)),
        };
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::clone(&stats),
            DkyStrategy::Optimistic,
            Arc::new(waiter),
            Arc::new(NullMeter),
        );
        let found = r.lookup(p, late);
        assert!(found.is_some(), "resolved after per-symbol wait");
        assert_eq!(
            stats.simple_count(
                FoundWhen::AfterDky,
                crate::stats::ScopeClass::Outer,
                Completeness::Incomplete
            ),
            1
        );
    }

    #[test]
    fn optimistic_absent_symbol_continues_outward() {
        // The symbol is NOT in the waited scope; after the table completes
        // the search must continue outward and classify Never correctly.
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let m = tables.new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        let p = tables.new_scope(
            ScopeKind::Procedure,
            interner.intern("P"),
            Some(m),
            FileId(0),
        );
        tables.mark_complete(p);
        let ghost = interner.intern("ghost");
        let stats = Arc::new(LookupStats::new());
        let waiter = SymbolWaiter {
            tables: Arc::clone(&tables),
            insert: None,
        };
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::clone(&stats),
            DkyStrategy::Optimistic,
            Arc::new(waiter),
            Arc::new(NullMeter),
        );
        assert!(r.lookup(p, ghost).is_none());
        assert_eq!(stats.simple_never(), 1);
    }

    #[test]
    fn avoidance_strategy_waits_as_safety_net() {
        // Under Avoidance the scheduler should prevent incomplete-table
        // searches; if one happens anyway, the resolver must wait rather
        // than misreport.
        let interner = Arc::new(Interner::new());
        let tables = Arc::new(SymbolTables::new());
        let m = tables.new_scope(ScopeKind::MainModule, interner.intern("M"), None, FileId(0));
        let p = tables.new_scope(
            ScopeKind::Procedure,
            interner.intern("P"),
            Some(m),
            FileId(0),
        );
        tables.mark_complete(p);
        let g = interner.intern("g");
        tables.insert(m, entry(g)).expect("fresh");
        let stats = Arc::new(LookupStats::new());
        let waiter = SymbolWaiter {
            tables: Arc::clone(&tables),
            insert: None,
        };
        let r = Resolver::new(
            Arc::clone(&tables),
            Arc::new(BuiltinTable::new(&interner)),
            Arc::clone(&stats),
            DkyStrategy::Avoidance,
            Arc::new(waiter),
            Arc::new(NullMeter),
        );
        let found = r.lookup(p, g);
        assert!(found.is_some());
        assert_eq!(stats.dky_blockages(), 1, "blocked before searching");
    }
}
