//! The Modula-2+ type representation.
//!
//! Types live in a process-wide append-only [`TypeStore`] so that
//! concurrently running declaration-analysis tasks can create types without
//! coordination beyond an internal lock. Types are referred to by
//! [`TypeId`]; the well-known builtin types have fixed ids so every task
//! agrees on them without synchronization.
//!
//! Type identity follows Modula-2 name equivalence: every elaborated type
//! expression gets a fresh `TypeId`, and compatibility is decided by the
//! rules in [`TypeStore::assignable`] / [`TypeStore::same_type`].

use ccm2_support::intern::Symbol;
use std::sync::RwLock;

/// Identifies a type in a [`TypeStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The error ("poison") type: produced when elaboration fails, silently
    /// compatible with everything to avoid error cascades.
    pub const ERROR: TypeId = TypeId(0);
    /// `INTEGER`.
    pub const INTEGER: TypeId = TypeId(1);
    /// `CARDINAL`.
    pub const CARDINAL: TypeId = TypeId(2);
    /// `BOOLEAN`.
    pub const BOOLEAN: TypeId = TypeId(3);
    /// `CHAR`.
    pub const CHAR: TypeId = TypeId(4);
    /// `REAL`.
    pub const REAL: TypeId = TypeId(5);
    /// `BITSET`.
    pub const BITSET: TypeId = TypeId(6);
    /// The type of `NIL`.
    pub const NILTYPE: TypeId = TypeId(7);
    /// The type of string literals.
    pub const STRING: TypeId = TypeId(8);
    /// `PROC` (parameterless procedure type).
    pub const PROC: TypeId = TypeId(9);
    /// Placeholder for not-yet-patched forward pointer targets.
    pub const PENDING: TypeId = TypeId(10);
    /// `ADDRESS` (SYSTEM-ish; used by Modula-2+ LOCK designators).
    pub const ADDRESS: TypeId = TypeId(11);

    const FIRST_DYNAMIC: u32 = 12;
}

/// Structural description of a type.
#[derive(Clone, PartialEq, Debug)]
pub enum Type {
    /// The poison type.
    Error,
    /// `INTEGER`.
    Integer,
    /// `CARDINAL`.
    Cardinal,
    /// `BOOLEAN`.
    Boolean,
    /// `CHAR`.
    Char,
    /// `REAL`.
    Real,
    /// `BITSET` (set of 0..63 here; see crate docs).
    Bitset,
    /// The type of the literal `NIL`.
    Nil,
    /// The type of string literals.
    StringLit,
    /// Pending forward-pointer target (patched during declaration
    /// analysis).
    Pending,
    /// `ADDRESS`.
    Address,
    /// An enumeration; members are also entered in the declaring scope.
    Enumeration {
        /// Member names in declaration order (member k has ordinal k).
        members: Vec<Symbol>,
    },
    /// A subrange `[lo .. hi]` of an ordinal base type.
    Subrange {
        /// The base ordinal type.
        base: TypeId,
        /// Lower bound (as an ordinal value).
        lo: i64,
        /// Upper bound (as an ordinal value).
        hi: i64,
    },
    /// `ARRAY index OF elem`.
    Array {
        /// Index type (ordinal; gives the bounds).
        index: TypeId,
        /// Element type.
        elem: TypeId,
    },
    /// Open array formal `ARRAY OF elem`.
    OpenArray {
        /// Element type.
        elem: TypeId,
    },
    /// A record with named fields.
    Record {
        /// Fields in declaration order.
        fields: Vec<(Symbol, TypeId)>,
    },
    /// `POINTER TO to`.
    Pointer {
        /// Pointee (may start as [`TypeId::PENDING`] for forward refs).
        to: TypeId,
    },
    /// `SET OF of` (base must be ordinal with ordinals in 0..63).
    Set {
        /// Base ordinal type.
        of: TypeId,
    },
    /// A procedure type.
    Proc {
        /// Parameters: (is-VAR, type).
        params: Vec<(bool, TypeId)>,
        /// Return type, if a function procedure.
        ret: Option<TypeId>,
    },
    /// An opaque type from a definition module (`TYPE T;`).
    Opaque {
        /// The declared name (for diagnostics).
        name: Symbol,
    },
}

/// Append-only, thread-safe arena of [`Type`]s.
///
/// # Examples
///
/// ```
/// use ccm2_sema::types::{Type, TypeId, TypeStore};
/// let store = TypeStore::new();
/// let t = store.add(Type::Pointer { to: TypeId::INTEGER });
/// assert!(matches!(store.get(t), Type::Pointer { .. }));
/// assert!(store.assignable(TypeId::INTEGER, TypeId::CARDINAL));
/// ```
#[derive(Debug)]
pub struct TypeStore {
    types: RwLock<Vec<Type>>,
}

impl TypeStore {
    /// Creates a store pre-populated with the builtin types at their fixed
    /// ids.
    pub fn new() -> TypeStore {
        let types = vec![
            Type::Error,
            Type::Integer,
            Type::Cardinal,
            Type::Boolean,
            Type::Char,
            Type::Real,
            Type::Bitset,
            Type::Nil,
            Type::StringLit,
            Type::Proc {
                params: Vec::new(),
                ret: None,
            },
            Type::Pending,
            Type::Address,
        ];
        debug_assert_eq!(types.len() as u32, TypeId::FIRST_DYNAMIC);
        TypeStore {
            types: RwLock::new(types),
        }
    }

    /// Adds a type, returning its id.
    pub fn add(&self, ty: Type) -> TypeId {
        let mut v = self.types.write().expect("type store poisoned");
        let id = TypeId(v.len() as u32);
        v.push(ty);
        id
    }

    /// Returns a clone of the type under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this store.
    pub fn get(&self, id: TypeId) -> Type {
        self.types.read().expect("type store poisoned")[id.0 as usize].clone()
    }

    /// Patches the pointee of a forward-declared pointer type.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not a pointer type.
    pub fn patch_pointer(&self, ptr: TypeId, target: TypeId) {
        let mut v = self.types.write().expect("type store poisoned");
        match &mut v[ptr.0 as usize] {
            Type::Pointer { to } => *to = target,
            other => panic!("patch_pointer on non-pointer {other:?}"),
        }
    }

    /// Number of types in the store (builtin + dynamic).
    pub fn len(&self) -> usize {
        self.types.read().expect("type store poisoned").len()
    }

    /// Always false: the store is born with the builtin types.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Strips subranges down to their base type.
    pub fn strip_subrange(&self, id: TypeId) -> TypeId {
        match self.get(id) {
            Type::Subrange { base, .. } => self.strip_subrange(base),
            _ => id,
        }
    }

    /// Returns `true` for ordinal types (valid array indices, set bases,
    /// CASE scrutinees, FOR control variables).
    pub fn is_ordinal(&self, id: TypeId) -> bool {
        matches!(
            self.get(self.strip_subrange(id)),
            Type::Integer | Type::Cardinal | Type::Boolean | Type::Char | Type::Enumeration { .. }
        ) || id == TypeId::ERROR
    }

    /// Returns `true` if the type is numeric (INTEGER/CARDINAL/subranges).
    pub fn is_integerlike(&self, id: TypeId) -> bool {
        matches!(
            self.get(self.strip_subrange(id)),
            Type::Integer | Type::Cardinal
        ) || id == TypeId::ERROR
    }

    /// The inclusive ordinal bounds of an ordinal type, if known.
    pub fn ordinal_bounds(&self, id: TypeId) -> Option<(i64, i64)> {
        match self.get(id) {
            Type::Subrange { lo, hi, .. } => Some((lo, hi)),
            Type::Boolean => Some((0, 1)),
            Type::Char => Some((0, 255)),
            Type::Enumeration { members } => Some((0, members.len() as i64 - 1)),
            Type::Integer => Some((i64::MIN / 2, i64::MAX / 2)),
            Type::Cardinal => Some((0, i64::MAX / 2)),
            _ => None,
        }
    }

    /// Name-equivalence with poison tolerance: two types are "the same"
    /// if they have equal ids, either is `ERROR`, or both are the same
    /// builtin class after subrange stripping.
    pub fn same_type(&self, a: TypeId, b: TypeId) -> bool {
        if a == b || a == TypeId::ERROR || b == TypeId::ERROR {
            return true;
        }
        let sa = self.strip_subrange(a);
        let sb = self.strip_subrange(b);
        if sa == sb {
            return true;
        }
        // INTEGER and CARDINAL are mutually compatible in expressions.
        self.is_integerlike(sa) && self.is_integerlike(sb)
    }

    /// Assignment compatibility (`dst := src`), per PIM with the usual
    /// relaxations: INTEGER/CARDINAL/subranges inter-assign, CHAR accepts
    /// char literals, any pointer or procedure type accepts NIL, arrays of
    /// CHAR accept string literals, ADDRESS accepts any pointer.
    pub fn assignable(&self, dst: TypeId, src: TypeId) -> bool {
        if self.same_type(dst, src) {
            return true;
        }
        let d = self.get(self.strip_subrange(dst));
        let s = self.get(self.strip_subrange(src));
        match (&d, &s) {
            (Type::Pointer { .. }, Type::Nil) | (Type::Proc { .. }, Type::Nil) => true,
            (Type::Address, Type::Pointer { .. }) | (Type::Address, Type::Nil) => true,
            (Type::Char, Type::StringLit) => true,
            (Type::Array { elem, .. }, Type::StringLit) => {
                self.strip_subrange(*elem) == TypeId::CHAR
            }
            (Type::OpenArray { elem }, Type::Array { elem: se, .. }) => self.same_type(*elem, *se),
            (Type::OpenArray { elem }, Type::StringLit) => {
                self.strip_subrange(*elem) == TypeId::CHAR
            }
            // Structural tolerance for procedure values.
            (
                Type::Proc {
                    params: dp,
                    ret: dr,
                },
                Type::Proc {
                    params: sp,
                    ret: sr,
                },
            ) => {
                dp.len() == sp.len()
                    && dp
                        .iter()
                        .zip(sp)
                        .all(|((dv, dt), (sv, st))| dv == sv && self.same_type(*dt, *st))
                    && match (dr, sr) {
                        (None, None) => true,
                        (Some(a), Some(b)) => self.same_type(*a, *b),
                        _ => false,
                    }
            }
            _ => false,
        }
    }

    /// Number of elements of a (closed) array type.
    pub fn array_len(&self, index: TypeId) -> Option<i64> {
        let (lo, hi) = self.ordinal_bounds(index)?;
        Some(hi - lo + 1)
    }
}

impl Default for TypeStore {
    fn default() -> Self {
        TypeStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::intern::Interner;

    #[test]
    fn builtin_ids_are_fixed() {
        let s = TypeStore::new();
        assert_eq!(s.get(TypeId::INTEGER), Type::Integer);
        assert_eq!(s.get(TypeId::BOOLEAN), Type::Boolean);
        assert_eq!(s.get(TypeId::ERROR), Type::Error);
    }

    #[test]
    fn add_and_get_round_trip() {
        let s = TypeStore::new();
        let t = s.add(Type::Set { of: TypeId::CHAR });
        assert_eq!(s.get(t), Type::Set { of: TypeId::CHAR });
    }

    #[test]
    fn subrange_stripping_recurses() {
        let s = TypeStore::new();
        let r1 = s.add(Type::Subrange {
            base: TypeId::INTEGER,
            lo: 0,
            hi: 10,
        });
        let r2 = s.add(Type::Subrange {
            base: r1,
            lo: 0,
            hi: 5,
        });
        assert_eq!(s.strip_subrange(r2), TypeId::INTEGER);
        assert!(s.is_ordinal(r2));
        assert!(s.is_integerlike(r2));
    }

    #[test]
    fn integer_cardinal_compatible() {
        let s = TypeStore::new();
        assert!(s.same_type(TypeId::INTEGER, TypeId::CARDINAL));
        assert!(s.assignable(TypeId::CARDINAL, TypeId::INTEGER));
        assert!(!s.same_type(TypeId::INTEGER, TypeId::REAL));
    }

    #[test]
    fn nil_assignable_to_pointers_and_procs() {
        let s = TypeStore::new();
        let p = s.add(Type::Pointer { to: TypeId::REAL });
        assert!(s.assignable(p, TypeId::NILTYPE));
        assert!(s.assignable(TypeId::PROC, TypeId::NILTYPE));
        assert!(!s.assignable(TypeId::INTEGER, TypeId::NILTYPE));
        assert!(s.assignable(TypeId::ADDRESS, p));
    }

    #[test]
    fn string_literal_assigns_to_char_arrays() {
        let s = TypeStore::new();
        let ix = s.add(Type::Subrange {
            base: TypeId::INTEGER,
            lo: 0,
            hi: 9,
        });
        let arr = s.add(Type::Array {
            index: ix,
            elem: TypeId::CHAR,
        });
        assert!(s.assignable(arr, TypeId::STRING));
        assert!(s.assignable(TypeId::CHAR, TypeId::STRING));
        let int_arr = s.add(Type::Array {
            index: ix,
            elem: TypeId::INTEGER,
        });
        assert!(!s.assignable(int_arr, TypeId::STRING));
    }

    #[test]
    fn open_array_accepts_matching_arrays() {
        let s = TypeStore::new();
        let ix = s.add(Type::Subrange {
            base: TypeId::INTEGER,
            lo: 1,
            hi: 4,
        });
        let arr = s.add(Type::Array {
            index: ix,
            elem: TypeId::REAL,
        });
        let open = s.add(Type::OpenArray { elem: TypeId::REAL });
        assert!(s.assignable(open, arr));
        assert_eq!(s.array_len(ix), Some(4));
    }

    #[test]
    fn proc_types_structurally_compatible() {
        let s = TypeStore::new();
        let a = s.add(Type::Proc {
            params: vec![(false, TypeId::INTEGER)],
            ret: Some(TypeId::BOOLEAN),
        });
        let b = s.add(Type::Proc {
            params: vec![(false, TypeId::INTEGER)],
            ret: Some(TypeId::BOOLEAN),
        });
        let c = s.add(Type::Proc {
            params: vec![(true, TypeId::INTEGER)],
            ret: Some(TypeId::BOOLEAN),
        });
        assert!(s.assignable(a, b));
        assert!(!s.assignable(a, c), "VAR-ness matters");
    }

    #[test]
    fn pointer_patching() {
        let s = TypeStore::new();
        let p = s.add(Type::Pointer {
            to: TypeId::PENDING,
        });
        let r = s.add(Type::Record { fields: vec![] });
        s.patch_pointer(p, r);
        assert_eq!(s.get(p), Type::Pointer { to: r });
    }

    #[test]
    fn enumeration_bounds() {
        let s = TypeStore::new();
        let i = Interner::new();
        let e = s.add(Type::Enumeration {
            members: vec![i.intern("red"), i.intern("green"), i.intern("blue")],
        });
        assert_eq!(s.ordinal_bounds(e), Some((0, 2)));
        assert!(s.is_ordinal(e));
        assert!(!s.is_integerlike(e));
    }

    #[test]
    fn error_is_compatible_with_everything() {
        let s = TypeStore::new();
        assert!(s.same_type(TypeId::ERROR, TypeId::REAL));
        assert!(s.assignable(TypeId::REAL, TypeId::ERROR));
        assert!(s.is_ordinal(TypeId::ERROR));
    }
}
