//! Compile-time constant values.
//!
//! Constant expressions appear in `CONST` declarations, subrange and array
//! bounds, case labels and `FOR` steps; they are evaluated during
//! declaration analysis (see [`crate::consteval`]) and stored in symbol
//! table entries.

use ccm2_support::intern::Symbol;

/// A compile-time constant.
///
/// Reals are stored as IEEE bit patterns so the type can be `Eq`/`Hash`
/// (object-code equivalence tests compare entries structurally). Sets are
/// 64-bit masks; set base ordinals are restricted to `0..=63`, which this
/// reproduction documents as a limit (the paper's compiler targeted a
/// 32-bit Vax word with the same flavor of restriction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstValue {
    /// An integer (also used for ordinals of enumerations and chars in
    /// ordinal contexts).
    Int(i64),
    /// A real number, as IEEE-754 bits.
    Real(u64),
    /// A boolean.
    Bool(bool),
    /// A character.
    Char(u8),
    /// A string literal.
    Str(Symbol),
    /// A set as a 64-bit mask.
    Set(u64),
    /// The `NIL` pointer.
    Nil,
}

impl ConstValue {
    /// The ordinal of this value, if it is ordinal-like.
    pub fn ordinal(&self) -> Option<i64> {
        match *self {
            ConstValue::Int(v) => Some(v),
            ConstValue::Bool(b) => Some(b as i64),
            ConstValue::Char(c) => Some(c as i64),
            _ => None,
        }
    }

    /// The real value, also accepting integers (implicit widening inside
    /// constant expressions mirrors `FLOAT`).
    pub fn as_real(&self) -> Option<f64> {
        match *self {
            ConstValue::Real(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// Wraps an `f64`.
    pub fn from_real(v: f64) -> ConstValue {
        ConstValue::Real(v.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals() {
        assert_eq!(ConstValue::Int(7).ordinal(), Some(7));
        assert_eq!(ConstValue::Bool(true).ordinal(), Some(1));
        assert_eq!(ConstValue::Char(b'A').ordinal(), Some(65));
        assert_eq!(ConstValue::from_real(1.0).ordinal(), None);
        assert_eq!(ConstValue::Nil.ordinal(), None);
    }

    #[test]
    fn real_round_trip() {
        let v = ConstValue::from_real(2.5);
        assert_eq!(v.as_real(), Some(2.5));
        assert_eq!(ConstValue::Int(1).as_real(), None);
    }
}
