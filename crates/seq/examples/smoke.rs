//! Compile-and-run smoke test over the sequential pipeline: factorial,
//! records/WITH, pointers/NEW with nested procedures and uplevel access,
//! CASE/sets/enums. Asserts exact program output.
//!
//! ```text
//! cargo run -p ccm2-seq --example smoke
//! ```

use ccm2_seq::{compile, DefLibrary};
use ccm2_vm::Vm;
fn run(src: &str) -> String {
    let out = compile(src, &DefLibrary::new());
    if !out.is_ok() {
        panic!("compile failed: {:?}", out.diagnostics);
    }
    let img = out.image.unwrap();
    Vm::new(out.interner).run(&img).expect("vm run")
}
fn main() {
    // factorial with FOR + function calls
    let out = run("MODULE F; VAR i, f : INTEGER; \
        PROCEDURE Fact(n : INTEGER) : INTEGER; \
        BEGIN IF n <= 1 THEN RETURN 1 ELSE RETURN n * Fact(n - 1) END END Fact; \
        BEGIN FOR i := 1 TO 5 DO WriteInt(Fact(i), 4) END; WriteLn END F.");
    assert_eq!(out, "   1   2   6  24 120\n", "got {:?}", out);
    // records, WITH, arrays, while
    let out = run("MODULE R; TYPE Pt = RECORD x, y : INTEGER END; \
        VAR a : ARRAY [1..3] OF Pt; i : INTEGER; s : INTEGER; \
        BEGIN \
          FOR i := 1 TO 3 DO WITH a[i] DO x := i; y := i * i END END; \
          s := 0; i := 1; \
          WHILE i <= 3 DO s := s + a[i].x + a[i].y; INC(i) END; \
          WriteInt(s, 0); WriteLn \
        END R.");
    assert_eq!(out.trim(), "20", "1+1+2+4+3+9 = 20, got {:?}", out);
    // pointers, NEW, nested procedures with uplevel access, VAR params
    let out = run("MODULE P; TYPE L = POINTER TO Node; Node = RECORD v : INTEGER; next : L END; \
        VAR head : L; total : INTEGER; \
        PROCEDURE Push(VAR lst : L; val : INTEGER); VAR n : L; \
        BEGIN NEW(n); n^.v := val; n^.next := lst; lst := n END Push; \
        PROCEDURE Sum(lst : L) : INTEGER; \
          VAR acc : INTEGER; \
          PROCEDURE Add(k : INTEGER); BEGIN acc := acc + k END Add; \
        BEGIN acc := 0; WHILE lst # NIL DO Add(lst^.v); lst := lst^.next END; RETURN acc END Sum; \
        BEGIN Push(head, 10); Push(head, 20); Push(head, 12); total := Sum(head); WriteInt(total, 0) END P.");
    assert_eq!(out.trim(), "42", "got {:?}", out);
    // CASE, sets, enums, REPEAT, CHAR
    let out = run("MODULE C; TYPE Color = (red, green, blue); \
        VAR c : Color; s : BITSET; n : INTEGER; ch : CHAR; \
        BEGIN \
          c := green; n := 0; \
          CASE c OF red : n := 1 | green, blue : n := 2 END; \
          s := {1, 3..4}; IF 3 IN s THEN INC(n, 10) END; \
          ch := 'a'; REPEAT ch := CAP(ch); UNTIL ch = 'A'; \
          IF ch = 'A' THEN INC(n, 100) END; \
          WriteInt(n, 0) \
        END C.");
    assert_eq!(out.trim(), "112", "got {:?}", out);
    println!("SMOKE OK");
}
