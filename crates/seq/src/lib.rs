//! The conventional sequential Modula-2+ compiler.
//!
//! This is the paper's baseline (§4.2): a traditional single-threaded
//! compiler built from exactly the same frontend, semantic-analysis and
//! code-generation substrates as the concurrent compiler, in the classic
//! phase order — lex, parse, process imports depth-first, declare, then
//! generate code. On one processor the *concurrent* compiler was measured
//! to be 4.3% slower than this baseline because of its concurrency
//! scaffolding; the `overhead` experiment regenerates that comparison.
//!
//! Because the substrates are shared, the sequential compiler also serves
//! as the *oracle* in the equivalence tests: for every input the
//! concurrent compiler must produce the identical [`ModuleImage`] and
//! identical diagnostics.
//!
//! # Examples
//!
//! ```
//! use ccm2_seq::{compile, DefLibrary};
//!
//! let lib = DefLibrary::new();
//! let out = compile(
//!     "MODULE Hello; BEGIN WriteString('hi'); WriteLn END Hello.",
//!     &lib,
//! );
//! assert!(out.diagnostics.is_empty());
//! assert!(out.image.is_some());
//! ```

use std::collections::HashMap;
use std::sync::Arc;

pub use ccm2_support::defs::{DefLibrary, DefProvider};

use ccm2_codegen::emit::{gen_error_unit, gen_module_body, gen_procedure, global_shapes};
use ccm2_codegen::merge::{Merger, ModuleImage};
use ccm2_sema::declare::{bind_imports, declare_decls, DeclareHooks, HeadingMode, PendingProc};
use ccm2_sema::stats::LookupStats;
use ccm2_sema::symtab::{DkyStrategy, NullWaiter, ScopeKind};
use ccm2_sema::Sema;
use ccm2_support::diag::{Diagnostic, DiagnosticSink};
use ccm2_support::ids::ScopeId;
use ccm2_support::intern::{Interner, Symbol};
use ccm2_support::source::SourceMap;
use ccm2_support::work::{NullMeter, Work, WorkMeter};
use ccm2_syntax::ast::{DefinitionModule, ProcBody};
use ccm2_syntax::lexer::lex_file;
use ccm2_syntax::parser::{parse_definition, parse_implementation};

/// The result of a sequential compilation.
#[derive(Debug)]
pub struct CompileOutput {
    /// The merged object image (`None` only if the module header itself
    /// was unparseable).
    pub image: Option<ModuleImage>,
    /// Sorted diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Identifier-lookup statistics.
    pub stats: Arc<LookupStats>,
    /// The interner used (needed to run the image in the VM).
    pub interner: Arc<Interner>,
    /// Source registry (for mapping diagnostics to file names).
    pub sources: Arc<SourceMap>,
    /// Number of definition modules processed (directly or indirectly
    /// imported — Table 1's "Imported Interfaces").
    pub imported_interfaces: usize,
    /// Maximum import nesting depth (Table 1).
    pub import_nesting_depth: usize,
    /// Number of procedures compiled.
    pub procedures: usize,
    /// What the interprocedural lock-order pass did (`None` unless the
    /// analysis phase ran).
    pub locks: Option<ccm2_analysis::LockStats>,
}

impl CompileOutput {
    /// Whether compilation succeeded without errors.
    pub fn is_ok(&self) -> bool {
        self.image.is_some()
            && !self
                .diagnostics
                .iter()
                .any(|d| d.severity == ccm2_support::diag::Severity::Error)
    }
}

/// Compiles `main_source` with default options (shared substrates, the
/// paper's §2.4 alternative-1 heading mode).
pub fn compile(main_source: &str, defs: &dyn DefProvider) -> CompileOutput {
    compile_with(
        main_source,
        defs,
        Arc::new(Interner::new()),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    )
}

/// Compiles with explicit interner, work meter and §2.4 heading mode.
///
/// Passing a shared interner lets callers compare the resulting image
/// against another compiler's output symbol-for-symbol.
pub fn compile_with(
    main_source: &str,
    defs: &dyn DefProvider,
    interner: Arc<Interner>,
    meter: Arc<dyn WorkMeter>,
    heading_mode: HeadingMode,
) -> CompileOutput {
    compile_full(main_source, defs, interner, meter, heading_mode, false)
}

/// [`compile_with`], plus the opt-in analysis phase: when `analyze` is
/// set, the [`ccm2_analysis`] dataflow lints run in phase order (after
/// declaration analysis, before code generation) over the module unit
/// and every procedure unit, and the unused-import check runs over the
/// union of the units' used-name sets. The concurrent driver runs the
/// identical passes as `Analyze` tasks; diagnostics are byte-identical.
pub fn compile_full(
    main_source: &str,
    defs: &dyn DefProvider,
    interner: Arc<Interner>,
    meter: Arc<dyn WorkMeter>,
    heading_mode: HeadingMode,
    analyze: bool,
) -> CompileOutput {
    let sink = Arc::new(DiagnosticSink::new());
    let sema = Sema::new(
        Arc::clone(&interner),
        Arc::clone(&sink),
        // Sequentially, every table is complete before it is searched, so
        // the strategy never matters; Skeptical is the house default.
        DkyStrategy::Skeptical,
        Arc::new(NullWaiter),
        Arc::clone(&meter),
    );
    let sources = Arc::new(SourceMap::new());

    // ---- front end for the implementation module -----------------------
    let main_file = sources.add("Main.mod", main_source);
    let tokens = lex_file(&main_file, &interner, &sink);
    meter.charge(Work::Lex, tokens.len() as u64);
    meter.charge(Work::Parse, tokens.len() as u64);
    let Some(module) = parse_implementation(&tokens, &interner, &sink) else {
        return CompileOutput {
            image: None,
            diagnostics: sink.take(),
            stats: Arc::clone(sema.stats()),
            interner,
            sources,
            imported_interfaces: 0,
            import_nesting_depth: 0,
            procedures: 0,
            locks: None,
        };
    };

    // ---- imports, depth-first (definition modules form a tree; §4.4) ----
    let mut loader = DefLoader {
        sema: &sema,
        defs,
        sources: &sources,
        sink: &sink,
        meter: meter.as_ref(),
        scopes: HashMap::new(),
        max_depth: 0,
        heading_mode,
    };
    for imp in &module.imports {
        loader.load(imp.module().name, 1);
    }
    let def_scopes: HashMap<Symbol, ScopeId> = loader.scopes.clone();
    let imported_interfaces = def_scopes.len();
    let import_nesting_depth = loader.max_depth;

    // ---- main module: declare, then generate -----------------------------
    let main_scope = sema.tables.new_scope(
        ScopeKind::MainModule,
        module.name.name,
        None,
        main_file.id(),
    );
    bind_imports(&sema, main_scope, &module.imports, &|name| {
        def_scopes.get(&name).copied()
    });
    let hooks = SeqHooks;
    let pending = declare_decls(&sema, main_scope, &module.decls, heading_mode, &hooks);
    sema.tables.mark_complete(main_scope);
    // Declare all procedure scopes (recursively) before generating any
    // code: the same "declarations first" discipline the concurrent
    // compiler gets from its task ordering, and what makes forward calls
    // between procedures compile identically under both compilers.
    let mut all_procs: Vec<PendingProc> = Vec::new();
    let mut queue = pending;
    while let Some(p) = queue.pop() {
        if let ProcBody::Local(local) = &p.body {
            match heading_mode {
                HeadingMode::Reprocess => {
                    ccm2_sema::declare::declare_own_params(&sema, p.scope, &p.heading);
                }
                HeadingMode::Dual => {
                    ccm2_sema::declare::verify_heading(&sema, p.scope, &p.heading);
                }
                HeadingMode::CopyToChild => {}
            }
            let nested = declare_decls(&sema, p.scope, &local.decls, heading_mode, &hooks);
            sema.tables.mark_complete(p.scope);
            queue.extend(nested);
        }
        all_procs.push(p);
    }

    // ---- analysis phase (opt-in dataflow lints) --------------------------
    let mut locks = None;
    if analyze {
        let ua = ccm2_analysis::analyze_unit(
            &interner,
            main_file.id(),
            &interner.resolve(module.name.name),
            ccm2_analysis::UnitKind::Module,
            &module.decls,
            &module.body,
            &sink,
        );
        meter.charge(Work::Analyze, ua.work);
        let mut used = ua.used;
        let mut summaries = vec![ua.summary];
        for p in &all_procs {
            if let ProcBody::Local(local) = &p.body {
                let ua = ccm2_analysis::analyze_unit(
                    &interner,
                    main_file.id(),
                    &interner.resolve(p.code_name),
                    ccm2_analysis::UnitKind::Procedure,
                    &local.decls,
                    &local.body,
                    &sink,
                );
                meter.charge(Work::Analyze, ua.work);
                used.extend(ua.used);
                summaries.push(ua.summary);
            }
        }
        ccm2_analysis::check_unused_imports(
            &interner,
            main_file.id(),
            &module.imports,
            &used,
            &sink,
        );
        // Interprocedural lock-order pass: summaries in phase order here;
        // the concurrent driver collects the identical set through its
        // AnalysisHub, and the pass sorts internally, so the diagnostics
        // match byte for byte.
        let (lock_diags, lock_stats) = ccm2_analysis::lock_order_pass(&summaries, main_file.id());
        for d in lock_diags {
            sink.report(d);
        }
        locks = Some(lock_stats);
    }

    // ---- code generation + merge -----------------------------------------
    let merger = Merger::new(module.name.name, Arc::clone(&interner));
    merger.add_globals(module.name.name, global_shapes(&sema, main_scope));
    for (&name, &scope) in &def_scopes {
        merger.add_globals(name, global_shapes(&sema, scope));
    }
    let mut procedures = 0usize;
    for p in &all_procs {
        if let ProcBody::Local(local) = &p.body {
            let unit = if local.poisoned {
                let level = sema.tables.scope(p.scope).level();
                gen_error_unit(&interner, p.code_name, level)
            } else {
                gen_procedure(&sema, p.scope, p.code_name, &p.sig, &local.body)
            };
            merger.add_unit(unit, meter.as_ref());
            procedures += 1;
        }
    }
    let body_unit = if module.body_poisoned {
        gen_error_unit(&interner, module.name.name, 0)
    } else {
        gen_module_body(&sema, main_scope, module.name.name, &module.body)
    };
    merger.add_unit(body_unit, meter.as_ref());

    CompileOutput {
        image: Some(merger.finish()),
        diagnostics: sink.take(),
        stats: Arc::clone(sema.stats()),
        interner,
        sources,
        imported_interfaces,
        import_nesting_depth,
        procedures,
        locks,
    }
}

struct SeqHooks;

impl DeclareHooks for SeqHooks {
    fn scope_for_stream(&self, stream: ccm2_support::ids::StreamId) -> ScopeId {
        unreachable!("sequential compilation produced a remote body for {stream}");
    }
    fn heading_done(&self, _scope: ScopeId, _code_name: Symbol, _sig: &ccm2_sema::symtab::ProcSig) {
    }
}

struct DefLoader<'a> {
    sema: &'a Sema,
    defs: &'a dyn DefProvider,
    sources: &'a SourceMap,
    sink: &'a DiagnosticSink,
    meter: &'a dyn WorkMeter,
    scopes: HashMap<Symbol, ScopeId>,
    max_depth: usize,
    heading_mode: HeadingMode,
}

impl<'a> DefLoader<'a> {
    /// Loads (once) the definition module `name` and everything it
    /// imports, post-order, so every interface is declared before its
    /// importers are.
    fn load(&mut self, name: Symbol, depth: usize) -> Option<ScopeId> {
        self.max_depth = self.max_depth.max(depth);
        if let Some(&scope) = self.scopes.get(&name) {
            return Some(scope);
        }
        let name_str = self.sema.interner.resolve(name);
        let Some(text) = self.defs.definition_source(&name_str) else {
            // Reported at the importing site by bind_imports.
            return None;
        };
        let file = self.sources.add(format!("{name_str}.def"), text);
        let tokens = lex_file(&file, &self.sema.interner, self.sink);
        self.meter.charge(Work::Lex, tokens.len() as u64);
        self.meter.charge(Work::Import, tokens.len() as u64 / 8);
        self.meter.charge(Work::Parse, tokens.len() as u64);
        let parsed: Option<DefinitionModule> =
            parse_definition(&tokens, &self.sema.interner, self.sink);
        let def = parsed?;
        if def.name.name != name {
            self.sink.report(Diagnostic::error(
                file.id(),
                def.name.span,
                format!(
                    "definition file for `{name_str}` declares module `{}`",
                    self.sema.interner.resolve(def.name.name)
                ),
            ));
        }
        // Imports of this interface, depth-first (the "once-only" table of
        // §3 is the `scopes` map).
        for imp in &def.imports {
            self.load(imp.module().name, depth + 1);
        }
        let scope = self
            .sema
            .tables
            .new_scope(ScopeKind::DefModule, name, None, file.id());
        self.scopes.insert(name, scope);
        let import_scopes = self.scopes.clone();
        bind_imports(self.sema, scope, &def.imports, &|n| {
            import_scopes.get(&n).copied()
        });
        declare_decls(self.sema, scope, &def.decls, self.heading_mode, &SeqHooks);
        self.sema.tables.mark_complete(scope);
        Some(scope)
    }
}

/// Compiles and disassembles in one step (used by examples and tools).
///
/// # Errors
///
/// Returns the diagnostics if compilation failed.
pub fn compile_listing(
    main_source: &str,
    defs: &dyn DefProvider,
) -> Result<String, Vec<Diagnostic>> {
    let out = compile(main_source, defs);
    match (&out.image, out.is_ok()) {
        (Some(img), true) => Ok(img.disassemble(&out.interner)),
        _ => Err(out.diagnostics),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_world_compiles() {
        let out = compile(
            "MODULE Hello; BEGIN WriteString('hello'); WriteLn END Hello.",
            &DefLibrary::new(),
        );
        assert!(out.is_ok(), "{:?}", out.diagnostics);
        let img = out.image.expect("image");
        assert_eq!(img.units.len(), 1, "just the module body");
    }

    #[test]
    fn procedures_become_units() {
        let out = compile(
            "MODULE M; \
             VAR g : INTEGER; \
             PROCEDURE Add(a, b : INTEGER) : INTEGER; BEGIN RETURN a + b END Add; \
             PROCEDURE Twice(x : INTEGER) : INTEGER; BEGIN RETURN Add(x, x) END Twice; \
             BEGIN g := Twice(21) END M.",
            &DefLibrary::new(),
        );
        assert!(out.is_ok(), "{:?}", out.diagnostics);
        let img = out.image.expect("image");
        assert_eq!(img.units.len(), 3);
        assert_eq!(out.procedures, 2);
    }

    #[test]
    fn imports_processed_recursively() {
        let mut lib = DefLibrary::new();
        lib.insert("Base", "DEFINITION MODULE Base; CONST K = 3; END Base.");
        lib.insert(
            "Mid",
            "DEFINITION MODULE Mid; FROM Base IMPORT K; CONST L = K * 2; END Mid.",
        );
        let out = compile(
            "MODULE M; IMPORT Mid; VAR x : INTEGER; BEGIN x := Mid.L END M.",
            &lib,
        );
        assert!(out.is_ok(), "{:?}", out.diagnostics);
        assert_eq!(out.imported_interfaces, 2, "Mid and (indirectly) Base");
        assert_eq!(out.import_nesting_depth, 2);
    }

    #[test]
    fn missing_definition_module_reports() {
        let out = compile("MODULE M; IMPORT Ghost; BEGIN END M.", &DefLibrary::new());
        assert!(!out.is_ok());
        assert!(out.diagnostics.iter().any(|d| d.message.contains("Ghost")));
    }

    #[test]
    fn undeclared_identifier_reports() {
        let out = compile("MODULE M; BEGIN x := 1 END M.", &DefLibrary::new());
        assert!(!out.is_ok());
    }

    #[test]
    fn type_error_reports() {
        let out = compile(
            "MODULE M; VAR b : BOOLEAN; BEGIN b := 3 END M.",
            &DefLibrary::new(),
        );
        assert!(!out.is_ok());
    }
}
