//! Incremental journal: the delta half of the `CCM2SNAP` recovery
//! plane.
//!
//! [`SnapshotStore`](crate::SnapshotStore) persists *full* images of the
//! shared store; a [`DeltaJournal`] persists the **mutation log**
//! between images — checksummed [`ccm2_incr::delta`] batches, one
//! segment file per ship, written with the same temp-file +
//! atomic-rename discipline. A restart then costs one (old) snapshot
//! plus a replay of the ops journaled since its cut, which is usually a
//! small fraction of a fresh full image's bytes. The very same encoded
//! batches are what `ccm2-fabric` shards ship to their peers as the
//! replication stream — journal and replication are one format.
//!
//! Segments are named `delta-{first:08}-{last:08}.log` after the
//! sequence-number range they cover. Replay walks them in order,
//! validating each batch and the chain's contiguity: a torn or
//! bit-flipped segment is quarantined and replay stops *at the gap* —
//! a suffix of valid segments beyond a hole must not be applied out of
//! order, so the store simply warms a little less.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ccm2_incr::{decode_delta, encode_delta, DeltaOp};

/// A directory of journaled delta segments plus their quarantine.
#[derive(Debug)]
pub struct DeltaJournal {
    dir: PathBuf,
}

/// What [`DeltaJournal::load_after`] reconstructed.
#[derive(Debug, Default)]
pub struct DeltaReplay {
    /// Contiguous ops with sequence numbers greater than the requested
    /// cursor, in replay order.
    pub ops: Vec<DeltaOp>,
    /// The sequence number of the last replayed op (equals the cursor
    /// when nothing was replayable).
    pub last_seq: u64,
    /// Segments that failed validation and were quarantined.
    pub quarantined: Vec<PathBuf>,
    /// True when a later valid segment existed beyond a gap and was
    /// *not* applied (missing or quarantined predecessor).
    pub gap: bool,
}

impl DeltaJournal {
    /// Opens (creating if needed) a journal directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<DeltaJournal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DeltaJournal { dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(first, last, path)` of every segment present, ascending by
    /// first covered sequence number.
    fn segments(&self) -> io::Result<Vec<(u64, u64, PathBuf)>> {
        let mut v = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(range) = name
                .strip_prefix("delta-")
                .and_then(|r| r.strip_suffix(".log"))
            {
                if let Some((a, b)) = range.split_once('-') {
                    if let (Ok(first), Ok(last)) = (a.parse::<u64>(), b.parse::<u64>()) {
                        v.push((first, last, entry.path()));
                    }
                }
            }
        }
        v.sort();
        Ok(v)
    }

    /// The highest sequence number any segment claims to cover (0 for an
    /// empty journal). New ships should start after this.
    pub fn last_seq(&self) -> io::Result<u64> {
        Ok(self.segments()?.last().map_or(0, |(_, last, _)| *last))
    }

    /// Total bytes of live (non-quarantined) segments — the restart-cost
    /// side of the snapshot-vs-delta comparison.
    pub fn total_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for (_, _, path) in self.segments()? {
            total += fs::metadata(&path)?.len();
        }
        Ok(total)
    }

    /// Journals `ops` as one crash-atomic segment whose first op has
    /// sequence number `base_seq + 1`. Empty batches are skipped.
    /// Returns the segment path (`None` when skipped).
    pub fn append(&self, base_seq: u64, ops: &[DeltaOp]) -> io::Result<Option<PathBuf>> {
        if ops.is_empty() {
            return Ok(None);
        }
        let first = base_seq + 1;
        let last = base_seq + ops.len() as u64;
        let bytes = encode_delta(base_seq, ops);
        let path = self.dir.join(format!("delta-{first:08}-{last:08}.log"));
        let tmp = self
            .dir
            .join(format!(".delta-{first:08}.{}.tmp", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    /// Replays the journal from just after `seq`: decodes segments in
    /// order, quarantines invalid ones, and returns the longest
    /// *contiguous* op chain starting at `seq + 1`. Segments entirely at
    /// or below `seq` are skipped (already covered by the snapshot).
    pub fn load_after(&self, seq: u64) -> io::Result<DeltaReplay> {
        let mut replay = DeltaReplay {
            last_seq: seq,
            ..DeltaReplay::default()
        };
        for (first, last, path) in self.segments()? {
            if last <= replay.last_seq {
                continue; // fully behind the cursor
            }
            let decoded = fs::read(&path).ok().and_then(|b| decode_delta(&b));
            let valid = decoded.and_then(|(base, ops)| {
                // The name must agree with the payload — a renamed or
                // recombined file is as suspect as a torn one.
                (base + 1 == first && base + ops.len() as u64 == last).then_some(ops)
            });
            let Some(ops) = valid else {
                let qdir = self.dir.join("quarantine");
                fs::create_dir_all(&qdir)?;
                let dest = qdir.join(path.file_name().expect("segment file name"));
                fs::rename(&path, &dest)?;
                replay.quarantined.push(dest);
                replay.gap = true;
                continue;
            };
            if replay.gap || first > replay.last_seq + 1 {
                // Hole in the chain: later ops must not replay early.
                replay.gap = true;
                continue;
            }
            // Overlapping segments (first <= cursor < last) replay only
            // the suffix past the cursor.
            let skip = (replay.last_seq + 1 - first) as usize;
            replay.ops.extend(ops.into_iter().skip(skip));
            replay.last_seq = last;
        }
        Ok(replay)
    }

    /// Number of quarantined segments currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.dir.join("quarantine"))
            .map(|rd| rd.count())
            .unwrap_or(0)
    }
}

impl crate::service::CompileService {
    /// Ships every store mutation not yet journaled into `journal` as
    /// one segment and trims the in-memory log behind it. Returns the
    /// number of ops journaled. When the store's bounded log has already
    /// dropped history past the journal's cursor, falls back to cutting
    /// a fresh full snapshot into `snaps` instead (returns 0).
    pub fn journal_deltas(
        &self,
        journal: &DeltaJournal,
        snaps: &crate::SnapshotStore,
    ) -> io::Result<usize> {
        let cursor = journal.last_seq()?;
        match self.store().deltas_since(cursor) {
            Some(ops) => {
                journal.append(cursor, &ops)?;
                self.store().truncate_deltas(cursor + ops.len() as u64);
                Ok(ops.len())
            }
            None => {
                snaps.save(self.store())?;
                Ok(0)
            }
        }
    }

    /// Starts a service whose store is rebuilt from the newest valid
    /// snapshot in `snaps` *plus* the contiguous delta ops journaled
    /// after its cut — the cheap restart path. Torn images and segments
    /// are quarantined exactly as in [`CompileService::restore`].
    pub fn restore_with_deltas(
        config: crate::service::ServeConfig,
        snaps: &crate::SnapshotStore,
        journal: &DeltaJournal,
    ) -> io::Result<crate::service::CompileService> {
        let store = crate::SharedStore::new(config.store_budget);
        let loaded = snaps.load_latest()?;
        if let Some(entries) = loaded.entries {
            store.import(&entries);
        }
        let replay = journal.load_after(loaded.delta_seq)?;
        store.apply_delta(&replay.ops);
        store.resume_delta_seq(replay.last_seq);
        Ok(crate::service::CompileService::start_with_store(
            config,
            std::sync::Arc::new(store),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::hash::Fp128;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn ins(n: u64, text: &str) -> DeltaOp {
        DeltaOp::Insert {
            fp: fp(n),
            bytes: text.as_bytes().to_vec(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-delta-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_replay_chain_in_order() {
        let dir = tmp_dir("chain");
        let j = DeltaJournal::new(&dir).unwrap();
        assert_eq!(j.last_seq().unwrap(), 0);
        j.append(0, &[ins(1, "a"), ins(2, "b")]).unwrap();
        j.append(2, &[DeltaOp::Evict { fp: fp(1) }]).unwrap();
        assert_eq!(j.last_seq().unwrap(), 3);
        let replay = j.load_after(0).unwrap();
        assert_eq!(replay.ops.len(), 3);
        assert_eq!(replay.last_seq, 3);
        assert!(!replay.gap && replay.quarantined.is_empty());
        // A cursor mid-segment replays only the suffix.
        let partial = j.load_after(1).unwrap();
        assert_eq!(partial.ops, vec![ins(2, "b"), DeltaOp::Evict { fp: fp(1) }]);
        // A cursor at the tip replays nothing.
        assert!(j.load_after(3).unwrap().ops.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batches_are_skipped() {
        let dir = tmp_dir("empty");
        let j = DeltaJournal::new(&dir).unwrap();
        assert_eq!(j.append(5, &[]).unwrap(), None);
        assert_eq!(j.last_seq().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_segment_is_quarantined_and_stops_the_chain() {
        let dir = tmp_dir("torn");
        let j = DeltaJournal::new(&dir).unwrap();
        j.append(0, &[ins(1, "a")]).unwrap();
        j.append(1, &[ins(2, "b")]).unwrap();
        j.append(2, &[ins(3, "c")]).unwrap();
        // Tear the middle segment.
        let mid = dir.join("delta-00000002-00000002.log");
        let bytes = fs::read(&mid).unwrap();
        fs::write(&mid, &bytes[..bytes.len() / 2]).unwrap();
        let replay = j.load_after(0).unwrap();
        assert_eq!(replay.ops, vec![ins(1, "a")], "replay stops at the gap");
        assert_eq!(replay.last_seq, 1);
        assert!(replay.gap);
        assert_eq!(replay.quarantined.len(), 1);
        assert_eq!(j.quarantined_count(), 1);
        // Second load does not re-quarantine, still gapped.
        let again = j.load_after(0).unwrap();
        assert!(again.quarantined.is_empty() && again.gap);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misnamed_segment_is_rejected() {
        let dir = tmp_dir("misname");
        let j = DeltaJournal::new(&dir).unwrap();
        let path = j.append(0, &[ins(1, "a")]).unwrap().unwrap();
        // Rename claims a different range than the payload encodes.
        fs::rename(&path, dir.join("delta-00000005-00000005.log")).unwrap();
        let replay = j.load_after(0).unwrap();
        assert!(replay.ops.is_empty());
        assert_eq!(replay.quarantined.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_segment_gaps_instead_of_reordering() {
        let dir = tmp_dir("hole");
        let j = DeltaJournal::new(&dir).unwrap();
        j.append(0, &[ins(1, "a")]).unwrap();
        j.append(3, &[ins(4, "d")]).unwrap(); // seq 2..3 never journaled
        let replay = j.load_after(0).unwrap();
        assert_eq!(replay.ops, vec![ins(1, "a")]);
        assert!(replay.gap);
        assert_eq!(replay.last_seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
