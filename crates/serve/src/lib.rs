//! `ccm2-serve` — a batched compile service over the concurrent
//! compiler.
//!
//! The paper's Supervisors scheduler compiles *one* program's streams
//! concurrently; this crate grows that into the multi-tenant layer the
//! ROADMAP's north-star asks for: a long-lived service that accepts
//! batches of compile requests from many clients and serves them from a
//! bounded worker pool fronting one shared, size-bounded artifact
//! store.
//!
//! The pieces, bottom-up:
//!
//! * [`SharedStore`] — an [`ccm2_incr::ArtifactStore`] with a byte
//!   budget, strict LRU admission (occupancy never exceeds the budget,
//!   not even transiently) and hit/miss/insertion/eviction counters.
//!   Because the cache is content-addressed and the compiler's output
//!   is strategy- and executor-independent, one store safely serves
//!   every request mix.
//! * [`CompileRequest`] / [`CompileOutcome`] / [`Response`] — a
//!   self-contained request (source + interfaces + DKY strategy +
//!   executor + analysis flag), its fingerprint (the single-flight
//!   key), and the per-request report (object bytes, rendered
//!   diagnostics, cache counters, virtual/wall cost).
//! * [`CompileService`] — the worker pool: bounded queue with
//!   load-shedding ([`Submission::Shed`] / [`Response::Retry`]),
//!   single-flight deduplication (identical in-flight requests compile
//!   once and fan out), a batch API, and pause/resume hooks for
//!   deterministic tests.
//! * [`SnapshotStore`] — crash-safe restart: checksummed, versioned
//!   images of the shared store written with temp-file + atomic-rename,
//!   so [`CompileService::restore`] can bring a new service up with the
//!   cache (and its LRU order) of a killed one; torn images are
//!   quarantined and recovery falls back to the last good image.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_serve::{CompileRequest, CompileService, ServeConfig};
//! use ccm2_support::defs::DefLibrary;
//!
//! let svc = CompileService::start(ServeConfig::default());
//! let req = CompileRequest::new(
//!     7,
//!     "Hello",
//!     "MODULE Hello; BEGIN WriteLn END Hello.",
//!     Arc::new(DefLibrary::new()),
//! );
//! let responses = svc.serve_batch(vec![req.clone(), req]);
//! let first = responses[0].outcome().expect("served");
//! assert!(first.ok);
//! // Both clients got the same outcome from a single compile.
//! assert_eq!(svc.stats().compiled, 1);
//! assert_eq!(svc.stats().joined, 1);
//! ```

pub mod delta;
pub mod request;
pub mod service;
pub mod snapshot;
pub mod store;

pub use delta::{DeltaJournal, DeltaReplay};
pub use request::{CompileOutcome, CompileRequest, ExecChoice, Response};
pub use service::{
    ClientStats, CompileService, RequestRetryReport, ServeConfig, ServeReport, ServiceStats,
    Submission, Ticket,
};
pub use snapshot::{LoadedSnapshot, SnapshotStore};
pub use store::{SharedStore, StoreStats};
