//! Compile requests and per-request outcomes.
//!
//! A [`CompileRequest`] is everything the service needs to reproduce a
//! compilation bit-for-bit: the module source, its interface library,
//! the DKY strategy, the executor, and the analysis flag. Its
//! [`fingerprint`](CompileRequest::fingerprint) is the single-flight
//! deduplication key: two requests with equal fingerprints are
//! guaranteed to produce identical outcomes, so the service compiles
//! one and fans the result out to both.
//!
//! The key deliberately covers strategy and executor even though the
//! object image is provably identical across them (the equivalence
//! tests check this): requests differing only in strategy still differ
//! in their *reports* (virtual cost, task counts), so folding them
//! together would hand a client a report for a configuration it did not
//! ask for. Sharing still happens where it is safe — at the artifact
//! level, in [`SharedStore`](crate::SharedStore), whose content
//! addresses ignore strategy and executor entirely.

use std::sync::Arc;

use ccm2::{Executor, Options};
use ccm2_incr::IncrStats;
use ccm2_sched::sim::SimConfig;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::{DefLibrary, DefProvider as _};
use ccm2_support::hash::{Fp128, StableHasher};

/// Which executor a request asks for, in a form that can be hashed and
/// compared (the driver's [`Executor`] carries a full [`SimConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecChoice {
    /// The deterministic virtual-time simulator with `n` processors and
    /// the calibrated Firefly cost model.
    Sim(u32),
    /// `n` real worker threads.
    Threads(usize),
}

impl ExecChoice {
    /// The driver-level executor this choice denotes.
    pub fn to_executor(self) -> Executor {
        match self {
            ExecChoice::Sim(n) => Executor::Sim(SimConfig::firefly(n)),
            ExecChoice::Threads(n) => Executor::Threads(n),
        }
    }

    /// Human-readable name, e.g. `sim(4)` or `threads(2)`.
    pub fn name(self) -> String {
        match self {
            ExecChoice::Sim(n) => format!("sim({n})"),
            ExecChoice::Threads(n) => format!("threads({n})"),
        }
    }

    fn hash_into(self, h: &mut StableHasher) {
        match self {
            ExecChoice::Sim(n) => {
                h.write_u32(1);
                h.write_u32(n);
            }
            ExecChoice::Threads(n) => {
                h.write_u32(2);
                h.write_u64(n as u64);
            }
        }
    }
}

/// One compile request, self-contained and hashable.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Opaque client identifier, echoed into the outcome for reporting.
    pub client: u64,
    /// Module name (reporting only; the source is authoritative).
    pub module: String,
    /// The `M.mod` text.
    pub source: String,
    /// The interface library (shared between requests of one project
    /// revision, hence the `Arc`).
    pub defs: Arc<DefLibrary>,
    /// DKY strategy (§2.2).
    pub strategy: DkyStrategy,
    /// Executor.
    pub exec: ExecChoice,
    /// Run the dataflow lints as `Analyze` tasks.
    pub analyze: bool,
    /// Fault-injection plan for this compile (tests and chaos drills;
    /// `None` in production use).
    pub faults: Option<Arc<ccm2_faults::FaultPlan>>,
    /// Per-task watchdog deadline forwarded to the executor
    /// (virtual units on the simulator, microseconds on threads).
    pub task_deadline: Option<u64>,
    /// Supervised-retry budget per stream task: a fatally faulted
    /// `ProcParse`/`Analyze`/`CodeGen` task is re-enqueued up to this
    /// many times before its stream degrades. 0 keeps the historical
    /// degrade-immediately behavior.
    pub max_stream_retries: u32,
}

impl CompileRequest {
    /// A request with the default configuration (Skeptical, 2 threads,
    /// no analysis) for `module`/`source`/`defs`.
    pub fn new(
        client: u64,
        module: impl Into<String>,
        source: impl Into<String>,
        defs: Arc<DefLibrary>,
    ) -> CompileRequest {
        CompileRequest {
            client,
            module: module.into(),
            source: source.into(),
            defs,
            strategy: DkyStrategy::Skeptical,
            exec: ExecChoice::Threads(2),
            analyze: false,
            faults: None,
            task_deadline: None,
            max_stream_retries: 0,
        }
    }

    /// The single-flight key: a digest of every input that affects the
    /// outcome (source, full sorted interface library, strategy,
    /// executor, analysis flag). The `client` field is deliberately
    /// excluded — different clients asking for the same compilation
    /// should share one.
    pub fn fingerprint(&self) -> Fp128 {
        let mut h = StableHasher::new();
        h.write_str("ccm2-serve/request/v1");
        h.write_str(&self.source);
        let all = self.defs.all_definitions().unwrap_or_default();
        h.write_u64(all.len() as u64);
        for (name, text) in &all {
            h.write_str(name);
            h.write_str(text);
        }
        h.write_u32(match self.strategy {
            DkyStrategy::Avoidance => 0,
            DkyStrategy::Pessimistic => 1,
            DkyStrategy::Skeptical => 2,
            DkyStrategy::Optimistic => 3,
        });
        self.exec.hash_into(&mut h);
        h.write_u32(u32::from(self.analyze));
        // Fault plans are deterministic, so two requests with the same
        // plan config really do produce identical outcomes and may share
        // a compile; `Debug` renders the full config (overrides, seed,
        // rate) and omits the runtime fired-log.
        match &self.faults {
            Some(plan) => h.write_str(&format!("{plan:?}")),
            None => h.write_u32(0),
        }
        h.write_u64(self.task_deadline.map_or(0, |d| d + 1));
        // The retry budget changes reports (recovery diagnostics and
        // degradation) even though recovered object bytes are identical,
        // so it is part of the single-flight key.
        h.write_u32(self.max_stream_retries);
        h.finish()
    }

    /// Driver options for this request, fronting `store` as the
    /// incremental artifact cache.
    pub fn options(&self, store: Arc<dyn ccm2_incr::ArtifactStore>) -> Options {
        Options {
            strategy: self.strategy,
            executor: self.exec.to_executor(),
            analyze: self.analyze,
            incremental: Some(store),
            faults: self.faults.clone(),
            task_deadline: self.task_deadline,
            max_stream_retries: self.max_stream_retries,
            ..Options::default()
        }
    }
}

/// What the service reports back for one request.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// The request fingerprint this outcome answers.
    pub request_fp: Fp128,
    /// Whether compilation produced an image with no errors.
    pub ok: bool,
    /// The merged object image in the interner-independent encoding
    /// ([`ccm2_incr::encode_image`]); byte-identical to a standalone
    /// `compile_concurrent` of the same request.
    pub object: Option<Vec<u8>>,
    /// Diagnostics rendered with stable file names.
    pub diagnostics: Vec<String>,
    /// Incremental-cache counters for this compile (`None` when the
    /// compile ran cold-gated, e.g. an empty interface enumeration).
    pub incr: Option<IncrStats>,
    /// Virtual makespan (simulator executor only).
    pub virtual_cost: Option<u64>,
    /// Wall-clock microseconds spent compiling.
    pub wall_micros: u64,
    /// Streams compiled (main + interfaces + procedures).
    pub streams: usize,
    /// One or more streams degraded to error units after a caught task
    /// fault (the compile still terminated and merged).
    pub degraded: bool,
    /// A watchdog diagnosis fired: a stalled task or released wedge, or
    /// — for a synthesized deadline-miss outcome — the request itself
    /// overran its service deadline.
    pub stalled: bool,
}

/// The service's answer to one submitted request.
#[derive(Clone, Debug)]
pub enum Response {
    /// The compilation ran (or was joined onto an identical in-flight
    /// one) and finished.
    Done(Arc<CompileOutcome>),
    /// The request was shed at admission: the queue was full. The
    /// client should back off and resubmit.
    Retry,
}

impl Response {
    /// The outcome, if the request was not shed.
    pub fn outcome(&self) -> Option<&Arc<CompileOutcome>> {
        match self {
            Response::Done(out) => Some(out),
            Response::Retry => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Arc<DefLibrary> {
        let mut l = DefLibrary::new();
        l.insert("IO", "DEFINITION MODULE IO; PROCEDURE P; END IO.");
        Arc::new(l)
    }

    #[test]
    fn fingerprint_covers_every_outcome_relevant_field() {
        let base = CompileRequest::new(1, "M", "MODULE M; END M.", lib());
        let fp = base.fingerprint();
        assert_eq!(fp, base.fingerprint(), "deterministic");

        let mut other_client = base.clone();
        other_client.client = 99;
        assert_eq!(fp, other_client.fingerprint(), "client is excluded");

        let mut edited = base.clone();
        edited.source.push(' ');
        assert_ne!(fp, edited.fingerprint());

        let mut strategy = base.clone();
        strategy.strategy = DkyStrategy::Optimistic;
        assert_ne!(fp, strategy.fingerprint());

        let mut exec = base.clone();
        exec.exec = ExecChoice::Sim(2);
        assert_ne!(fp, exec.fingerprint());

        let mut analyze = base.clone();
        analyze.analyze = true;
        assert_ne!(fp, analyze.fingerprint());

        let mut defs = base.clone();
        let mut l = DefLibrary::new();
        l.insert("IO", "DEFINITION MODULE IO; PROCEDURE Q; END IO.");
        defs.defs = Arc::new(l);
        assert_ne!(fp, defs.fingerprint());
    }

    #[test]
    fn exec_choice_names_and_executors() {
        assert_eq!(ExecChoice::Sim(4).name(), "sim(4)");
        assert_eq!(ExecChoice::Threads(2).name(), "threads(2)");
        assert!(matches!(
            ExecChoice::Threads(3).to_executor(),
            Executor::Threads(3)
        ));
        assert!(matches!(ExecChoice::Sim(5).to_executor(), Executor::Sim(_)));
    }
}
