//! [`CompileService`] — a bounded worker pool with single-flight
//! deduplication and admission control.
//!
//! Life of a request:
//!
//! 1. [`submit`](CompileService::submit) computes the request
//!    fingerprint and checks the in-flight table. An identical request
//!    already queued or compiling? The new one *joins* it — no queue
//!    slot, no second compile; both callers get the same
//!    [`CompileOutcome`] when it lands (single-flight).
//! 2. Otherwise the bounded queue admits it, or — when full — the
//!    service *sheds* it with [`Submission::Shed`] so load never grows
//!    an unbounded backlog. Shedding is the client's signal to back off
//!    and resubmit.
//! 3. A worker pops the request (still listed in-flight, so latecomers
//!    keep joining during the compile), runs
//!    [`ccm2::compile_concurrent`] against the shared artifact store,
//!    then removes the in-flight entry and fans the outcome out to
//!    every joined ticket.
//!
//! Two identical requests submitted *after* the first one completed do
//! compile again — but against a warm [`SharedStore`], so the second
//! run is all `CacheSplice` tasks. Single-flight removes duplicate
//! work in the window where the cache cannot (the first compile has not
//! stored its units yet).
//!
//! [`pause`](CompileService::pause)/[`resume`](CompileService::resume)
//! freeze the workers between requests; tests use this to build
//! deterministic in-flight pile-ups and assert the exactly-once
//! compile counter.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use ccm2::compile_concurrent;
use ccm2_incr::{comparable_output, ArtifactStore};
use ccm2_support::hash::Fp128;
use ccm2_support::Interner;
use parking_lot::{Condvar, Mutex};

use crate::request::{CompileOutcome, CompileRequest, Response};
use crate::store::SharedStore;

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads running compiles. Each compile may itself use a
    /// multi-worker executor, so total parallelism is the product.
    pub workers: usize,
    /// Maximum *queued* (admitted, not yet started) requests. Joining
    /// an in-flight request never consumes a slot.
    pub queue_capacity: usize,
    /// Byte budget for the shared artifact store.
    pub store_budget: u64,
    /// Start with the workers paused (deterministic tests).
    pub paused: bool,
    /// Per-request deadline for [`serve_batch`](CompileService::serve_batch):
    /// a ticket not fulfilled within this many milliseconds yields a
    /// synthesized stalled outcome instead of blocking forever.
    pub request_deadline_ms: Option<u64>,
    /// First backoff delay after a shed submission, doubled per attempt.
    pub retry_backoff_base_ms: u64,
    /// Ceiling for the exponential backoff delay.
    pub retry_backoff_cap_ms: u64,
    /// Resubmission attempts for a shed request before giving up with
    /// [`Response::Retry`]. Defaults to 3 — a briefly full queue is the
    /// common case and a couple of backoffs almost always clear it. Set
    /// 0 to opt out: every shed submission then surfaces immediately as
    /// [`Response::Retry`] and the caller owns the retry policy.
    /// Deadline-aware: a request whose
    /// [`request_deadline_ms`](ServeConfig::request_deadline_ms) has
    /// already expired consumes none of these attempts — it sheds
    /// immediately instead of sleeping through backoffs it cannot use.
    pub retry_attempts: u32,
    /// Per-client admission quota: the maximum *outstanding* admitted
    /// requests (queued or compiling) any one client may hold. A client
    /// at its quota has further distinct requests shed with
    /// [`Submission::OverQuota`] until one of its compiles lands —
    /// back-pressure, not denial. Joining an in-flight compile is exempt
    /// (a join consumes no queue slot and no worker), so under-quota
    /// clients are never displaced by a flooding one. `None` disables
    /// the quota.
    pub per_client_quota: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            store_budget: 8 * 1024 * 1024,
            paused: false,
            request_deadline_ms: None,
            retry_backoff_base_ms: 1,
            retry_backoff_cap_ms: 64,
            retry_attempts: 3,
            per_client_quota: None,
        }
    }
}

/// Lifetime counters for a [`CompileService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests that joined an identical in-flight request.
    pub joined: u64,
    /// Requests shed because the queue was full.
    pub shed: u64,
    /// Requests shed because the client was at its admission quota.
    pub quota_shed: u64,
    /// Shed requests whose batch deadline had already expired when a
    /// retry would have run: they consumed no retry attempts.
    pub deadline_shed: u64,
    /// Compiles actually run (the single-flight invariant:
    /// `compiled == accepted` once the queue drains, regardless of how
    /// many requests joined).
    pub compiled: u64,
    /// Compiles that panicked (outcome degraded to an error report).
    pub panicked: u64,
    /// Compiles that finished with at least one stream degraded to an
    /// error unit (caught task fault).
    pub degraded: u64,
    /// Compiles with a watchdog stall diagnosis, plus batch requests
    /// that missed their service deadline.
    pub stalled: u64,
    /// Artifact-store entries quarantined after validation failures
    /// (mirrors the shared store's counter).
    pub quarantined: u64,
    /// Admission-retry attempts drawn across every
    /// [`CompileService::serve_batch`] call (each backoff resubmission
    /// of a shed request counts one).
    pub retry_attempts_used: u64,
    /// Initially shed requests that were admitted on a retry attempt.
    pub retry_recovered: u64,
    /// Requests still shed after drawing their full retry budget.
    pub retry_exhausted: u64,
}

/// One request's retry-budget accounting within a
/// [`CompileService::serve_batch_report`] batch.
#[derive(Clone, Debug)]
pub struct RequestRetryReport {
    /// The service's answer (same as [`CompileService::serve_batch`]).
    pub response: Response,
    /// Admission-retry attempts this request drew (0 = admitted, or
    /// shed without a usable attempt, on the first submit).
    pub attempts_used: u32,
    /// Retry budget left when the request completed:
    /// [`ServeConfig::retry_attempts`] minus [`Self::attempts_used`].
    pub budget_remaining: u32,
}

/// The outcome report of one [`CompileService::serve_batch_report`]
/// batch: per-request retry accounting plus the batch aggregates (also
/// folded into the service-wide [`ServiceStats`] counters).
#[derive(Debug)]
pub struct ServeReport {
    /// Per-request responses with retry accounting, in request order.
    pub requests: Vec<RequestRetryReport>,
    /// The configured admission-retry budget per request.
    pub retry_budget: u32,
    /// Retry attempts drawn across the batch.
    pub attempts_used: u64,
    /// Initially shed requests admitted on a retry attempt.
    pub recovered: u64,
    /// Requests still shed after their full budget.
    pub exhausted: u64,
}

impl ServiceStats {
    /// Fraction of served (non-shed) requests that rode along on
    /// another request's compile: `joined / (accepted + joined)`.
    pub fn dedup_ratio(&self) -> f64 {
        let served = self.accepted + self.joined;
        if served == 0 {
            0.0
        } else {
            self.joined as f64 / served as f64
        }
    }
}

/// Per-client admission counters ([`CompileService::client_stats`]) —
/// the observability groundwork for the ROADMAP's fairness/quota item:
/// a quota policy needs to know who is consuming queue slots and who is
/// being shed before it can act on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests this client submitted.
    pub submitted: u64,
    /// Requests admitted to the queue for this client.
    pub admitted: u64,
    /// Requests that joined an identical in-flight compile.
    pub joined: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests shed because this client was at its admission quota.
    pub quota_shed: u64,
    /// Admitted requests currently outstanding (queued or compiling).
    pub outstanding: u32,
}

/// A claim on a future [`CompileOutcome`].
#[derive(Clone, Debug)]
pub struct Ticket {
    shared: Arc<TicketShared>,
}

#[derive(Debug)]
struct TicketShared {
    slot: Mutex<Option<Arc<CompileOutcome>>>,
    done: Condvar,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            shared: Arc::new(TicketShared {
                slot: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    /// Blocks until the outcome is available.
    pub fn wait(&self) -> Arc<CompileOutcome> {
        let mut slot = self.shared.slot.lock();
        while slot.is_none() {
            self.shared.done.wait(&mut slot);
        }
        Arc::clone(slot.as_ref().expect("loop exits only when filled"))
    }

    /// The outcome, if it has already landed.
    pub fn try_get(&self) -> Option<Arc<CompileOutcome>> {
        self.shared.slot.lock().clone()
    }

    /// Blocks until the outcome lands or `deadline` elapses.
    pub fn wait_deadline(&self, deadline: std::time::Duration) -> Option<Arc<CompileOutcome>> {
        let limit = std::time::Instant::now() + deadline;
        let mut slot = self.shared.slot.lock();
        while slot.is_none() {
            let now = std::time::Instant::now();
            if now >= limit {
                return None;
            }
            if self.shared.done.wait_for(&mut slot, limit - now) && slot.is_none() {
                return None;
            }
        }
        Some(Arc::clone(
            slot.as_ref().expect("loop exits only when filled"),
        ))
    }
}

/// What [`CompileService::submit`] did with a request.
#[derive(Clone, Debug)]
pub enum Submission {
    /// Admitted to the queue; a worker will compile it.
    Queued(Ticket),
    /// Joined an identical in-flight request (single-flight).
    Joined(Ticket),
    /// Shed: the queue was full. Back off and resubmit.
    Shed,
    /// Shed: this client is at its
    /// [`per_client_quota`](ServeConfig::per_client_quota). Back off
    /// until one of the client's outstanding compiles lands.
    OverQuota,
}

impl Submission {
    /// The ticket, unless the request was shed.
    pub fn ticket(&self) -> Option<&Ticket> {
        match self {
            Submission::Queued(t) | Submission::Joined(t) => Some(t),
            Submission::Shed | Submission::OverQuota => None,
        }
    }

    /// Whether the request was shed at admission (queue full or client
    /// over quota) — in both cases the remedy is back off and resubmit.
    pub fn is_shed(&self) -> bool {
        matches!(self, Submission::Shed | Submission::OverQuota)
    }
}

struct InFlight {
    req: CompileRequest,
    /// The admitting client — the one whose quota this compile holds.
    leader: u64,
    tickets: Vec<Arc<TicketShared>>,
}

struct State {
    queue: VecDeque<Fp128>,
    inflight: HashMap<Fp128, InFlight>,
    paused: bool,
    shutdown: bool,
    stats: ServiceStats,
    /// Admission counters per client id (BTreeMap for sorted readout).
    client_stats: std::collections::BTreeMap<u64, ClientStats>,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    store: Arc<SharedStore>,
    queue_capacity: usize,
    config: ServeConfig,
}

/// A long-lived compile service; see the module docs for the request
/// life cycle. Dropping the service drains the queue (every admitted
/// request still gets its outcome) and joins the workers.
pub struct CompileService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CompileService {
    /// Starts the worker pool.
    pub fn start(config: ServeConfig) -> CompileService {
        CompileService::start_with_store(config, Arc::new(SharedStore::new(config.store_budget)))
    }

    /// Starts the worker pool against a caller-supplied store — e.g. a
    /// [`SharedStore::with_faults`] one for corruption drills.
    pub fn start_with_store(config: ServeConfig, store: Arc<SharedStore>) -> CompileService {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                paused: config.paused,
                shutdown: false,
                stats: ServiceStats::default(),
                client_stats: std::collections::BTreeMap::new(),
            }),
            work: Condvar::new(),
            store,
            queue_capacity: config.queue_capacity.max(1),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccm2-serve-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn service worker")
            })
            .collect();
        CompileService { shared, workers }
    }

    /// The shared artifact store (for stats or pre-warming).
    pub fn store(&self) -> &Arc<SharedStore> {
        &self.shared.store
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Lifetime counters. `quarantined` is read through from the shared
    /// store, where the validation failures are actually detected.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.shared.state.lock().stats;
        stats.quarantined = self.shared.store.stats().quarantined;
        stats
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// A `Retry-After`-style hint in milliseconds: how long a shed
    /// client should wait before resubmitting, derived from the live
    /// queue depth scaled by the backoff base and capped at the backoff
    /// cap. An empty queue still hints one base period (the shed was
    /// momentary — quota, or a queue that just drained). The fabric
    /// carries this on `Reject` frames and the fabric client's retry
    /// loop honors it.
    pub fn shed_hint_ms(&self) -> u64 {
        let cfg = &self.shared.config;
        let depth = self.shared.state.lock().queue.len() as u64;
        cfg.retry_backoff_base_ms
            .max(1)
            .saturating_mul(depth + 1)
            .min(cfg.retry_backoff_cap_ms.max(1))
    }

    /// Per-client admission counters, sorted by client id.
    pub fn client_stats(&self) -> Vec<(u64, ClientStats)> {
        let state = self.shared.state.lock();
        state
            .client_stats
            .iter()
            .map(|(id, cs)| (*id, *cs))
            .collect()
    }

    /// Submits one request; never blocks on compilation.
    pub fn submit(&self, req: CompileRequest) -> Submission {
        let fp = req.fingerprint();
        let client = req.client;
        let mut state = self.shared.state.lock();
        state.stats.submitted += 1;
        let cs = state.client_stats.entry(client).or_default();
        cs.submitted += 1;
        if let Some(fl) = state.inflight.get_mut(&fp) {
            let ticket = Ticket::new();
            fl.tickets.push(Arc::clone(&ticket.shared));
            state.stats.joined += 1;
            state.client_stats.entry(client).or_default().joined += 1;
            return Submission::Joined(ticket);
        }
        if let Some(quota) = self.shared.config.per_client_quota {
            if state.client_stats.entry(client).or_default().outstanding >= quota {
                state.stats.quota_shed += 1;
                state.client_stats.entry(client).or_default().quota_shed += 1;
                return Submission::OverQuota;
            }
        }
        if state.queue.len() >= self.shared.queue_capacity {
            state.stats.shed += 1;
            state.client_stats.entry(client).or_default().shed += 1;
            return Submission::Shed;
        }
        {
            let cs = state.client_stats.entry(client).or_default();
            cs.admitted += 1;
            cs.outstanding += 1;
        }
        let ticket = Ticket::new();
        state.inflight.insert(
            fp,
            InFlight {
                req,
                leader: client,
                tickets: vec![Arc::clone(&ticket.shared)],
            },
        );
        state.queue.push_back(fp);
        state.stats.accepted += 1;
        drop(state);
        self.shared.work.notify_one();
        Submission::Queued(ticket)
    }

    /// Submits a whole batch first (maximizing single-flight overlap),
    /// then waits for every non-shed outcome. Shed requests are
    /// resubmitted under capped exponential backoff
    /// ([`ServeConfig::retry_attempts`]); ones still shed after the last
    /// attempt come back as [`Response::Retry`] in their original
    /// positions. With a [`ServeConfig::request_deadline_ms`], a ticket
    /// that does not land in time yields a synthesized stalled outcome
    /// instead of blocking the batch forever.
    pub fn serve_batch(&self, requests: Vec<CompileRequest>) -> Vec<Response> {
        self.serve_batch_report(requests)
            .requests
            .into_iter()
            .map(|r| r.response)
            .collect()
    }

    /// [`CompileService::serve_batch`] with retry-budget accounting:
    /// the same responses, plus per-request attempts used / budget
    /// remaining and the batch's aggregate retry counters (also folded
    /// into [`ServiceStats`]).
    pub fn serve_batch_report(&self, requests: Vec<CompileRequest>) -> ServeReport {
        let cfg = self.shared.config;
        // The deadline is measured from batch admission, so time burned
        // in backoff retries is charged against it.
        let deadline_at = cfg
            .request_deadline_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        let mut submissions: Vec<Submission> =
            requests.iter().map(|r| self.submit(r.clone())).collect();
        let mut attempts_used = vec![0u32; requests.len()];
        for (i, sub) in submissions.iter_mut().enumerate() {
            if !sub.is_shed() {
                continue;
            }
            for attempt in 0..cfg.retry_attempts {
                // Deadline-aware budget: an expired request sheds
                // immediately instead of drawing attempts (and backoff
                // sleeps) it can no longer use.
                if deadline_at.is_some_and(|d| std::time::Instant::now() >= d) {
                    self.shared.state.lock().stats.deadline_shed += 1;
                    break;
                }
                // Exponential backoff, floored by the live queue-depth
                // hint: when the queue is deep, early attempts wait as
                // long as the shed hint tells external clients to.
                let delay = cfg
                    .retry_backoff_base_ms
                    .checked_shl(attempt.min(16))
                    .unwrap_or(u64::MAX)
                    .max(self.shed_hint_ms())
                    .min(cfg.retry_backoff_cap_ms);
                std::thread::sleep(std::time::Duration::from_millis(delay));
                attempts_used[i] = attempt + 1;
                let again = self.submit(requests[i].clone());
                if !again.is_shed() {
                    *sub = again;
                    break;
                }
            }
        }
        let mut report = ServeReport {
            requests: Vec::with_capacity(requests.len()),
            retry_budget: cfg.retry_attempts,
            attempts_used: 0,
            recovered: 0,
            exhausted: 0,
        };
        for (i, sub) in submissions.iter().enumerate() {
            report.attempts_used += u64::from(attempts_used[i]);
            if attempts_used[i] > 0 && !sub.is_shed() {
                report.recovered += 1;
            }
            if sub.is_shed() && attempts_used[i] == cfg.retry_attempts {
                report.exhausted += 1;
            }
        }
        {
            let mut state = self.shared.state.lock();
            state.stats.retry_attempts_used += report.attempts_used;
            state.stats.retry_recovered += report.recovered;
            state.stats.retry_exhausted += report.exhausted;
        }
        for ((s, req), used) in submissions.iter().zip(&requests).zip(attempts_used) {
            let response = match s.ticket() {
                Some(t) => match (deadline_at, cfg.request_deadline_ms) {
                    (Some(d), Some(ms)) => {
                        let remaining = d.saturating_duration_since(std::time::Instant::now());
                        match t.wait_deadline(remaining) {
                            Some(out) => Response::Done(out),
                            None => {
                                self.shared.state.lock().stats.stalled += 1;
                                Response::Done(Arc::new(deadline_outcome(req, ms)))
                            }
                        }
                    }
                    _ => Response::Done(t.wait()),
                },
                None => Response::Retry,
            };
            report.requests.push(RequestRetryReport {
                response,
                attempts_used: used,
                budget_remaining: cfg.retry_attempts - used,
            });
        }
        report
    }

    /// Freezes the workers after their current compile. Submissions
    /// (and joins) are still accepted while paused.
    pub fn pause(&self) {
        self.shared.state.lock().paused = true;
    }

    /// Unfreezes the workers.
    pub fn resume(&self) {
        self.shared.state.lock().paused = false;
        self.shared.work.notify_all();
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            // A paused service still owes outcomes for everything it
            // admitted; unfreeze so the drain can happen.
            state.paused = false;
        }
        self.shared.work.notify_all();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (fp, req) = {
            let mut state = shared.state.lock();
            let fp = loop {
                if state.shutdown && state.queue.is_empty() {
                    return;
                }
                if !state.paused {
                    if let Some(fp) = state.queue.pop_front() {
                        break fp;
                    }
                }
                shared.work.wait(&mut state);
            };
            let req = state
                .inflight
                .get(&fp)
                .expect("queued fp is in-flight until fulfilled")
                .req
                .clone();
            (fp, req)
        };

        let store: Arc<dyn ArtifactStore> = Arc::clone(&shared.store) as Arc<dyn ArtifactStore>;
        let result = catch_unwind(AssertUnwindSafe(|| run_one(fp, &req, store)));
        let (outcome, panicked) = match result {
            Ok(outcome) => (outcome, false),
            Err(payload) => (panic_outcome(fp, &payload), true),
        };
        let outcome = Arc::new(outcome);

        let tickets = {
            let mut state = shared.state.lock();
            state.stats.compiled += 1;
            if panicked {
                state.stats.panicked += 1;
            }
            if outcome.degraded {
                state.stats.degraded += 1;
            }
            if outcome.stalled {
                state.stats.stalled += 1;
            }
            let fl = state.inflight.remove(&fp).expect("fulfilled exactly once");
            let cs = state.client_stats.entry(fl.leader).or_default();
            cs.outstanding = cs.outstanding.saturating_sub(1);
            fl.tickets
        };
        for ticket in tickets {
            *ticket.slot.lock() = Some(Arc::clone(&outcome));
            ticket.done.notify_all();
        }
    }
}

fn run_one(fp: Fp128, req: &CompileRequest, store: Arc<dyn ArtifactStore>) -> CompileOutcome {
    let out = compile_concurrent(
        &req.source,
        Arc::clone(&req.defs) as Arc<dyn ccm2_support::defs::DefProvider>,
        Arc::new(Interner::new()),
        req.options(store),
    );
    let (object, diagnostics) = comparable_output(
        out.image.as_ref(),
        &out.diagnostics,
        &out.sources,
        &out.interner,
    );
    let degraded = out
        .errors
        .iter()
        .any(|e| matches!(e, ccm2::CompileError::StreamFault { .. }));
    let stalled = out
        .errors
        .iter()
        .any(|e| matches!(e, ccm2::CompileError::Stalled { .. }));
    CompileOutcome {
        request_fp: fp,
        ok: out.is_ok(),
        object,
        diagnostics,
        incr: out.incr,
        virtual_cost: out.report.virtual_time,
        wall_micros: out.report.wall_micros,
        streams: out.streams,
        degraded,
        stalled,
    }
}

fn deadline_outcome(req: &CompileRequest, ms: u64) -> CompileOutcome {
    CompileOutcome {
        request_fp: req.fingerprint(),
        ok: false,
        object: None,
        diagnostics: vec![format!(
            "request for `{}` exceeded the {ms}ms service deadline",
            req.module
        )],
        incr: None,
        virtual_cost: None,
        wall_micros: 0,
        streams: 0,
        degraded: false,
        stalled: true,
    }
}

fn panic_outcome(fp: Fp128, payload: &(dyn std::any::Any + Send)) -> CompileOutcome {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    CompileOutcome {
        request_fp: fp,
        ok: false,
        object: None,
        diagnostics: vec![format!("internal error: compile panicked: {msg}")],
        incr: None,
        virtual_cost: None,
        wall_micros: 0,
        streams: 0,
        degraded: false,
        stalled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::defs::DefLibrary;

    fn req(client: u64, name: &str, body: &str) -> CompileRequest {
        CompileRequest::new(
            client,
            name,
            format!("MODULE {name}; {body} END {name}."),
            Arc::new(DefLibrary::new()),
        )
    }

    #[test]
    fn serves_a_simple_request() {
        let svc = CompileService::start(ServeConfig::default());
        let sub = svc.submit(req(1, "Hello", "VAR x: INTEGER; BEGIN x := 1;"));
        let out = sub.ticket().expect("admitted").wait();
        assert!(out.ok, "{:?}", out.diagnostics);
        assert!(out.object.is_some());
        assert_eq!(svc.stats().compiled, 1);
    }

    #[test]
    fn identical_concurrent_requests_compile_exactly_once() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            ..ServeConfig::default()
        });
        let subs: Vec<Submission> = (0..5)
            .map(|client| svc.submit(req(client, "Dup", "BEGIN")))
            .collect();
        assert!(matches!(subs[0], Submission::Queued(_)));
        assert_eq!(
            subs.iter()
                .filter(|s| matches!(s, Submission::Joined(_)))
                .count(),
            4,
            "later identical requests join the first"
        );
        svc.resume();
        let outs: Vec<Arc<CompileOutcome>> = subs
            .iter()
            .map(|s| s.ticket().expect("kept").wait())
            .collect();
        for out in &outs {
            assert!(Arc::ptr_eq(out, &outs[0]), "one outcome, fanned out");
        }
        let stats = svc.stats();
        assert_eq!(stats.compiled, 1, "single-flight: exactly one compile");
        assert_eq!(stats.joined, 4);
        assert!((stats.dedup_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn full_queue_sheds_with_retry() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        assert!(matches!(
            svc.submit(req(1, "A", "BEGIN")),
            Submission::Queued(_)
        ));
        // Identical request joins even though the queue is full…
        assert!(matches!(
            svc.submit(req(2, "A", "BEGIN")),
            Submission::Joined(_)
        ));
        // …but a *different* request is shed.
        let shed = svc.submit(req(3, "B", "BEGIN"));
        assert!(shed.is_shed());
        assert!(shed.ticket().is_none());
        assert_eq!(svc.stats().shed, 1);
        svc.resume();
    }

    #[test]
    fn batch_api_reports_retry_in_position() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            queue_capacity: 2,
            // Opt out of automatic resubmission: this test asserts the
            // raw shed surfaces as Response::Retry in its position.
            retry_attempts: 0,
            ..ServeConfig::default()
        });
        let batch = vec![
            req(1, "P", "BEGIN"),
            req(2, "Q", "BEGIN"),
            req(3, "R", "BEGIN"), // shed: capacity 2
            req(4, "P", "BEGIN"), // joins P
        ];
        // Resume from another thread once the batch is in — serve_batch
        // blocks on the outcomes.
        let svc = Arc::new(svc);
        let resumer = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                svc.resume();
            })
        };
        let responses = svc.serve_batch(batch);
        resumer.join().expect("resumer");
        assert!(matches!(responses[0], Response::Done(_)));
        assert!(matches!(responses[1], Response::Done(_)));
        assert!(matches!(responses[2], Response::Retry));
        assert!(matches!(responses[3], Response::Done(_)));
        assert_eq!(svc.stats().compiled, 2);
    }

    #[test]
    fn batch_report_accounts_retry_budget() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            queue_capacity: 1,
            retry_attempts: 6,
            retry_backoff_base_ms: 5,
            retry_backoff_cap_ms: 20,
            ..ServeConfig::default()
        });
        let svc = Arc::new(svc);
        let resumer = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                svc.resume();
            })
        };
        // Capacity 1 while paused: "A" is queued, "B" is shed and then
        // recovered by the backoff loop once the resumer unfreezes.
        let report = svc.serve_batch_report(vec![req(1, "A", "BEGIN"), req(2, "B", "BEGIN")]);
        resumer.join().expect("resumer");
        assert_eq!(report.retry_budget, 6);
        assert!(matches!(report.requests[0].response, Response::Done(_)));
        assert!(matches!(report.requests[1].response, Response::Done(_)));
        assert_eq!(report.requests[0].attempts_used, 0);
        assert_eq!(report.requests[0].budget_remaining, 6);
        let used = report.requests[1].attempts_used;
        assert!(used >= 1, "the shed request drew at least one retry");
        assert_eq!(report.requests[1].budget_remaining, 6 - used);
        assert_eq!(report.attempts_used, u64::from(used));
        assert_eq!(report.recovered, 1);
        assert_eq!(report.exhausted, 0);
        let stats = svc.stats();
        assert_eq!(stats.retry_attempts_used, u64::from(used));
        assert_eq!(stats.retry_recovered, 1);
        assert_eq!(stats.retry_exhausted, 0);
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            ..ServeConfig::default()
        });
        let t1 = svc
            .submit(req(1, "DrainA", "BEGIN"))
            .ticket()
            .expect("kept")
            .clone();
        let t2 = svc
            .submit(req(2, "DrainB", "BEGIN"))
            .ticket()
            .expect("kept")
            .clone();
        drop(svc); // never resumed — Drop must drain anyway
        assert!(t1.wait().ok);
        assert!(t2.wait().ok);
    }

    #[test]
    fn missed_request_deadline_yields_stalled_outcome() {
        let svc = CompileService::start(ServeConfig {
            paused: true, // never resumed during the batch: guaranteed miss
            request_deadline_ms: Some(20),
            ..ServeConfig::default()
        });
        let responses = svc.serve_batch(vec![req(1, "Late", "BEGIN")]);
        let out = responses[0].outcome().expect("synthesized outcome");
        assert!(!out.ok);
        assert!(out.stalled);
        assert!(
            out.diagnostics[0].contains("service deadline"),
            "{:?}",
            out.diagnostics
        );
        assert_eq!(svc.stats().stalled, 1);
    }

    #[test]
    fn shed_requests_are_retried_with_backoff() {
        let svc = Arc::new(CompileService::start(ServeConfig {
            paused: true,
            queue_capacity: 1,
            workers: 1,
            retry_attempts: 12,
            retry_backoff_base_ms: 1,
            retry_backoff_cap_ms: 16,
            ..ServeConfig::default()
        }));
        let resumer = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(15));
                svc.resume();
            })
        };
        // Capacity 1 with paused workers: the second and third distinct
        // requests shed at first submission and only land via backoff
        // retries once the worker starts draining.
        let responses = svc.serve_batch(vec![
            req(1, "BackA", "BEGIN"),
            req(2, "BackB", "BEGIN"),
            req(3, "BackC", "BEGIN"),
        ]);
        resumer.join().expect("resumer");
        assert!(
            responses.iter().all(|r| r.outcome().is_some()),
            "backoff retries landed every shed request"
        );
        assert!(svc.stats().shed >= 2, "initial submissions were shed");
    }

    #[test]
    fn shed_hint_scales_with_queue_depth_and_caps() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            workers: 1,
            queue_capacity: 8,
            retry_backoff_base_ms: 2,
            retry_backoff_cap_ms: 10,
            ..ServeConfig::default()
        });
        assert_eq!(svc.queue_len(), 0);
        assert_eq!(svc.shed_hint_ms(), 2, "empty queue hints one base");
        for i in 0..3 {
            assert!(matches!(
                svc.submit(req(1, &format!("Hint{i}"), "BEGIN")),
                Submission::Queued(_)
            ));
        }
        assert_eq!(svc.queue_len(), 3);
        assert_eq!(svc.shed_hint_ms(), 8, "base * (depth + 1)");
        for i in 3..8 {
            svc.submit(req(1, &format!("Hint{i}"), "BEGIN"));
        }
        assert_eq!(svc.shed_hint_ms(), 10, "capped at retry_backoff_cap_ms");
        svc.resume();
    }

    #[test]
    fn per_client_quota_sheds_flooder_but_not_joins() {
        let svc = CompileService::start(ServeConfig {
            paused: true,
            per_client_quota: Some(2),
            ..ServeConfig::default()
        });
        // Client 1 floods four distinct requests: two admitted, two
        // shed over quota.
        let subs: Vec<Submission> = (0..4)
            .map(|i| svc.submit(req(1, &format!("Q{i}"), "BEGIN")))
            .collect();
        assert!(matches!(subs[0], Submission::Queued(_)));
        assert!(matches!(subs[1], Submission::Queued(_)));
        assert!(matches!(subs[2], Submission::OverQuota));
        assert!(matches!(subs[3], Submission::OverQuota));
        assert!(subs[2].is_shed() && subs[2].ticket().is_none());
        // Joining an in-flight compile is exempt: it costs no slot.
        assert!(matches!(
            svc.submit(req(1, "Q0", "BEGIN")),
            Submission::Joined(_)
        ));
        // A different client is unaffected by the flooder's quota.
        assert!(matches!(
            svc.submit(req(2, "R", "BEGIN")),
            Submission::Queued(_)
        ));
        let stats = svc.stats();
        assert_eq!(stats.quota_shed, 2);
        assert_eq!(stats.shed, 0, "queue-full and quota sheds are distinct");
        let cs: std::collections::HashMap<u64, ClientStats> =
            svc.client_stats().into_iter().collect();
        assert_eq!(cs[&1].quota_shed, 2);
        assert_eq!(cs[&1].outstanding, 2);
        assert_eq!(cs[&2].quota_shed, 0);
        // Quota is back-pressure, not denial: once the outstanding
        // compiles land, the client may admit again.
        svc.resume();
        for s in &subs {
            if let Some(t) = s.ticket() {
                t.wait();
            }
        }
        let again = svc.submit(req(1, "Q9", "BEGIN"));
        assert!(matches!(again, Submission::Queued(_)));
        again.ticket().expect("admitted").wait();
        let cs: std::collections::HashMap<u64, ClientStats> =
            svc.client_stats().into_iter().collect();
        assert_eq!(cs[&1].outstanding, 0, "fulfillment releases the quota");
    }

    #[test]
    fn expired_deadline_consumes_no_retry_attempts() {
        // Paused workers, capacity 1: the second request sheds. With a
        // 1ms deadline and 50ms backoff steps, a deadline-unaware retry
        // loop would sleep ~500ms; the deadline-aware one must return
        // almost immediately, charging zero attempts.
        let svc = CompileService::start(ServeConfig {
            paused: true,
            workers: 1,
            queue_capacity: 1,
            request_deadline_ms: Some(1),
            retry_attempts: 10,
            retry_backoff_base_ms: 50,
            retry_backoff_cap_ms: 50,
            ..ServeConfig::default()
        });
        let started = std::time::Instant::now();
        let responses = svc.serve_batch(vec![req(1, "DlA", "BEGIN"), req(2, "DlB", "BEGIN")]);
        let elapsed = started.elapsed();
        // First request was admitted but the paused worker missed the
        // deadline; second was shed and its expired deadline short-
        // circuited the retry budget.
        let out = responses[0].outcome().expect("synthesized outcome");
        assert!(out.stalled && !out.ok);
        assert!(matches!(responses[1], Response::Retry));
        assert!(
            elapsed < std::time::Duration::from_millis(200),
            "retry backoff ran despite expired deadline ({elapsed:?})"
        );
        assert!(svc.stats().deadline_shed >= 1);
        svc.resume();
    }

    #[test]
    fn second_wave_hits_the_warm_store() {
        let svc = CompileService::start(ServeConfig::default());
        let r = req(
            1,
            "Warm",
            "PROCEDURE P; BEGIN END P; PROCEDURE Q; BEGIN END Q; BEGIN P; Q;",
        );
        let cold = svc.submit(r.clone()).ticket().expect("kept").wait();
        let warm = svc.submit(r).ticket().expect("kept").wait();
        assert_eq!(cold.object, warm.object, "byte-identical");
        let warm_incr = warm.incr.expect("incremental active");
        assert_eq!(warm_incr.spliced, warm_incr.units, "all units spliced");
        assert!(svc.store().stats().hits > 0);
    }
}
