//! Crash-safe [`SharedStore`] snapshots: the service-restart half of
//! the self-healing recovery plane.
//!
//! A snapshot is a single checksummed, versioned image of the shared
//! artifact store, written with the same temp-file + atomic-rename
//! journal discipline as [`ccm2_incr`]'s `DiskStore`: the bytes are
//! fully written and flushed to a hidden temp file, then `rename`d into
//! place, so a crash at any point leaves either the previous image set
//! or the complete new one — never a half-written current image.
//!
//! # Image format (version 2)
//!
//! ```text
//! magic      8 bytes   b"CCM2SNAP"
//! version    u32 LE    2
//! delta_seq  u64 LE    store delta sequence number at the cut
//! count      u32 LE    number of entries
//! entry*     hi u64 LE, lo u64 LE, len u32 LE, bytes   (count times)
//! checksum   hi u64 LE, lo u64 LE   Fp128 of everything above
//! ```
//!
//! Version 1 images (no `delta_seq` field) still decode, with a delta
//! sequence of 0. The sequence number is the seam between full images
//! and the incremental [`DeltaJournal`](crate::DeltaJournal): a restart
//! loads the newest valid image and replays only the journaled delta
//! ops with higher sequence numbers — usually far fewer bytes than a
//! fresh full image.
//!
//! Entries are stored **in LRU recency order, least recently used
//! first** ([`SharedStore::export`]), so replaying them in file order
//! on restore rebuilds the same eviction order — LRU behavior survives
//! the restart.
//!
//! Images are named `snap-{seq:08}.img` with a monotonically increasing
//! sequence. [`SnapshotStore::load_latest`] walks them newest-first:
//! an image that fails validation (truncated, bit-flipped, wrong
//! version — anything that breaks the trailer checksum) is moved into
//! a `quarantine/` subdirectory for post-mortem and recovery falls
//! back to the next older image, exactly like the per-entry quarantine
//! protocol of the incremental cache.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ccm2_support::hash::{Fp128, StableHasher};

use crate::store::SharedStore;

const MAGIC: &[u8; 8] = b"CCM2SNAP";
const VERSION: u32 = 2;

/// A directory of store snapshot images plus their quarantine.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

/// What [`SnapshotStore::load_latest`] found.
#[derive(Debug, Default)]
pub struct LoadedSnapshot {
    /// Entries of the newest valid image, oldest-recency first; `None`
    /// when no valid image exists.
    pub entries: Option<Vec<(Fp128, Vec<u8>)>>,
    /// Store delta sequence number recorded at the image's cut (0 for
    /// version-1 images and when no image exists). Delta replay resumes
    /// after this sequence number.
    pub delta_seq: u64,
    /// Images that failed validation and were quarantined by this call.
    pub quarantined: Vec<PathBuf>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        SnapshotStore::from_existing(dir)
    }

    fn from_existing(dir: PathBuf) -> io::Result<SnapshotStore> {
        Ok(SnapshotStore { dir })
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `(sequence, path)` of every `snap-*.img` present, ascending.
    fn images(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut v = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(seq) = name
                .strip_prefix("snap-")
                .and_then(|r| r.strip_suffix(".img"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                v.push((seq, entry.path()));
            }
        }
        v.sort();
        Ok(v)
    }

    /// Writes a new image of `store` and returns its path. The write is
    /// crash-atomic: temp file in the same directory, flush, rename.
    pub fn save(&self, store: &SharedStore) -> io::Result<PathBuf> {
        let seq = self.images()?.last().map_or(1, |(s, _)| s + 1);
        let bytes = encode(&store.export(), store.delta_seq());
        let path = self.dir.join(format!("snap-{seq:08}.img"));
        let tmp = self
            .dir
            .join(format!(".snap-{seq:08}.{}.tmp", std::process::id()));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads the newest valid image, quarantining any torn/corrupt ones
    /// encountered on the way down. `entries` is `None` when no image
    /// validates (fresh directory, or every image damaged).
    pub fn load_latest(&self) -> io::Result<LoadedSnapshot> {
        let mut loaded = LoadedSnapshot::default();
        for (_, path) in self.images()?.into_iter().rev() {
            let bytes = fs::read(&path)?;
            if let Some((entries, delta_seq)) = decode(&bytes) {
                loaded.entries = Some(entries);
                loaded.delta_seq = delta_seq;
                return Ok(loaded);
            }
            let qdir = self.dir.join("quarantine");
            fs::create_dir_all(&qdir)?;
            let dest = qdir.join(path.file_name().expect("image file name"));
            fs::rename(&path, &dest)?;
            loaded.quarantined.push(dest);
        }
        Ok(loaded)
    }

    /// Number of quarantined images currently on disk.
    pub fn quarantined_count(&self) -> usize {
        fs::read_dir(self.dir.join("quarantine"))
            .map(|rd| rd.count())
            .unwrap_or(0)
    }
}

fn encode(entries: &[(Fp128, Vec<u8>)], delta_seq: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&delta_seq.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (fp, bytes) in entries {
        buf.extend_from_slice(&fp.hi.to_le_bytes());
        buf.extend_from_slice(&fp.lo.to_le_bytes());
        buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(bytes);
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.hi.to_le_bytes());
    buf.extend_from_slice(&sum.lo.to_le_bytes());
    buf
}

/// Decoded image body: entries in LRU order plus the recorded delta
/// sequence number (0 for version-1 images).
type DecodedImage = (Vec<(Fp128, Vec<u8>)>, u64);

/// Strict validation: magic, version, exact length accounting and the
/// trailer checksum must all hold. Anything else — a torn tail, a
/// flipped byte, a future version — is `None` and the image is
/// quarantined by the caller.
fn decode(buf: &[u8]) -> Option<DecodedImage> {
    if buf.len() < MAGIC.len() + 4 + 4 + 16 || &buf[..MAGIC.len()] != MAGIC {
        return None;
    }
    let body = &buf[..buf.len() - 16];
    let trailer = &buf[buf.len() - 16..];
    let sum = checksum(body);
    if trailer[..8] != sum.hi.to_le_bytes() || trailer[8..] != sum.lo.to_le_bytes() {
        return None;
    }
    let mut pos = MAGIC.len();
    let version = u32::from_le_bytes(body[pos..pos + 4].try_into().ok()?);
    pos += 4;
    if version != 1 && version != VERSION {
        return None;
    }
    let delta_seq = if version >= 2 {
        let seq = u64::from_le_bytes(body.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        seq
    } else {
        0
    };
    let count = u32::from_le_bytes(body.get(pos..pos + 4)?.try_into().ok()?) as usize;
    pos += 4;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        if body.len() < pos + 20 {
            return None;
        }
        let hi = u64::from_le_bytes(body[pos..pos + 8].try_into().ok()?);
        let lo = u64::from_le_bytes(body[pos + 8..pos + 16].try_into().ok()?);
        let len = u32::from_le_bytes(body[pos + 16..pos + 20].try_into().ok()?) as usize;
        pos += 20;
        if body.len() < pos + len {
            return None;
        }
        entries.push((Fp128 { hi, lo }, body[pos..pos + len].to_vec()));
        pos += len;
    }
    (pos == body.len()).then_some((entries, delta_seq))
}

fn checksum(bytes: &[u8]) -> Fp128 {
    let mut h = StableHasher::new();
    h.write_str("ccm2-snapshot/v1");
    h.write(bytes);
    h.finish()
}

impl crate::service::CompileService {
    /// Persists the shared store into a new snapshot image (crash-atomic
    /// write); returns the image path. Call at any point — the store
    /// mutex makes the export a consistent cut.
    pub fn snapshot(&self, snaps: &SnapshotStore) -> io::Result<PathBuf> {
        snaps.save(self.store())
    }

    /// Starts a service whose store is restored from the newest valid
    /// snapshot in `snaps` (torn images are quarantined, recovery falls
    /// back to the last good one; a fresh directory starts cold). LRU
    /// recency order is preserved across the restart.
    pub fn restore(
        config: crate::service::ServeConfig,
        snaps: &SnapshotStore,
    ) -> io::Result<crate::service::CompileService> {
        let store = SharedStore::new(config.store_budget);
        let loaded = snaps.load_latest()?;
        if let Some(entries) = loaded.entries {
            store.import(&entries);
            store.resume_delta_seq(loaded.delta_seq);
        }
        Ok(crate::service::CompileService::start_with_store(
            config,
            std::sync::Arc::new(store),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ccm2-snap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_entries_and_order() {
        let dir = tmp_dir("rt");
        let snaps = SnapshotStore::new(&dir).unwrap();
        let store = SharedStore::new(1024);
        use ccm2_incr::ArtifactStore as _;
        store.store(fp(1), b"one");
        store.store(fp(2), b"two");
        store.load(fp(1)); // recency order now 2, 1
        let path = snaps.save(&store).unwrap();
        assert!(path.ends_with("snap-00000001.img"));
        let loaded = snaps.load_latest().unwrap();
        assert!(loaded.quarantined.is_empty());
        assert_eq!(
            loaded.entries.unwrap(),
            vec![(fp(2), b"two".to_vec()), (fp(1), b"one".to_vec())]
        );
        assert_eq!(loaded.delta_seq, 2, "two logged insertions at the cut");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_image_is_quarantined_and_older_good_image_wins() {
        let dir = tmp_dir("torn");
        let snaps = SnapshotStore::new(&dir).unwrap();
        let store = SharedStore::new(1024);
        use ccm2_incr::ArtifactStore as _;
        store.store(fp(7), b"good");
        snaps.save(&store).unwrap();
        // A newer image, torn mid-write (no atomic rename would ever
        // produce this; simulate external damage / partial disk).
        let good = encode(&store.export(), store.delta_seq());
        fs::write(dir.join("snap-00000002.img"), &good[..good.len() / 2]).unwrap();
        let loaded = snaps.load_latest().unwrap();
        assert_eq!(loaded.quarantined.len(), 1);
        assert_eq!(snaps.quarantined_count(), 1);
        assert_eq!(loaded.entries.unwrap(), vec![(fp(7), b"good".to_vec())]);
        // The torn image is gone from the active set: a second load
        // does not re-quarantine.
        assert!(snaps.load_latest().unwrap().quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_and_version_skew_fail_validation() {
        let store = SharedStore::new(1024);
        use ccm2_incr::ArtifactStore as _;
        store.store(fp(3), b"payload");
        let good = encode(&store.export(), store.delta_seq());
        assert!(decode(&good).is_some());
        let mut flipped = good.clone();
        flipped[MAGIC.len() + 9] ^= 0x01;
        assert!(decode(&flipped).is_none(), "bit flip detected");
        let mut vskew = good.clone();
        vskew[MAGIC.len()] = 99; // version byte
        assert!(decode(&vskew).is_none(), "future version rejected");
        assert!(decode(&good[..10]).is_none(), "truncation detected");
        assert!(decode(b"").is_none());
        let _ = &good;
    }

    #[test]
    fn version_1_images_still_decode_with_zero_delta_seq() {
        // Hand-build a v1 image (no delta_seq field) with the v1 layout.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // count
        buf.extend_from_slice(&fp(5).hi.to_le_bytes());
        buf.extend_from_slice(&fp(5).lo.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(b"old");
        let sum = checksum(&buf);
        buf.extend_from_slice(&sum.hi.to_le_bytes());
        buf.extend_from_slice(&sum.lo.to_le_bytes());
        let (entries, delta_seq) = decode(&buf).expect("v1 accepted");
        assert_eq!(entries, vec![(fp(5), b"old".to_vec())]);
        assert_eq!(delta_seq, 0, "v1 predates the delta journal");
    }

    #[test]
    fn delta_seq_survives_the_snapshot_round_trip() {
        let store = SharedStore::new(1024);
        use ccm2_incr::ArtifactStore as _;
        store.store(fp(1), b"a");
        store.store(fp(2), b"b");
        let img = encode(&store.export(), store.delta_seq());
        let (_, seq) = decode(&img).unwrap();
        assert_eq!(seq, store.delta_seq());
    }

    #[test]
    fn empty_dir_restores_cold() {
        let dir = tmp_dir("cold");
        let snaps = SnapshotStore::new(&dir).unwrap();
        let loaded = snaps.load_latest().unwrap();
        assert!(loaded.entries.is_none());
        assert!(loaded.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
