//! [`SharedStore`] — the service-wide artifact cache.
//!
//! One instance is shared by every compile the service runs, so a unit
//! compiled for one client's request is a `CacheSplice` hit for every
//! later request that reaches the same stream fingerprint — across
//! clients, projects, DKY strategies and executors (the cache key is
//! content-addressed and the cached object code is
//! strategy/executor-independent, see the equivalence tests).
//!
//! Unlike [`MemStore`](ccm2_incr::MemStore) (unbounded, test-scoped),
//! `SharedStore` is built for a long-lived multi-tenant process: it
//! enforces a byte budget with strict LRU admission (the tracked total
//! never exceeds the budget, not even transiently) and counts hits,
//! misses, insertions, evictions and oversize rejections so the service
//! can report cache behaviour per batch.

use std::collections::HashMap;
use std::collections::VecDeque;

use ccm2_incr::{ArtifactStore, ByteBudgetLru, DeltaOp};
use ccm2_support::hash::Fp128;
use parking_lot::Mutex;

/// Upper bound on retained delta-log ops. When the log overflows, the
/// oldest ops are dropped and the retained history no longer reaches
/// back to every consumer's cursor — [`SharedStore::deltas_since`] then
/// returns `None` and the consumer falls back to a full snapshot. This
/// bounds the log's memory no matter how rarely deltas are shipped.
const DELTA_LOG_CAP: usize = 8192;

/// A snapshot of a [`SharedStore`]'s counters and occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Configured byte budget.
    pub budget: u64,
    /// Bytes currently held.
    pub bytes_in_use: u64,
    /// High-water mark of `bytes_in_use` over the store's lifetime.
    /// The budget invariant is `peak_bytes <= budget`.
    pub peak_bytes: u64,
    /// Entries currently held.
    pub entries: usize,
    /// `load` calls that found an entry.
    pub hits: u64,
    /// `load` calls that found nothing.
    pub misses: u64,
    /// `store` calls that were admitted (including replacements).
    pub insertions: u64,
    /// Entries evicted to make room for admitted ones.
    pub evictions: u64,
    /// `store` calls rejected because the entry alone exceeds the budget.
    pub oversize_rejections: u64,
    /// Entries removed after a consumer reported them invalid
    /// (checksum/version mismatch at decode time).
    pub quarantined: u64,
}

impl StoreStats {
    /// Hits as a fraction of lookups (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    map: HashMap<Fp128, Vec<u8>>,
    lru: ByteBudgetLru,
    peak_bytes: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    oversize_rejections: u64,
    quarantined: u64,
    /// Sequence-numbered mutation log: `delta[i]` has sequence number
    /// `delta_base + i + 1`. Imports and replays are *not* logged — they
    /// are history, not new workload.
    delta: VecDeque<DeltaOp>,
    delta_base: u64,
}

impl Inner {
    fn log_delta(&mut self, op: DeltaOp) {
        self.delta.push_back(op);
        while self.delta.len() > DELTA_LOG_CAP {
            self.delta.pop_front();
            self.delta_base += 1;
        }
    }
}

/// A byte-budgeted, LRU-evicting, instrumented [`ArtifactStore`] meant
/// to be shared (behind an `Arc`) by every compile a service runs.
///
/// All state sits under one mutex so the map, the LRU index and the
/// counters can never disagree; entries are small (hundreds of bytes to
/// a few KiB) and `load`/`store` only clone byte vectors under the lock,
/// so contention stays negligible next to compilation itself.
#[derive(Debug)]
pub struct SharedStore {
    inner: Mutex<Inner>,
    faults: Option<std::sync::Arc<ccm2_faults::FaultPlan>>,
}

impl SharedStore {
    /// Creates a store holding at most `budget` bytes of entries.
    pub fn new(budget: u64) -> SharedStore {
        SharedStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: ByteBudgetLru::new(budget),
                peak_bytes: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                oversize_rejections: 0,
                quarantined: 0,
                delta: VecDeque::new(),
                delta_base: 0,
            }),
            faults: None,
        }
    }

    /// A store that corrupts entries whose `store:{fp}` site fires in
    /// `plan` before admitting them — the decode-validation path then
    /// quarantines them on the next load.
    pub fn with_faults(budget: u64, plan: std::sync::Arc<ccm2_faults::FaultPlan>) -> SharedStore {
        SharedStore {
            faults: Some(plan),
            ..SharedStore::new(budget)
        }
    }

    /// Every live entry in recency order, least recently used first —
    /// the snapshot wire order: replaying [`SharedStore::import`] (or
    /// `store`) in this order rebuilds the same LRU eviction order.
    pub fn export(&self) -> Vec<(Fp128, Vec<u8>)> {
        let inner = self.inner.lock();
        inner
            .lru
            .entries_by_recency()
            .into_iter()
            .map(|fp| (fp, inner.map.get(&fp).cloned().expect("lru/map in sync")))
            .collect()
    }

    /// Replays restored entries into the store, preserving the order
    /// given (oldest first). Unlike `store`, this bypasses fault
    /// injection and the insertion counter: a restore is not workload,
    /// and it must not re-corrupt entries that were corrupted (and
    /// possibly quarantined) in their first life.
    pub fn import(&self, entries: &[(Fp128, Vec<u8>)]) {
        let mut inner = self.inner.lock();
        for (fp, bytes) in entries {
            let admission = inner.lru.admit(*fp, bytes.len() as u64);
            for victim in &admission.evict {
                inner.map.remove(victim);
            }
            if admission.accepted {
                inner.map.insert(*fp, bytes.clone());
            }
        }
        inner.peak_bytes = inner.peak_bytes.max(inner.lru.total());
        debug_assert_eq!(inner.map.len(), inner.lru.len());
    }

    /// The sequence number of the newest logged mutation (0 before any).
    /// The snapshot journal records this so a restart knows where delta
    /// replay must pick up.
    pub fn delta_seq(&self) -> u64 {
        let inner = self.inner.lock();
        inner.delta_base + inner.delta.len() as u64
    }

    /// Every logged mutation with sequence number greater than `seq`,
    /// in replay order. `None` when the retained history no longer
    /// reaches back to `seq` (the bounded log dropped older ops) — the
    /// caller must fall back to a full snapshot/export instead.
    pub fn deltas_since(&self, seq: u64) -> Option<Vec<DeltaOp>> {
        let inner = self.inner.lock();
        if seq < inner.delta_base {
            return None;
        }
        let skip = (seq - inner.delta_base) as usize;
        if skip > inner.delta.len() {
            return None;
        }
        Some(inner.delta.iter().skip(skip).cloned().collect())
    }

    /// Drops logged ops with sequence number `<= seq` — call after the
    /// ops are durably journaled so the in-memory log stays small.
    pub fn truncate_deltas(&self, seq: u64) {
        let mut inner = self.inner.lock();
        while inner.delta_base < seq.min(inner.delta_base + inner.delta.len() as u64) {
            inner.delta.pop_front();
            inner.delta_base += 1;
        }
    }

    /// Re-anchors the delta sequence counter after a restore: the next
    /// logged mutation gets sequence number `seq + 1`. Requires an empty
    /// log (restores happen before the store takes traffic).
    pub fn resume_delta_seq(&self, seq: u64) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.delta.is_empty(), "resume on a store with history");
        inner.delta.clear();
        inner.delta_base = seq;
    }

    /// Replays delta ops — the restart path (snapshot + delta replay)
    /// and the fabric's replica-absorb path. Like [`SharedStore::import`]
    /// this bypasses fault injection, the insertion counter and the
    /// delta log itself: replayed history must not be re-journaled or
    /// re-corrupted. Budget and LRU admission still apply.
    pub fn apply_delta(&self, ops: &[DeltaOp]) {
        let mut inner = self.inner.lock();
        for op in ops {
            match op {
                DeltaOp::Insert { fp, bytes } => {
                    let admission = inner.lru.admit(*fp, bytes.len() as u64);
                    for victim in &admission.evict {
                        inner.map.remove(victim);
                    }
                    if admission.accepted {
                        inner.map.insert(*fp, bytes.clone());
                    }
                }
                DeltaOp::Evict { fp } => {
                    if inner.map.remove(fp).is_some() {
                        inner.lru.remove(*fp);
                    }
                }
            }
        }
        inner.peak_bytes = inner.peak_bytes.max(inner.lru.total());
        debug_assert_eq!(inner.map.len(), inner.lru.len());
    }

    /// Snapshot of counters and occupancy.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            budget: inner.lru.budget(),
            bytes_in_use: inner.lru.total(),
            peak_bytes: inner.peak_bytes,
            entries: inner.map.len(),
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.lru.evictions(),
            oversize_rejections: inner.oversize_rejections,
            quarantined: inner.quarantined,
        }
    }
}

impl ArtifactStore for SharedStore {
    fn load(&self, fp: Fp128) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        match inner.map.get(&fp).cloned() {
            Some(bytes) => {
                inner.hits += 1;
                inner.lru.touch(fp);
                Some(bytes)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    fn store(&self, fp: Fp128, bytes: &[u8]) {
        // Fault injection: damage the entry before admission, the same
        // way `DiskStore` does, so decode-side validation and the
        // quarantine path get exercised end to end.
        let mut corrupted: Vec<u8>;
        let mut bytes = bytes;
        if let Some(plan) = &self.faults {
            if let Some(ccm2_faults::FaultKind::Corrupt { byte }) =
                plan.at(&format!("store:{}", fp.to_hex()))
            {
                corrupted = bytes.to_vec();
                if byte == usize::MAX {
                    corrupted.truncate(corrupted.len() / 2);
                } else if !corrupted.is_empty() {
                    let ix = byte % corrupted.len();
                    corrupted[ix] ^= 0x55;
                }
                bytes = &corrupted;
            }
        }
        let mut inner = self.inner.lock();
        let admission = inner.lru.admit(fp, bytes.len() as u64);
        for victim in &admission.evict {
            inner.map.remove(victim);
        }
        // Log victims before the insert so replaying the ops in order
        // reproduces the same occupancy trajectory under the budget.
        for victim in &admission.evict {
            inner.log_delta(DeltaOp::Evict { fp: *victim });
        }
        if admission.accepted {
            inner.map.insert(fp, bytes.to_vec());
            inner.insertions += 1;
            inner.log_delta(DeltaOp::Insert {
                fp,
                bytes: bytes.to_vec(),
            });
        } else {
            inner.oversize_rejections += 1;
        }
        inner.peak_bytes = inner.peak_bytes.max(inner.lru.total());
        debug_assert_eq!(inner.map.len(), inner.lru.len());
        debug_assert!(inner.peak_bytes <= inner.lru.budget());
    }

    fn quarantine(&self, fp: Fp128) {
        let mut inner = self.inner.lock();
        if inner.map.remove(&fp).is_some() {
            inner.lru.remove(fp);
            inner.quarantined += 1;
            inner.log_delta(DeltaOp::Evict { fp });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fp128 {
        Fp128 { hi: n, lo: !n }
    }

    #[test]
    fn hit_miss_and_insertion_counters() {
        let s = SharedStore::new(1024);
        assert!(s.load(fp(1)).is_none());
        s.store(fp(1), b"abc");
        assert_eq!(s.load(fp(1)).as_deref(), Some(&b"abc"[..]));
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.insertions), (1, 1, 1));
        assert_eq!(st.bytes_in_use, 3);
        assert!((st.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn budget_is_never_exceeded_and_lru_entry_goes_first() {
        let s = SharedStore::new(10);
        s.store(fp(1), &[1; 4]);
        s.store(fp(2), &[2; 4]);
        s.load(fp(1)); // fp(2) is now least recently used
        s.store(fp(3), &[3; 4]);
        let st = s.stats();
        assert!(st.peak_bytes <= st.budget, "{st:?}");
        assert_eq!(st.evictions, 1);
        assert!(s.load(fp(2)).is_none(), "LRU victim evicted");
        assert!(s.load(fp(1)).is_some() && s.load(fp(3)).is_some());
    }

    #[test]
    fn oversize_entries_are_rejected_not_admitted() {
        let s = SharedStore::new(8);
        s.store(fp(7), &[0; 64]);
        let st = s.stats();
        assert_eq!(st.oversize_rejections, 1);
        assert_eq!(st.bytes_in_use, 0);
        assert!(s.load(fp(7)).is_none());
    }

    #[test]
    fn fault_plan_corrupts_entry_and_quarantine_removes_it() {
        use ccm2_incr::ArtifactStore as _;
        let target = fp(3);
        let plan = ccm2_faults::FaultPlan::single(
            format!("store:{}", target.to_hex()),
            ccm2_faults::FaultKind::Corrupt { byte: 1 },
        );
        let s = SharedStore::with_faults(1024, std::sync::Arc::new(plan));
        s.store(target, b"abcd");
        s.store(fp(4), b"abcd");
        assert_eq!(
            s.load(target).as_deref(),
            Some(&b"a\x37cd"[..]),
            "byte 1 XOR 0x55"
        );
        assert_eq!(
            s.load(fp(4)).as_deref(),
            Some(&b"abcd"[..]),
            "other entries untouched"
        );
        s.quarantine(target);
        assert!(s.load(target).is_none());
        s.quarantine(target); // second call is a no-op
        let st = s.stats();
        assert_eq!(st.quarantined, 1);
        assert_eq!(st.entries, 1);
        assert_eq!(st.bytes_in_use, 4, "LRU re-accounted after quarantine");
    }

    #[test]
    fn export_import_preserves_entries_and_lru_order() {
        let s = SharedStore::new(100);
        s.store(fp(1), b"one");
        s.store(fp(2), b"two");
        s.store(fp(3), b"three");
        s.load(fp(1)); // order: 2, 3, 1 (oldest first)
        let exported = s.export();
        assert_eq!(
            exported.iter().map(|(f, _)| *f).collect::<Vec<_>>(),
            vec![fp(2), fp(3), fp(1)]
        );
        let restored = SharedStore::new(100);
        restored.import(&exported);
        assert_eq!(restored.export(), exported);
        // LRU behavior survives: the pre-restart victim is still first.
        let taken = 3 + 3 + 5;
        restored.store(fp(4), &vec![9u8; 100 - taken + 1]);
        assert!(restored.load(fp(2)).is_none(), "old LRU victim evicted");
        assert!(restored.load(fp(1)).is_some());
        let st = restored.stats();
        assert_eq!(st.insertions, 1, "imports are not counted as insertions");
    }

    #[test]
    fn delta_log_records_inserts_evictions_and_quarantines() {
        let s = SharedStore::new(10);
        assert_eq!(s.delta_seq(), 0);
        s.store(fp(1), &[1; 4]);
        s.store(fp(2), &[2; 4]);
        s.store(fp(3), &[3; 4]); // evicts fp(1)
        s.quarantine(fp(2));
        let ops = s.deltas_since(0).expect("full history retained");
        assert_eq!(
            ops,
            vec![
                DeltaOp::Insert {
                    fp: fp(1),
                    bytes: vec![1; 4]
                },
                DeltaOp::Insert {
                    fp: fp(2),
                    bytes: vec![2; 4]
                },
                DeltaOp::Evict { fp: fp(1) },
                DeltaOp::Insert {
                    fp: fp(3),
                    bytes: vec![3; 4]
                },
                DeltaOp::Evict { fp: fp(2) },
            ]
        );
        assert_eq!(s.delta_seq(), 5);
        // Replaying the ops rebuilds the same content.
        let replica = SharedStore::new(10);
        replica.apply_delta(&ops);
        assert_eq!(
            replica.export().iter().map(|(f, _)| *f).collect::<Vec<_>>(),
            vec![fp(3)]
        );
        let st = replica.stats();
        assert_eq!(st.insertions, 0, "replays are not workload");
        assert_eq!(st.entries, 1);
    }

    #[test]
    fn deltas_since_cursor_and_truncation() {
        let s = SharedStore::new(1024);
        s.store(fp(1), b"a");
        s.store(fp(2), b"b");
        assert_eq!(s.deltas_since(1).unwrap().len(), 1);
        assert_eq!(s.deltas_since(2).unwrap().len(), 0);
        s.truncate_deltas(1);
        assert!(s.deltas_since(0).is_none(), "history trimmed below cursor");
        assert_eq!(s.deltas_since(1).unwrap().len(), 1);
        // Resume re-anchors the counter on a drained log.
        s.truncate_deltas(2);
        s.resume_delta_seq(40);
        s.store(fp(3), b"c");
        assert_eq!(s.delta_seq(), 41);
        assert_eq!(s.deltas_since(40).unwrap().len(), 1);
    }

    #[test]
    fn overflowing_delta_log_drops_oldest_history() {
        let s = SharedStore::new(u64::MAX);
        for i in 0..(super::DELTA_LOG_CAP as u64 + 10) {
            s.store(fp(i), b"x");
        }
        assert!(s.deltas_since(0).is_none(), "oldest ops dropped");
        let newest = s.delta_seq();
        assert_eq!(s.deltas_since(newest - 1).unwrap().len(), 1);
    }

    #[test]
    fn replacement_reaccounts_bytes() {
        let s = SharedStore::new(10);
        s.store(fp(1), &[1; 8]);
        s.store(fp(1), &[9; 2]);
        let st = s.stats();
        assert_eq!(st.bytes_in_use, 2);
        assert_eq!(st.entries, 1);
        assert_eq!(s.load(fp(1)).map(|b| b.len()), Some(2));
    }
}
