//! Kill/restart drills: a service is stopped mid-load and a new one is
//! restored from the snapshot journal. The promises under test:
//!
//! * no admitted request is lost — the old service's drop drains its
//!   queue, so every ticket lands even when the kill races the load;
//! * the restored store serves byte-identical artifacts: requests that
//!   were compiled before the kill are pure `CacheSplice` runs after
//!   the restart;
//! * LRU recency order survives the restart (export before == export
//!   after);
//! * a torn (truncated) newest snapshot is quarantined and restore
//!   falls back to the last good image.

use std::sync::Arc;

use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{
    CompileRequest, CompileService, ExecChoice, Response, ServeConfig, SnapshotStore,
};
use ccm2_workload::{serve_load, ServeEvent, ServeLoadParams};

fn request(e: &ServeEvent) -> CompileRequest {
    CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

fn snap_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ccm2-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 32,
        store_budget: 64 * 1024,
        ..ServeConfig::default()
    }
}

#[test]
fn kill_and_restore_preserves_artifacts_and_lru_order() {
    let events = serve_load(&ServeLoadParams {
        seed: 0xDEAD,
        projects: 2,
        clients: 4,
        events: 24,
        edit_every: 6,
        interface_every: 2,
    });
    let (before, after) = events.split_at(events.len() / 2);

    let dir = snap_dir("kill");
    let snaps = SnapshotStore::new(&dir).unwrap();

    // Phase 1: serve the first half, snapshot, kill.
    let svc = CompileService::start(config());
    let mut served_before = Vec::new();
    for r in svc.serve_batch(before.iter().map(request).collect()) {
        let out = r.outcome().expect("admitted or retried in").clone();
        served_before.push(out);
    }
    assert_eq!(served_before.len(), before.len(), "no request lost");
    let exported = svc.store().export();
    assert!(!exported.is_empty(), "load populated the store");
    svc.snapshot(&snaps).unwrap();
    drop(svc); // the kill

    // Phase 2: restore. The store must come back byte- and order-equal.
    let svc = CompileService::restore(config(), &snaps).unwrap();
    assert_eq!(
        svc.store().export(),
        exported,
        "entries and LRU recency order survive the restart"
    );

    // Replaying a pre-kill request is a pure splice against the
    // restored store: every unit comes out of the cache, and the bytes
    // match what the old service served.
    let replay = request(&before[0]);
    let replayed = svc
        .submit(replay.clone())
        .ticket()
        .expect("admitted")
        .wait();
    let original = served_before
        .iter()
        .find(|o| o.request_fp == replay.fingerprint())
        .expect("served before the kill");
    assert_eq!(replayed.object, original.object, "byte-identical");
    assert_eq!(replayed.diagnostics, original.diagnostics);
    let incr = replayed.incr.expect("incremental active");
    assert_eq!(
        incr.spliced, incr.units,
        "restored store served every unit: {incr:?}"
    );

    // The second half of the load completes normally on the restart.
    for r in svc.serve_batch(after.iter().map(request).collect()) {
        assert!(r.outcome().is_some(), "post-restart request lost");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_races_admitted_requests_without_losing_them() {
    // Admit requests into a *paused* service, snapshot, then kill. The
    // drop-drain guarantee means every ticket still lands — an admitted
    // request is never lost to the restart.
    let dir = snap_dir("race");
    let snaps = SnapshotStore::new(&dir).unwrap();
    let svc = CompileService::start(ServeConfig {
        paused: true,
        ..config()
    });
    let events = serve_load(&ServeLoadParams {
        seed: 0xBEEF,
        projects: 1,
        clients: 3,
        events: 6,
        edit_every: 3,
        interface_every: 2,
    });
    let tickets: Vec<_> = events
        .iter()
        .map(|e| {
            svc.submit(request(e))
                .ticket()
                .expect("capacity 32 admits all")
                .clone()
        })
        .collect();
    svc.snapshot(&snaps).unwrap();
    drop(svc); // kill with the whole queue still pending
    for t in &tickets {
        assert!(
            t.try_get().is_some(),
            "drop drained the queue before joining workers"
        );
    }

    // A restored service picks up with whatever the snapshot captured
    // (possibly nothing — the kill raced the compiles) and still serves
    // the same requests correctly.
    let svc = CompileService::restore(config(), &snaps).unwrap();
    for r in svc.serve_batch(events.iter().map(request).collect()) {
        match r {
            Response::Done(out) => assert!(out.object.is_some() || !out.ok),
            Response::Retry => panic!("capacity 32 admits all"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_snapshot_falls_back_to_last_good_image() {
    let dir = snap_dir("torn");
    let snaps = SnapshotStore::new(&dir).unwrap();

    let events = serve_load(&ServeLoadParams {
        seed: 0x7042,
        projects: 1,
        clients: 2,
        events: 4,
        edit_every: 2,
        interface_every: 2,
    });
    let svc = CompileService::start(config());
    for r in svc.serve_batch(events.iter().map(request).collect()) {
        assert!(r.outcome().is_some());
    }
    let exported = svc.store().export();
    let good = svc.snapshot(&snaps).unwrap();
    drop(svc);

    // Damage a *newer* image: copy the good one and tear off its tail,
    // simulating a crash mid-write outside the atomic-rename protocol
    // (e.g. partial disk sector loss).
    let bytes = std::fs::read(&good).unwrap();
    std::fs::write(dir.join("snap-99999999.img"), &bytes[..bytes.len() - 7]).unwrap();

    let svc = CompileService::restore(config(), &snaps).unwrap();
    assert_eq!(
        svc.store().export(),
        exported,
        "recovery fell back to the last good image"
    );
    assert_eq!(snaps.quarantined_count(), 1, "torn image quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}
