//! Bounded soak: the seeded many-client load (`ccm2_workload::serve_load`)
//! against a small service, with the client back-off protocol (shed
//! requests are resubmitted next wave). CI runs this as the serve gate:
//! zero lost responses, dedup ratio above a floor, budget never
//! exceeded.

use std::sync::Arc;

use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{ClientStats, CompileRequest, CompileService, ExecChoice, Response, ServeConfig};
use ccm2_workload::{serve_load, ServeEvent, ServeLoadParams};

fn named_request(client: u64, name: &str) -> CompileRequest {
    CompileRequest::new(
        client,
        name,
        format!("MODULE {name}; VAR x: INTEGER; BEGIN x := 1; END {name}."),
        Arc::new(ccm2_support::defs::DefLibrary::new()),
    )
}

fn request(e: &ServeEvent) -> CompileRequest {
    CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

#[test]
fn seeded_soak_loses_nothing_and_dedupes_above_floor() {
    let load = ServeLoadParams {
        seed: 0x50AC,
        projects: 3,
        clients: 6,
        events: 72,
        edit_every: 8,
        interface_every: 3,
    };
    let events = serve_load(&load);
    assert_eq!(events.len(), 72);

    // A deliberately tight queue so admission control actually sheds;
    // the retry loop below is the documented client protocol.
    let svc = CompileService::start(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        store_budget: 16 * 1024,
        paused: false,
        ..ServeConfig::default()
    });

    let mut pending: Vec<CompileRequest> = events.iter().map(request).collect();
    let mut served = 0usize;
    let mut waves = 0usize;
    while !pending.is_empty() {
        waves += 1;
        assert!(
            waves <= events.len(),
            "retry protocol failed to drain ({} still pending)",
            pending.len()
        );
        let batch = std::mem::take(&mut pending);
        let resubmit = batch.clone();
        for (req, resp) in resubmit.into_iter().zip(svc.serve_batch(batch)) {
            match resp {
                Response::Done(out) => {
                    served += 1;
                    assert!(out.ok, "{:?}", out.diagnostics);
                    assert!(out.object.is_some(), "served response lost its object");
                }
                Response::Retry => pending.push(req),
            }
        }
    }

    // Zero lost: every event produced exactly one Done response.
    assert_eq!(served, events.len());

    let stats = svc.stats();
    let store = svc.store().stats();
    // Every admitted request was compiled (none stuck in flight).
    assert_eq!(stats.compiled, stats.accepted);
    // The load repeats (project, revision) pairs across clients and the
    // batch submits whole waves up front, so a healthy service dedupes
    // far more than this floor (~80% observed; the floor leaves slack
    // for scheduling races where a compile finishes before its
    // duplicate arrives).
    assert!(
        stats.dedup_ratio() >= 0.30,
        "dedup ratio {:.3} below floor (stats: {stats:?})",
        stats.dedup_ratio()
    );
    assert!(
        store.peak_bytes <= store.budget,
        "budget exceeded: {store:?}"
    );
}

/// Quota soak: one flooding client and several polite (under-quota)
/// clients share a service with `per_client_quota` enforcement. The
/// flooder must be shed over quota; the polite clients must **never**
/// be shed — neither over quota nor at the queue (the queue is sized so
/// only the flooder could have filled it) — and back-pressure must
/// still drain every flooded request eventually (quota is not denial).
#[test]
fn under_quota_clients_are_never_shed_under_flood() {
    const QUOTA: u32 = 2;
    const FLOODER: u64 = 99;
    const POLITE: [u64; 3] = [1, 2, 3];
    const ROUNDS: usize = 6;

    let svc = CompileService::start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        store_budget: 64 * 1024,
        per_client_quota: Some(QUOTA),
        ..ServeConfig::default()
    });

    let mut flood_served = 0usize;
    let mut polite_served = 0usize;
    let mut pending: Vec<CompileRequest> = Vec::new();
    for round in 0..ROUNDS {
        // The flooder throws 12 distinct modules per round at the
        // service; each polite client asks for one.
        for i in 0..12 {
            pending.push(named_request(FLOODER, &format!("Flood{round}x{i}")));
        }
        for &c in &POLITE {
            pending.push(named_request(c, &format!("Polite{c}r{round}")));
        }
        // Client back-off protocol: resubmit shed requests until the
        // round drains. Quota releases as compiles land, so this
        // terminates.
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 200, "quota back-pressure failed to drain");
            let batch = std::mem::take(&mut pending);
            let resubmit = batch.clone();
            for (req, resp) in resubmit.into_iter().zip(svc.serve_batch(batch)) {
                match resp {
                    Response::Done(out) => {
                        assert!(out.ok, "{:?}", out.diagnostics);
                        if req.client == FLOODER {
                            flood_served += 1;
                        } else {
                            polite_served += 1;
                        }
                    }
                    Response::Retry => pending.push(req),
                }
            }
        }
    }

    assert_eq!(flood_served, ROUNDS * 12, "quota delays, never loses");
    assert_eq!(polite_served, ROUNDS * POLITE.len());

    let stats = svc.stats();
    assert!(
        stats.quota_shed > 0,
        "the flooder was never held to its quota: {stats:?}"
    );
    for (client, cs) in svc.client_stats() {
        assert_eq!(cs.outstanding, 0, "client {client} leaked outstanding");
        if client != FLOODER {
            assert_eq!(
                (cs.shed, cs.quota_shed),
                (0, 0),
                "under-quota client {client} was shed: {cs:?}"
            );
        }
    }
    let flooder: ClientStats = svc
        .client_stats()
        .into_iter()
        .find(|(c, _)| *c == FLOODER)
        .expect("flooder tracked")
        .1;
    assert!(flooder.quota_shed > 0);
}
