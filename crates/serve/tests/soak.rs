//! Bounded soak: the seeded many-client load (`ccm2_workload::serve_load`)
//! against a small service, with the client back-off protocol (shed
//! requests are resubmitted next wave). CI runs this as the serve gate:
//! zero lost responses, dedup ratio above a floor, budget never
//! exceeded.

use std::sync::Arc;

use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{CompileRequest, CompileService, ExecChoice, Response, ServeConfig};
use ccm2_workload::{serve_load, ServeEvent, ServeLoadParams};

fn request(e: &ServeEvent) -> CompileRequest {
    CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(4),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

#[test]
fn seeded_soak_loses_nothing_and_dedupes_above_floor() {
    let load = ServeLoadParams {
        seed: 0x50AC,
        projects: 3,
        clients: 6,
        events: 72,
        edit_every: 8,
        interface_every: 3,
    };
    let events = serve_load(&load);
    assert_eq!(events.len(), 72);

    // A deliberately tight queue so admission control actually sheds;
    // the retry loop below is the documented client protocol.
    let svc = CompileService::start(ServeConfig {
        workers: 2,
        queue_capacity: 4,
        store_budget: 16 * 1024,
        paused: false,
        ..ServeConfig::default()
    });

    let mut pending: Vec<CompileRequest> = events.iter().map(request).collect();
    let mut served = 0usize;
    let mut waves = 0usize;
    while !pending.is_empty() {
        waves += 1;
        assert!(
            waves <= events.len(),
            "retry protocol failed to drain ({} still pending)",
            pending.len()
        );
        let batch = std::mem::take(&mut pending);
        let resubmit = batch.clone();
        for (req, resp) in resubmit.into_iter().zip(svc.serve_batch(batch)) {
            match resp {
                Response::Done(out) => {
                    served += 1;
                    assert!(out.ok, "{:?}", out.diagnostics);
                    assert!(out.object.is_some(), "served response lost its object");
                }
                Response::Retry => pending.push(req),
            }
        }
    }

    // Zero lost: every event produced exactly one Done response.
    assert_eq!(served, events.len());

    let stats = svc.stats();
    let store = svc.store().stats();
    // Every admitted request was compiled (none stuck in flight).
    assert_eq!(stats.compiled, stats.accepted);
    // The load repeats (project, revision) pairs across clients and the
    // batch submits whole waves up front, so a healthy service dedupes
    // far more than this floor (~80% observed; the floor leaves slack
    // for scheduling races where a compile finishes before its
    // duplicate arrives).
    assert!(
        stats.dedup_ratio() >= 0.30,
        "dedup ratio {:.3} below floor (stats: {stats:?})",
        stats.dedup_ratio()
    );
    assert!(
        store.peak_bytes <= store.budget,
        "budget exceeded: {store:?}"
    );
}
