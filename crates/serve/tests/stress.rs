//! Concurrent-store stress: many submitter threads hammering one
//! service whose shared store is small enough that every wave of
//! compiles evicts earlier entries. The assertions are the service's
//! core promises:
//!
//! * every served object is byte-identical to a direct
//!   `compile_concurrent` run of the same request (no torn reads, no
//!   stale entries, no cross-request contamination);
//! * the store's occupancy never exceeds its byte budget, even at peak;
//! * identical requests piled up while the service is paused compile
//!   exactly once (single-flight counter).

use std::sync::Arc;

use ccm2::{compile_concurrent, Options};
use ccm2_incr::comparable_output;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{CompileRequest, CompileService, ExecChoice, ServeConfig};
use ccm2_support::defs::DefProvider;
use ccm2_support::Interner;
use ccm2_workload::{generate, GenParams, GeneratedModule};

fn request(
    client: u64,
    m: &GeneratedModule,
    strategy: DkyStrategy,
    exec: ExecChoice,
) -> CompileRequest {
    CompileRequest {
        client,
        module: m.name.clone(),
        source: m.source.clone(),
        defs: Arc::new(m.defs.clone()),
        strategy,
        exec,
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

fn standalone(req: &CompileRequest) -> (Option<Vec<u8>>, Vec<String>) {
    let out = compile_concurrent(
        &req.source,
        Arc::clone(&req.defs) as Arc<dyn DefProvider>,
        Arc::new(Interner::new()),
        Options {
            strategy: req.strategy,
            executor: req.exec.to_executor(),
            analyze: req.analyze,
            incremental: None,
            ..Options::default()
        },
    );
    comparable_output(
        out.image.as_ref(),
        &out.diagnostics,
        &out.sources,
        &out.interner,
    )
}

#[test]
fn many_threads_under_eviction_pressure_serve_exact_bytes() {
    // Six distinct modules; a tight budget guarantees the store churns.
    let modules: Vec<GeneratedModule> = (0..6)
        .map(|i| generate(&GenParams::small(&format!("Stress{i}"), 0x57e0 + i as u64)))
        .collect();
    let expected: Vec<(Option<Vec<u8>>, Vec<String>)> = modules
        .iter()
        .map(|m| standalone(&request(0, m, DkyStrategy::Skeptical, ExecChoice::Sim(2))))
        .collect();

    let svc = Arc::new(CompileService::start(ServeConfig {
        workers: 3,
        queue_capacity: 64,
        store_budget: 4 * 1024, // far below 6 modules' worth of units
        paused: false,
        ..ServeConfig::default()
    }));

    let submitters: Vec<_> = (0..8u64)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let modules = modules.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..4u64 {
                    // Each thread walks the modules at a different phase,
                    // so distinct modules are always in flight together.
                    let i = ((t + round * 3) % modules.len() as u64) as usize;
                    let req = request(t, &modules[i], DkyStrategy::Skeptical, ExecChoice::Sim(2));
                    let sub = svc.submit(req);
                    let out = sub.ticket().expect("capacity 64 never sheds here").wait();
                    assert!(out.ok, "{:?}", out.diagnostics);
                    assert_eq!(
                        (out.object.clone(), out.diagnostics.clone()),
                        expected[i],
                        "served bytes differ from direct compile for module {i}"
                    );
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter panicked");
    }

    let store = svc.store().stats();
    assert!(
        store.peak_bytes <= store.budget,
        "budget exceeded: peak {} > {}",
        store.peak_bytes,
        store.budget
    );
    assert!(store.bytes_in_use <= store.budget);
    assert!(
        store.evictions > 0,
        "budget was chosen to force eviction churn; got none (stats: {store:?})"
    );
    let stats = svc.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.submitted, 32);
}

#[test]
fn piled_up_identical_requests_compile_exactly_once() {
    let m = generate(&GenParams::small("OnceOnly", 0x0ce));
    let svc = Arc::new(CompileService::start(ServeConfig {
        workers: 3,
        paused: true, // hold the workers so the pile-up is deterministic
        ..ServeConfig::default()
    }));

    let submitters: Vec<_> = (0..6u64)
        .map(|client| {
            let svc = Arc::clone(&svc);
            let req = request(client, &m, DkyStrategy::Skeptical, ExecChoice::Threads(2));
            std::thread::spawn(move || svc.submit(req).ticket().expect("admitted").wait())
        })
        .collect();

    // All six are in the in-flight table (one queued, five joined)
    // before any worker moves.
    while svc.stats().submitted < 6 {
        std::thread::yield_now();
    }
    assert_eq!(svc.stats().compiled, 0, "paused service must not compile");
    svc.resume();

    let outcomes: Vec<_> = submitters
        .into_iter()
        .map(|s| s.join().expect("waiter panicked"))
        .collect();
    for out in &outcomes {
        assert!(Arc::ptr_eq(out, &outcomes[0]), "one fanned-out outcome");
    }
    let stats = svc.stats();
    assert_eq!(stats.compiled, 1, "single-flight: exactly one compile");
    assert_eq!(stats.joined, 5);
    assert_eq!(stats.accepted, 1);
}
