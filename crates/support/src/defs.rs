//! Definition-module source providers.
//!
//! A compilation unit is a module `M` represented by `M.def` and `M.mod`
//! (paper §3); the compiler resolves imported interfaces by name. In the
//! paper's environment this was the file system; in this reproduction the
//! benchmark workloads are generated in memory, so the lookup is a trait.

use std::collections::HashMap;

/// Provides definition-module sources by module name.
pub trait DefProvider: Send + Sync {
    /// Returns the text of `M.def` for module `name`, if it exists.
    fn definition_source(&self, name: &str) -> Option<String>;

    /// Enumerates *every* definition module as sorted `(name, source)`
    /// pairs, when the provider can. The incremental-compilation cache
    /// folds this into its environment fingerprint (a conservative
    /// superset of any unit's imports); providers that cannot enumerate
    /// (the default) disable incremental reuse rather than risk a stale
    /// interface going unnoticed.
    fn all_definitions(&self) -> Option<Vec<(String, String)>> {
        None
    }
}

/// A simple in-memory [`DefProvider`].
///
/// # Examples
///
/// ```
/// use ccm2_support::defs::{DefLibrary, DefProvider};
/// let mut lib = DefLibrary::new();
/// lib.insert("IO", "DEFINITION MODULE IO; END IO.");
/// assert!(lib.definition_source("IO").is_some());
/// assert!(lib.definition_source("Nope").is_none());
/// ```
#[derive(Debug, Default, Clone)]
pub struct DefLibrary {
    defs: HashMap<String, String>,
}

impl DefLibrary {
    /// Creates an empty library.
    pub fn new() -> DefLibrary {
        DefLibrary::default()
    }

    /// Adds (or replaces) a definition module's source.
    pub fn insert(&mut self, name: impl Into<String>, source: impl Into<String>) {
        self.defs.insert(name.into(), source.into());
    }

    /// Iterates over `(name, source)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.defs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of definition modules.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

impl DefProvider for DefLibrary {
    fn definition_source(&self, name: &str) -> Option<String> {
        self.defs.get(name).cloned()
    }

    fn all_definitions(&self) -> Option<Vec<(String, String)>> {
        let mut all: Vec<(String, String)> = self
            .defs
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        all.sort();
        Some(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut lib = DefLibrary::new();
        assert!(lib.is_empty());
        lib.insert("A", "DEFINITION MODULE A; END A.");
        assert_eq!(lib.len(), 1);
        assert!(lib
            .definition_source("A")
            .expect("exists")
            .contains("MODULE A"));
    }

    #[test]
    fn provider_is_object_safe() {
        let lib = DefLibrary::new();
        let p: &dyn DefProvider = &lib;
        assert!(p.definition_source("missing").is_none());
    }

    #[test]
    fn all_definitions_is_sorted() {
        let mut lib = DefLibrary::new();
        lib.insert("Zed", "DEFINITION MODULE Zed; END Zed.");
        lib.insert("Alpha", "DEFINITION MODULE Alpha; END Alpha.");
        let all = lib.all_definitions().expect("library can enumerate");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "Alpha");
        assert_eq!(all[1].0, "Zed");

        struct Opaque;
        impl DefProvider for Opaque {
            fn definition_source(&self, _name: &str) -> Option<String> {
                None
            }
        }
        assert!(Opaque.all_definitions().is_none(), "default is None");
    }
}
