//! Structured diagnostics and a thread-safe sink.
//!
//! Compiler tasks run concurrently, so diagnostics are accumulated in a
//! [`DiagnosticSink`] (internally locked) and sorted deterministically at
//! the end of compilation — the concurrent and sequential compilers must
//! report the *same* errors in the *same* order for the equivalence tests
//! to hold.

use std::fmt;
use std::sync::Mutex;

use crate::source::{FileId, Span};

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational note.
    Note,
    /// A questionable construct; compilation continues.
    Warning,
    /// A language violation; compilation output is suppressed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// One reported problem, tied to a file and span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// File the problem was found in.
    pub file: FileId,
    /// Byte range of the offending construct.
    pub span: Span,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(file: FileId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            file,
            span,
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(file: FileId, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            file,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: file#{} @{}: {}",
            self.severity, self.file.0, self.span, self.message
        )
    }
}

/// Thread-safe accumulator for diagnostics.
///
/// # Examples
///
/// ```
/// use ccm2_support::diag::{Diagnostic, DiagnosticSink};
/// use ccm2_support::source::{FileId, Span};
///
/// let sink = DiagnosticSink::new();
/// sink.report(Diagnostic::error(FileId(0), Span::new(0, 1), "undeclared identifier"));
/// assert!(sink.has_errors());
/// assert_eq!(sink.take().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DiagnosticSink {
    diags: Mutex<Vec<Diagnostic>>,
}

impl DiagnosticSink {
    /// Creates an empty sink.
    pub fn new() -> DiagnosticSink {
        DiagnosticSink::default()
    }

    /// Records one diagnostic.
    pub fn report(&self, d: Diagnostic) {
        self.diags.lock().expect("sink poisoned").push(d);
    }

    /// Returns `true` if at least one [`Severity::Error`] was reported.
    pub fn has_errors(&self) -> bool {
        self.diags
            .lock()
            .expect("sink poisoned")
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics recorded so far.
    pub fn len(&self) -> usize {
        self.diags.lock().expect("sink poisoned").len()
    }

    /// Returns `true` if nothing has been reported.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all diagnostics, sorted deterministically by
    /// (file, span start, span end, severity, message).
    ///
    /// Sorting makes the output independent of task interleaving, which is
    /// what lets tests compare concurrent and sequential compilations.
    pub fn take(&self) -> Vec<Diagnostic> {
        let mut v = std::mem::take(&mut *self.diags.lock().expect("sink poisoned"));
        v.sort_by(|a, b| {
            (a.file, a.span.lo, a.span.hi, a.severity, &a.message)
                .cmp(&(b.file, b.span.lo, b.span.hi, b.severity, &b.message))
        });
        v
    }

    /// Clones the current diagnostics (sorted), leaving the sink intact.
    pub fn snapshot(&self) -> Vec<Diagnostic> {
        let mut v = self.diags.lock().expect("sink poisoned").clone();
        v.sort_by(|a, b| {
            (a.file, a.span.lo, a.span.hi, a.severity, &a.message)
                .cmp(&(b.file, b.span.lo, b.span.hi, b.severity, &b.message))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_and_sorts() {
        let sink = DiagnosticSink::new();
        sink.report(Diagnostic::error(FileId(1), Span::new(5, 6), "b"));
        sink.report(Diagnostic::error(FileId(0), Span::new(9, 10), "a"));
        sink.report(Diagnostic::warning(FileId(0), Span::new(1, 2), "w"));
        let all = sink.take();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].message, "w");
        assert_eq!(all[1].message, "a");
        assert_eq!(all[2].message, "b");
        assert!(sink.is_empty());
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let sink = DiagnosticSink::new();
        sink.report(Diagnostic::warning(FileId(0), Span::new(0, 0), "meh"));
        assert!(!sink.has_errors());
        sink.report(Diagnostic::error(FileId(0), Span::new(0, 0), "bad"));
        assert!(sink.has_errors());
    }

    #[test]
    fn snapshot_preserves_contents() {
        let sink = DiagnosticSink::new();
        sink.report(Diagnostic::error(FileId(0), Span::new(0, 1), "x"));
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let d = Diagnostic::error(FileId(2), Span::new(3, 4), "oops");
        let text = format!("{d}");
        assert!(text.contains("error"));
        assert!(text.contains("oops"));
    }
}
