//! A stable 128-bit content hasher for incremental-compilation
//! fingerprints.
//!
//! `std::hash` is explicitly *not* stable across runs, platforms or
//! compiler versions (SipHash is randomly keyed), so cache keys that live
//! on disk need their own hasher. [`StableHasher`] runs two independent
//! FNV-1a-style 64-bit lanes over the same byte stream and concatenates
//! them into an [`Fp128`]; the fixed offsets/primes make the digest a
//! pure function of the input bytes, forever.
//!
//! This is a *fingerprint*, not a cryptographic hash: collisions are
//! astronomically unlikely for the workload sizes involved, but no
//! adversarial resistance is claimed.
//!
//! # Examples
//!
//! ```
//! use ccm2_support::hash::{Fp128, StableHasher};
//!
//! let mut h = StableHasher::new();
//! h.write(b"PROCEDURE P();");
//! let fp = h.finish();
//! assert_eq!(fp, Fp128::of(b"PROCEDURE P();"));
//! assert_eq!(Fp128::from_hex(&fp.to_hex()), Some(fp));
//! ```

/// A 128-bit stable fingerprint (two independent 64-bit lanes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Fp128 {
    /// First lane.
    pub hi: u64,
    /// Second lane.
    pub lo: u64,
}

impl Fp128 {
    /// Fingerprints a byte slice in one shot.
    pub fn of(bytes: &[u8]) -> Fp128 {
        let mut h = StableHasher::new();
        h.write(bytes);
        h.finish()
    }

    /// Renders the fingerprint as 32 lowercase hex digits (usable as a
    /// file name in the on-disk artifact store).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Folds the fingerprint into a single stable `u64` — the placement
    /// key for consistent-hash rings (`ccm2-fabric`). The rotation mixes
    /// both lanes so the fold keeps their independence instead of
    /// degenerating to one lane.
    pub fn fold64(self) -> u64 {
        self.hi ^ self.lo.rotate_left(32)
    }

    /// Parses the output of [`Fp128::to_hex`].
    pub fn from_hex(s: &str) -> Option<Fp128> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fp128 { hi, lo })
    }
}

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming stable hasher; see the module docs.
#[derive(Clone, Debug)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher in the fixed initial state.
    pub fn new() -> StableHasher {
        StableHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            // Lane B decorrelates from lane A via a rotation, so the two
            // lanes do not collapse into one 64-bit hash in disguise.
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = self.b.rotate_left(29);
        }
    }

    /// Feeds a `u32` in a fixed (little-endian) encoding.
    pub fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    /// Feeds a `u64` in a fixed (little-endian) encoding.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a previously computed fingerprint (for chaining digests).
    pub fn write_fp(&mut self, fp: Fp128) {
        self.write_u64(fp.hi);
        self.write_u64(fp.lo);
    }

    /// Extracts the fingerprint.
    pub fn finish(&self) -> Fp128 {
        // A final mix so short inputs do not leave the lanes close to
        // their initial constants.
        let mut a = self.a;
        let mut b = self.b;
        a ^= b.rotate_left(17);
        b ^= a.rotate_left(43);
        a = a.wrapping_mul(FNV_PRIME);
        b = b.wrapping_mul(FNV_PRIME);
        Fp128 { hi: a, lo: b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned value: if this changes, every on-disk cache in existence
        // silently invalidates — bump the store's FORMAT_VERSION instead.
        let fp = Fp128::of(b"MODULE Main;");
        assert_eq!(fp, Fp128::of(b"MODULE Main;"));
        let again = {
            let mut h = StableHasher::new();
            h.write(b"MODULE ");
            h.write(b"Main;");
            h.finish()
        };
        assert_eq!(fp, again, "chunking must not affect the digest");
    }

    #[test]
    fn lanes_are_independent() {
        let a = Fp128::of(b"x");
        let b = Fp128::of(b"y");
        assert_ne!(a, b);
        assert_ne!(a.hi, a.lo);
    }

    #[test]
    fn length_prefix_separates_strings() {
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fp128::of(b"round trip me");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fp128::from_hex(&hex), Some(fp));
        assert_eq!(Fp128::from_hex("zz"), None);
        assert_eq!(Fp128::from_hex(&hex[..31]), None);
    }

    #[test]
    fn fold64_is_stable_and_lane_sensitive() {
        let fp = Fp128::of(b"ring point");
        assert_eq!(fp.fold64(), fp.fold64(), "pure function");
        let hi_only = Fp128 {
            hi: fp.hi ^ 1,
            lo: fp.lo,
        };
        let lo_only = Fp128 {
            hi: fp.hi,
            lo: fp.lo ^ 1,
        };
        assert_ne!(fp.fold64(), hi_only.fold64());
        assert_ne!(fp.fold64(), lo_only.fold64());
    }

    #[test]
    fn empty_input_has_nontrivial_digest() {
        let fp = StableHasher::new().finish();
        assert_ne!(fp.hi, FNV_OFFSET_A);
        assert_ne!(fp.lo, FNV_OFFSET_B);
    }
}
