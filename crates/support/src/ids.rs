//! Strongly-typed id newtypes used across the compiler.
//!
//! Streams, scopes, tasks and events are all referred to by dense integer
//! ids; giving each family its own newtype prevents a scope id from being
//! used where a stream id was meant (the concurrent compiler passes these
//! between tasks constantly).

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies one separately compilable stream (main module body, a
    /// procedure, or an imported definition module).
    StreamId,
    "stream#"
);
define_id!(
    /// Identifies one scope of declaration (and its symbol table).
    ScopeId,
    "scope#"
);
define_id!(
    /// Identifies one schedulable compiler task.
    TaskId,
    "task#"
);
define_id!(
    /// Identifies one synchronization event.
    EventId,
    "event#"
);

/// A thread-safe monotone id allocator.
///
/// # Examples
///
/// ```
/// use ccm2_support::ids::{IdGen, StreamId};
/// let gen: IdGen<StreamId> = IdGen::new();
/// assert_eq!(gen.next(), StreamId(0));
/// assert_eq!(gen.next(), StreamId(1));
/// ```
#[derive(Debug)]
pub struct IdGen<T> {
    next: AtomicU32,
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Types constructible from a raw `u32`, for use with [`IdGen`].
pub trait FromRaw {
    /// Builds the id from its raw value.
    fn from_raw(raw: u32) -> Self;
}

impl FromRaw for StreamId {
    fn from_raw(raw: u32) -> Self {
        StreamId(raw)
    }
}
impl FromRaw for ScopeId {
    fn from_raw(raw: u32) -> Self {
        ScopeId(raw)
    }
}
impl FromRaw for TaskId {
    fn from_raw(raw: u32) -> Self {
        TaskId(raw)
    }
}
impl FromRaw for EventId {
    fn from_raw(raw: u32) -> Self {
        EventId(raw)
    }
}

impl<T: FromRaw> IdGen<T> {
    /// Creates a generator starting at 0.
    pub fn new() -> IdGen<T> {
        IdGen {
            next: AtomicU32::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocates the next id.
    pub fn next(&self) -> T {
        T::from_raw(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of ids allocated so far.
    pub fn count(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }
}

impl<T: FromRaw> Default for IdGen<T> {
    fn default() -> Self {
        IdGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ids_are_dense_and_typed() {
        let streams: IdGen<StreamId> = IdGen::new();
        let scopes: IdGen<ScopeId> = IdGen::new();
        assert_eq!(streams.next(), StreamId(0));
        assert_eq!(scopes.next(), ScopeId(0));
        assert_eq!(streams.next(), StreamId(1));
        assert_eq!(streams.count(), 2);
    }

    #[test]
    fn display_tags_distinguish_kinds() {
        assert_eq!(format!("{}", TaskId(3)), "task#3");
        assert_eq!(format!("{}", EventId(7)), "event#7");
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let gen: Arc<IdGen<TaskId>> = Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let gen = Arc::clone(&gen);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| gen.next()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TaskId> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("thread panicked"))
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
