//! Thread-safe string interning.
//!
//! The concurrent compiler lexes many streams in parallel; identifiers are
//! interned once and compared by handle everywhere else (symbol-table
//! search, qualified-name resolution, builtin lookup). The interner uses a
//! sharded read-write-locked map so concurrent lexer tasks rarely contend.

use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// A handle to an interned string.
///
/// `Symbol`s are cheap to copy and compare; two symbols from the same
/// [`Interner`] are equal iff the strings they intern are equal.
///
/// # Examples
///
/// ```
/// use ccm2_support::intern::Interner;
/// let i = Interner::new();
/// assert_eq!(i.intern("x"), i.intern("x"));
/// assert_ne!(i.intern("x"), i.intern("y"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol within its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from a raw index previously obtained from
    /// [`Symbol::index`]. Only meaningful with the same interner.
    pub fn from_index(index: usize) -> Symbol {
        Symbol(index as u32)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

const SHARDS: usize = 16;

struct Shard {
    map: HashMap<String, u32>,
}

/// A thread-safe string interner.
///
/// Interning is lock-sharded by string hash; resolution goes through a
/// global append-only vector guarded by a read-write lock.
pub struct Interner {
    shards: Vec<RwLock<Shard>>,
    strings: RwLock<Vec<String>>,
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner(len = {})", self.len())
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner {
            shards: (0..SHARDS)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            strings: RwLock::new(Vec::new()),
        }
    }

    fn shard_of(&self, s: &str) -> usize {
        // FNV-1a over the bytes; cheap and stable across runs so that
        // deterministic tests can rely on symbol numbering given identical
        // interning order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) % SHARDS
    }

    /// Interns `s`, returning its [`Symbol`].
    ///
    /// Idempotent: interning the same string twice yields the same symbol.
    pub fn intern(&self, s: &str) -> Symbol {
        let shard_idx = self.shard_of(s);
        {
            let shard = self.shards[shard_idx].read().expect("interner poisoned");
            if let Some(&id) = shard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut shard = self.shards[shard_idx].write().expect("interner poisoned");
        if let Some(&id) = shard.map.get(s) {
            return Symbol(id);
        }
        let mut strings = self.strings.write().expect("interner poisoned");
        let id = strings.len() as u32;
        strings.push(s.to_owned());
        shard.map.insert(s.to_owned(), id);
        Symbol(id)
    }

    /// Returns the string interned under `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> String {
        let strings = self.strings.read().expect("interner poisoned");
        strings[sym.index()].clone()
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.read().expect("interner poisoned").len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("alpha");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
    }

    #[test]
    fn empty_string_interns() {
        let i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert!(!i.is_empty());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Arc::new(Interner::new());
        let names: Vec<String> = (0..200).map(|k| format!("ident{}", k % 50)).collect();
        let mut handles = Vec::new();
        for t in 0..4 {
            let i = Arc::clone(&i);
            let names = names.clone();
            handles.push(thread::spawn(move || {
                let mut out = Vec::new();
                for (j, n) in names.iter().enumerate() {
                    if j % 4 == t {
                        out.push((n.clone(), i.intern(n)));
                    }
                }
                out
            }));
        }
        let mut seen: std::collections::HashMap<String, Symbol> = Default::default();
        for h in handles {
            for (name, sym) in h.join().expect("thread panicked") {
                if let Some(prev) = seen.insert(name.clone(), sym) {
                    assert_eq!(prev, sym, "symbol for {name} differed across threads");
                }
            }
        }
        assert_eq!(i.len(), 50);
    }

    #[test]
    fn index_round_trip() {
        let i = Interner::new();
        let s = i.intern("roundtrip");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}
