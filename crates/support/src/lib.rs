//! Support utilities shared by every crate in the `ccm2` workspace.
//!
//! This crate is deliberately dependency-free. It provides:
//!
//! * [`intern`] — a thread-safe string interner producing copyable
//!   [`intern::Symbol`] handles, used for every identifier the compiler
//!   touches (concurrent symbol-table search compares interned handles,
//!   never strings);
//! * [`source`] — source text management: [`source::SourceFile`],
//!   byte-offset [`source::Span`]s and line/column resolution;
//! * [`diag`] — structured diagnostics ([`diag::Diagnostic`]) and a
//!   thread-safe [`diag::DiagnosticSink`] so concurrently running compiler
//!   tasks can report errors without interleaving;
//! * [`ids`] — small strongly-typed index newtypes and a typed id
//!   generator used for streams, scopes, tasks and events.
//!
//! # Examples
//!
//! ```
//! use ccm2_support::intern::Interner;
//!
//! let interner = Interner::new();
//! let a = interner.intern("WriteInt");
//! let b = interner.intern("WriteInt");
//! assert_eq!(a, b);
//! assert_eq!(interner.resolve(a), "WriteInt");
//! ```

pub mod defs;
pub mod diag;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod source;
pub mod work;

pub use defs::{DefLibrary, DefProvider};
pub use diag::{Diagnostic, DiagnosticSink, Severity};
pub use hash::{Fp128, StableHasher};
pub use intern::{Interner, Symbol};
pub use source::{LineCol, SourceFile, SourceMap, Span};
pub use work::{NullMeter, Work, WorkMeter};
