//! Source text management: files, spans and line/column resolution.
//!
//! A compilation touches the implementation module plus every directly or
//! indirectly imported definition module; each is a [`SourceFile`] held in a
//! [`SourceMap`]. Spans are byte ranges local to one file and are carried on
//! every token and AST node so diagnostics can point at source.

use std::fmt;
use std::sync::{Arc, RwLock};

/// Identifies a [`SourceFile`] inside a [`SourceMap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FileId(pub u32);

/// A half-open byte range `[lo, hi)` within a single source file.
///
/// # Examples
///
/// ```
/// use ccm2_support::source::Span;
/// let s = Span::new(2, 5);
/// assert_eq!(s.len(), 3);
/// assert!(s.contains(4));
/// assert!(!s.contains(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub lo: u32,
    /// Exclusive end byte offset.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn new(lo: u32, hi: u32) -> Span {
        assert!(hi >= lo, "span end {hi} precedes start {lo}");
        Span { lo, hi }
    }

    /// A zero-width span at `at`.
    pub fn point(at: u32) -> Span {
        Span { lo: at, hi: at }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Returns `true` for zero-width spans.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }

    /// Returns `true` if byte offset `pos` falls inside the span.
    pub fn contains(&self, pos: u32) -> bool {
        self.lo <= pos && pos < self.hi
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(&self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// A one-based line/column position, for human-readable diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineCol {
    /// One-based line number.
    pub line: u32,
    /// One-based column (byte) number.
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One source file: a name (e.g. `Text.def`) plus its full text and a
/// precomputed line-start table.
#[derive(Debug)]
pub struct SourceFile {
    id: FileId,
    name: String,
    text: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(id: FileId, name: String, text: String) -> SourceFile {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            id,
            name,
            text,
            line_starts,
        }
    }

    /// The id this file was registered under.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The file's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The complete text of the file.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The text covered by `span`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds or splits a UTF-8 character.
    pub fn snippet(&self, span: Span) -> &str {
        &self.text[span.lo as usize..span.hi as usize]
    }

    /// Converts a byte offset to a one-based line/column pair.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(exact) => exact,
            Err(next) => next - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Number of lines in the file (a trailing newline does not start a new
    /// counted line unless text follows it).
    pub fn line_count(&self) -> usize {
        if self
            .text
            .as_bytes()
            .last()
            .map(|&b| b == b'\n')
            .unwrap_or(false)
        {
            self.line_starts.len() - 1
        } else {
            self.line_starts.len()
        }
    }
}

/// A thread-safe registry of [`SourceFile`]s.
///
/// The importer task registers definition-module files concurrently with
/// other compilation work, so the map is internally locked and hands out
/// `Arc<SourceFile>`.
#[derive(Debug, Default)]
pub struct SourceMap {
    files: RwLock<Vec<Arc<SourceFile>>>,
}

impl SourceMap {
    /// Creates an empty source map.
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Registers a file and returns it.
    pub fn add(&self, name: impl Into<String>, text: impl Into<String>) -> Arc<SourceFile> {
        let mut files = self.files.write().expect("source map poisoned");
        let id = FileId(files.len() as u32);
        let file = Arc::new(SourceFile::new(id, name.into(), text.into()));
        files.push(Arc::clone(&file));
        file
    }

    /// Looks a file up by id.
    pub fn get(&self, id: FileId) -> Option<Arc<SourceFile>> {
        self.files
            .read()
            .expect("source map poisoned")
            .get(id.0 as usize)
            .cloned()
    }

    /// Finds a file by exact name.
    pub fn find(&self, name: &str) -> Option<Arc<SourceFile>> {
        self.files
            .read()
            .expect("source map poisoned")
            .iter()
            .find(|f| f.name() == name)
            .cloned()
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.read().expect("source map poisoned").len()
    }

    /// Returns `true` if no files are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.contains(3));
        assert!(!s.contains(7));
        assert_eq!(s.to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(Span::point(5).len(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn inverted_span_panics() {
        let _ = Span::new(7, 3);
    }

    #[test]
    fn line_col_resolution() {
        let map = SourceMap::new();
        let f = map.add("m.mod", "MODULE M;\nBEGIN\nEND M.\n");
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(10), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(12), LineCol { line: 2, col: 3 });
        assert_eq!(f.line_col(16), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_count(), 3);
    }

    #[test]
    fn snippet_extracts_text() {
        let map = SourceMap::new();
        let f = map.add("m.mod", "MODULE M;");
        assert_eq!(f.snippet(Span::new(0, 6)), "MODULE");
    }

    #[test]
    fn map_find_and_get() {
        let map = SourceMap::new();
        let a = map.add("A.def", "DEFINITION MODULE A; END A.");
        let b = map.add("B.def", "DEFINITION MODULE B; END B.");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(a.id()).expect("a exists").name(), "A.def");
        assert_eq!(map.find("B.def").expect("b exists").id(), b.id());
        assert!(map.find("C.def").is_none());
    }

    #[test]
    fn empty_file_has_one_line() {
        let map = SourceMap::new();
        let f = map.add("empty.mod", "");
        assert_eq!(f.line_count(), 1);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
    }
}
