//! Work metering — the bridge between real compiler work and virtual time.
//!
//! The evaluation host has one physical CPU, while the paper's experiments
//! sweep 1–8 Firefly processors. To reproduce the speedup curves, the
//! compiler charges every unit of real work it performs (tokens lexed,
//! declarations analyzed, symbol lookups, statements compiled…) to a
//! [`WorkMeter`]. Under the threaded executor the meter just counts; under
//! the virtual-time executor it advances a simulated clock and yields to a
//! scheduler that multiplexes tasks over P virtual processors.

/// Kinds of compiler work, charged in abstract *work units* (1 unit is
/// calibrated to roughly one microsecond of late-1980s CPU in the
/// benchmark harness).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Work {
    /// Lexical analysis (per token).
    Lex,
    /// Stream splitting (per token inspected).
    Split,
    /// Import scanning (per token inspected / per import found).
    Import,
    /// Parsing (per token consumed).
    Parse,
    /// Declaration semantic analysis (per declaration/type node).
    DeclAnalyze,
    /// Symbol-table search (per table probed).
    Lookup,
    /// Statement/expression semantic analysis (per AST node).
    StmtAnalyze,
    /// Code generation (per instruction emitted).
    CodeGen,
    /// Merging per-procedure code units (per unit).
    Merge,
    /// Fixed task startup/teardown overhead.
    TaskOverhead,
    /// Source-level dataflow analysis (per AST node walked by the lints).
    Analyze,
    /// Splicing a cached code unit into the merge (per unit, plus a small
    /// per-instruction decode share) when the incremental cache hits.
    Splice,
}

impl Work {
    /// All work kinds (for reports and cost-model tables).
    pub const ALL: &'static [Work] = &[
        Work::Lex,
        Work::Split,
        Work::Import,
        Work::Parse,
        Work::DeclAnalyze,
        Work::Lookup,
        Work::StmtAnalyze,
        Work::CodeGen,
        Work::Merge,
        Work::TaskOverhead,
        Work::Analyze,
        Work::Splice,
    ];

    /// Number of work kinds (sizes the fixed charge/cost arrays).
    pub const COUNT: usize = Work::ALL.len();
}

/// A sink for work charges.
///
/// Implementations must be cheap and thread-safe: charges are made from
/// hot loops in concurrently running compiler tasks.
pub trait WorkMeter: Send + Sync {
    /// Charges `units` of `work` to the calling task.
    fn charge(&self, work: Work, units: u64);
}

/// A meter that discards all charges (used by the plain threaded compiler
/// when no accounting is wanted).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMeter;

impl WorkMeter for NullMeter {
    fn charge(&self, _work: Work, _units: u64) {}
}

/// A meter that simply accumulates total units per kind — used by the
/// sequential compiler to calibrate "sequential compile time" for Table 1.
#[derive(Debug, Default)]
pub struct CountingMeter {
    counts: [std::sync::atomic::AtomicU64; Work::ALL.len()],
}

impl CountingMeter {
    /// Creates a zeroed meter.
    pub fn new() -> CountingMeter {
        CountingMeter::default()
    }

    /// Units charged so far for `work`.
    pub fn units(&self, work: Work) -> u64 {
        self.counts[work as usize].load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total units across all kinds.
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .map(|c| c.load(std::sync::atomic::Ordering::Relaxed))
            .sum()
    }
}

impl WorkMeter for CountingMeter {
    fn charge(&self, work: Work, units: u64) {
        self.counts[work as usize].fetch_add(units, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_meter_ignores() {
        NullMeter.charge(Work::Lex, 100);
    }

    #[test]
    fn counting_meter_accumulates() {
        let m = CountingMeter::new();
        m.charge(Work::Lex, 5);
        m.charge(Work::Lex, 7);
        m.charge(Work::CodeGen, 1);
        assert_eq!(m.units(Work::Lex), 12);
        assert_eq!(m.units(Work::CodeGen), 1);
        assert_eq!(m.total(), 13);
        assert_eq!(m.units(Work::Merge), 0);
    }

    #[test]
    fn meter_is_object_safe() {
        let m: Box<dyn WorkMeter> = Box::new(CountingMeter::new());
        m.charge(Work::Parse, 3);
    }
}
