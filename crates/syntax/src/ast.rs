//! Abstract syntax for Modula-2+ modules, declarations, statements and
//! expressions.
//!
//! Two aspects are specific to the *concurrent* compiler:
//!
//! * a procedure body may be [`ProcBody::Remote`] — the splitter diverted
//!   its tokens to another stream and left a stub; the parent scope still
//!   sees (and semantically processes) the heading, which is exactly the
//!   §2.4 "alternative 1" information flow;
//! * qualified names `A.b` are parsed as field selection on a name and
//!   disambiguated during semantic analysis, which is where the paper's
//!   *qualified identifier* lookup statistics (Table 2) are collected.

use ccm2_support::ids::StreamId;
use ccm2_support::intern::Symbol;
use ccm2_support::source::Span;

/// An identifier with its source span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ident {
    /// Interned name.
    pub name: Symbol,
    /// Where it appeared.
    pub span: Span,
}

/// One import declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Import {
    /// `IMPORT A, B;` — one entry per module named.
    Whole {
        /// The imported module.
        module: Ident,
    },
    /// `FROM A IMPORT x, y;`
    From {
        /// The module exporting the names.
        module: Ident,
        /// The unqualified names made visible.
        names: Vec<Ident>,
    },
}

impl Import {
    /// The module this import refers to.
    pub fn module(&self) -> Ident {
        match self {
            Import::Whole { module } | Import::From { module, .. } => *module,
        }
    }
}

/// A definition module (`M.def`): the interface between a module and its
/// clients.
#[derive(Clone, PartialEq, Debug)]
pub struct DefinitionModule {
    /// Module name.
    pub name: Ident,
    /// Imports (directly nested imports drive the import tree of §4.4).
    pub imports: Vec<Import>,
    /// `EXPORT QUALIFIED` list (PIM2 compatibility; may be empty).
    pub exports: Vec<Ident>,
    /// Interface declarations (constants, types, variables, procedure
    /// headings).
    pub decls: Vec<Decl>,
}

/// An implementation module (`M.mod`).
#[derive(Clone, PartialEq, Debug)]
pub struct ImplementationModule {
    /// Module name.
    pub name: Ident,
    /// Imports.
    pub imports: Vec<Import>,
    /// Module-level declarations.
    pub decls: Vec<Decl>,
    /// Module body statements (may be empty).
    pub body: Vec<Stmt>,
    /// `true` when the parser recovered from a syntax error inside the
    /// module body: the statements are structurally sound but must not
    /// be fed to code generation (emit an error unit instead).
    pub body_poisoned: bool,
    /// Span of the whole module.
    pub span: Span,
}

/// One declaration.
#[derive(Clone, PartialEq, Debug)]
pub enum Decl {
    /// `CONST name = expr;`
    Const {
        /// Declared name.
        name: Ident,
        /// Constant value expression.
        value: Expr,
    },
    /// `TYPE name = type;` (in definition modules, `TYPE name;` declares an
    /// opaque type, represented with `ty: None`).
    Type {
        /// Declared name.
        name: Ident,
        /// The right-hand side; `None` for opaque types.
        ty: Option<TypeExpr>,
    },
    /// `VAR a, b : T;`
    Var {
        /// Declared names.
        names: Vec<Ident>,
        /// Their common type.
        ty: TypeExpr,
    },
    /// A procedure declaration (full, remote-bodied, or heading-only).
    Procedure(ProcDecl),
}

impl Decl {
    /// The names this declaration introduces, in source order.
    pub fn declared_names(&self) -> Vec<Ident> {
        match self {
            Decl::Const { name, .. } | Decl::Type { name, .. } => vec![*name],
            Decl::Var { names, .. } => names.clone(),
            Decl::Procedure(p) => vec![p.heading.name],
        }
    }
}

/// A procedure heading: name, formal parameters, optional return type.
///
/// This is the §2.4 shared information: the parent scope uses it to check
/// calls, the child scope to access parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcHeading {
    /// Procedure name.
    pub name: Ident,
    /// Formal parameter sections.
    pub params: Vec<FormalParam>,
    /// Return type for function procedures.
    pub ret: Option<TypeExpr>,
    /// Span of the heading.
    pub span: Span,
}

impl ProcHeading {
    /// Total number of formal parameter *names* (a section `a, b: T`
    /// counts as two).
    pub fn param_count(&self) -> usize {
        self.params.iter().map(|p| p.names.len()).sum()
    }
}

/// One formal parameter section `VAR a, b : T`.
#[derive(Clone, PartialEq, Debug)]
pub struct FormalParam {
    /// `true` for `VAR` (reference) parameters.
    pub is_var: bool,
    /// Names in this section.
    pub names: Vec<Ident>,
    /// The section's type.
    pub ty: TypeExpr,
}

/// Where a procedure's body lives.
#[derive(Clone, PartialEq, Debug)]
pub enum ProcBody {
    /// The body is right here (sequential compiler, or a definition parsed
    /// from an unsplit stream).
    Local(Box<ProcLocal>),
    /// The splitter diverted the body to the stream with this id; the
    /// parent sees only the heading (paper §3).
    Remote(StreamId),
    /// Heading only — definition-module procedure declarations.
    HeadingOnly,
}

/// Local declarations and statements of a procedure.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcLocal {
    /// Nested declarations (may contain nested procedures).
    pub decls: Vec<Decl>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// `true` when the parser recovered from a syntax error inside this
    /// body (not in nested procedures): statements are structurally
    /// sound but must not be fed to code generation.
    pub poisoned: bool,
}

/// A full procedure declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ProcDecl {
    /// The heading.
    pub heading: ProcHeading,
    /// The body (local, remote, or absent).
    pub body: ProcBody,
}

/// A type expression with its span.
#[derive(Clone, PartialEq, Debug)]
pub struct TypeExpr {
    /// The structural kind.
    pub kind: TypeExprKind,
    /// Source location.
    pub span: Span,
}

/// Structural kinds of type expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum TypeExprKind {
    /// A (possibly qualified) type name: `T` or `M.T`.
    Named {
        /// Qualifying module, if any.
        module: Option<Ident>,
        /// The type name.
        name: Ident,
    },
    /// `ARRAY index OF elem`.
    Array {
        /// Index type (subrange or ordinal type name).
        index: Box<TypeExpr>,
        /// Element type.
        elem: Box<TypeExpr>,
    },
    /// Open array formal type `ARRAY OF T`.
    OpenArray {
        /// Element type.
        elem: Box<TypeExpr>,
    },
    /// `RECORD fields END`.
    Record {
        /// Field sections.
        fields: Vec<FieldSection>,
    },
    /// `POINTER TO T`.
    Pointer {
        /// Pointee type.
        to: Box<TypeExpr>,
    },
    /// `SET OF T`.
    Set {
        /// Base ordinal type.
        of: Box<TypeExpr>,
    },
    /// `(red, green, blue)`.
    Enumeration {
        /// Enumeration constants in declaration order.
        members: Vec<Ident>,
    },
    /// `[lo .. hi]`.
    Subrange {
        /// Lower bound (constant expression).
        lo: Box<Expr>,
        /// Upper bound (constant expression).
        hi: Box<Expr>,
    },
    /// `PROCEDURE (params) : ret`.
    ProcType {
        /// Parameter types with their VAR-ness.
        params: Vec<(bool, Box<TypeExpr>)>,
        /// Optional return type.
        ret: Option<Box<TypeExpr>>,
    },
}

/// One record field section `a, b : T`.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldSection {
    /// Field names.
    pub names: Vec<Ident>,
    /// Their type.
    pub ty: TypeExpr,
}

/// A statement with its span.
#[derive(Clone, PartialEq, Debug)]
pub struct Stmt {
    /// The statement kind.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds (Modula-2 plus the Modula-2+ `LOCK`/`TRY`/`RAISE`).
#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    /// `lhs := rhs`.
    Assign {
        /// Target designator.
        lhs: Expr,
        /// Source expression.
        rhs: Expr,
    },
    /// A procedure call used as a statement.
    Call {
        /// The call expression (an [`ExprKind::Call`] or a bare
        /// designator for parameterless procedures).
        call: Expr,
    },
    /// `IF … THEN … ELSIF … ELSE … END`.
    If {
        /// `(condition, body)` for the IF and each ELSIF, in order.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The ELSE body, if present.
        else_body: Option<Vec<Stmt>>,
    },
    /// `WHILE cond DO body END`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `REPEAT body UNTIL cond`.
    Repeat {
        /// Loop body.
        body: Vec<Stmt>,
        /// Termination condition.
        until: Expr,
    },
    /// `FOR v := from TO to BY by DO body END`.
    For {
        /// Control variable.
        var: Ident,
        /// Initial value.
        from: Expr,
        /// Final value.
        to: Expr,
        /// Step (constant); `None` means 1.
        by: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `LOOP body END`.
    Loop {
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `EXIT`.
    Exit,
    /// `CASE e OF arms ELSE … END`.
    Case {
        /// Scrutinee.
        scrutinee: Expr,
        /// Case arms.
        arms: Vec<CaseArm>,
        /// ELSE body, if present.
        else_body: Option<Vec<Stmt>>,
    },
    /// `WITH designator DO body END` — opens a field scope (the paper's
    /// Table 2 has a dedicated "WITH" scope row).
    With {
        /// The record designator.
        designator: Expr,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `RETURN [expr]`.
    Return(Option<Expr>),
    /// Modula-2+ `LOCK designator DO body END`.
    LockStmt {
        /// The mutex designator.
        designator: Expr,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Modula-2+ `TRY body EXCEPT handler FINALLY cleanup END`.
    TryStmt {
        /// Protected body.
        body: Vec<Stmt>,
        /// Exception handler, if present.
        except: Option<Vec<Stmt>>,
        /// Finalization body, if present.
        finally: Option<Vec<Stmt>>,
    },
    /// Modula-2+ `RAISE [expr]`.
    Raise(Option<Expr>),
    /// The empty statement (stray `;`).
    Empty,
}

/// One arm of a CASE statement.
#[derive(Clone, PartialEq, Debug)]
pub struct CaseArm {
    /// The labels selecting this arm.
    pub labels: Vec<CaseLabel>,
    /// The arm's body.
    pub body: Vec<Stmt>,
}

/// A case label: a single constant or a constant range.
#[derive(Clone, PartialEq, Debug)]
pub enum CaseLabel {
    /// `c :`
    Single(Expr),
    /// `lo .. hi :`
    Range(Expr, Expr),
}

/// An expression with its span.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    /// The expression kind.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Real literal (IEEE bits).
    RealLit(u64),
    /// Character literal.
    CharLit(u8),
    /// String literal.
    StrLit(Symbol),
    /// A simple name. Resolution (local, outer scope, imported module,
    /// builtin) happens in sema.
    Name(Ident),
    /// `base.field` — either record field selection or a qualified name
    /// `Module.ident`; sema disambiguates.
    Field {
        /// The selected-from expression.
        base: Box<Expr>,
        /// The field or member name.
        field: Ident,
    },
    /// `base[e1, e2]` — array indexing (multi-index sugar for nested
    /// arrays).
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// Index expressions.
        indices: Vec<Expr>,
    },
    /// `base^` — pointer dereference.
    Deref {
        /// The pointer expression.
        base: Box<Expr>,
    },
    /// `callee(args)` — procedure/function call or type conversion.
    Call {
        /// The called designator.
        callee: Box<Expr>,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Set constructor `{1, 3..5}` or `BITSET{…}`.
    SetCons {
        /// Optional set type name.
        of_type: Option<Ident>,
        /// Elements.
        elems: Vec<SetElem>,
    },
}

/// An element of a set constructor.
#[derive(Clone, PartialEq, Debug)]
pub enum SetElem {
    /// A single member.
    Single(Expr),
    /// An inclusive range of members.
    Range(Expr, Expr),
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Identity `+`.
    Pos,
    /// Boolean negation `NOT` / `~`.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+` (numeric add or set union).
    Add,
    /// `-` (numeric subtract or set difference).
    Sub,
    /// `*` (numeric multiply or set intersection).
    Mul,
    /// `/` (real divide or symmetric set difference).
    RealDiv,
    /// `DIV`.
    IntDiv,
    /// `MOD`.
    Modulo,
    /// `AND` / `&` (short-circuit).
    And,
    /// `OR` (short-circuit).
    Or,
    /// `=`.
    Eq,
    /// `#` / `<>`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `IN` (set membership).
    In,
}

impl Expr {
    /// Counts the nodes of this expression tree — used by the virtual-time
    /// cost model (work is charged per node analyzed/generated).
    pub fn node_count(&self) -> usize {
        1 + match &self.kind {
            ExprKind::IntLit(_)
            | ExprKind::RealLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::Name(_) => 0,
            ExprKind::Field { base, .. } | ExprKind::Deref { base } => base.node_count(),
            ExprKind::Index { base, indices } => {
                base.node_count() + indices.iter().map(Expr::node_count).sum::<usize>()
            }
            ExprKind::Call { callee, args } => {
                callee.node_count() + args.iter().map(Expr::node_count).sum::<usize>()
            }
            ExprKind::Unary { operand, .. } => operand.node_count(),
            ExprKind::Binary { lhs, rhs, .. } => lhs.node_count() + rhs.node_count(),
            ExprKind::SetCons { elems, .. } => elems
                .iter()
                .map(|e| match e {
                    SetElem::Single(x) => x.node_count(),
                    SetElem::Range(a, b) => a.node_count() + b.node_count(),
                })
                .sum(),
        }
    }
}

/// Counts statements recursively (used by the workload generator's
/// "long procedure first" classification and by the cost model).
pub fn stmt_count(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| {
            1 + match &s.kind {
                StmtKind::If { arms, else_body } => {
                    arms.iter().map(|(_, b)| stmt_count(b)).sum::<usize>()
                        + else_body.as_deref().map_or(0, stmt_count)
                }
                StmtKind::While { body, .. }
                | StmtKind::Loop { body }
                | StmtKind::For { body, .. }
                | StmtKind::With { body, .. }
                | StmtKind::LockStmt { body, .. } => stmt_count(body),
                StmtKind::Repeat { body, .. } => stmt_count(body),
                StmtKind::Case {
                    arms, else_body, ..
                } => {
                    arms.iter().map(|a| stmt_count(&a.body)).sum::<usize>()
                        + else_body.as_deref().map_or(0, stmt_count)
                }
                StmtKind::TryStmt {
                    body,
                    except,
                    finally,
                } => {
                    stmt_count(body)
                        + except.as_deref().map_or(0, stmt_count)
                        + finally.as_deref().map_or(0, stmt_count)
                }
                _ => 0,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(n: u32) -> Ident {
        Ident {
            name: Symbol::from_index(n as usize),
            span: Span::default(),
        }
    }

    fn name_expr(n: u32) -> Expr {
        Expr {
            kind: ExprKind::Name(ident(n)),
            span: Span::default(),
        }
    }

    #[test]
    fn declared_names_cover_all_decl_kinds() {
        let c = Decl::Const {
            name: ident(1),
            value: name_expr(2),
        };
        assert_eq!(c.declared_names().len(), 1);
        let v = Decl::Var {
            names: vec![ident(1), ident(2)],
            ty: TypeExpr {
                kind: TypeExprKind::Named {
                    module: None,
                    name: ident(3),
                },
                span: Span::default(),
            },
        };
        assert_eq!(v.declared_names().len(), 2);
    }

    #[test]
    fn node_count_counts_subtrees() {
        let e = Expr {
            kind: ExprKind::Binary {
                op: BinOp::Add,
                lhs: Box::new(name_expr(0)),
                rhs: Box::new(Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(name_expr(1)),
                        args: vec![name_expr(2), name_expr(3)],
                    },
                    span: Span::default(),
                }),
            },
            span: Span::default(),
        };
        assert_eq!(e.node_count(), 6);
    }

    #[test]
    fn stmt_count_recurses() {
        let inner = Stmt {
            kind: StmtKind::Exit,
            span: Span::default(),
        };
        let s = Stmt {
            kind: StmtKind::While {
                cond: name_expr(0),
                body: vec![inner.clone(), inner],
            },
            span: Span::default(),
        };
        assert_eq!(stmt_count(&[s]), 3);
    }

    #[test]
    fn import_module_accessor() {
        let w = Import::Whole { module: ident(5) };
        let f = Import::From {
            module: ident(6),
            names: vec![ident(7)],
        };
        assert_eq!(w.module().name, Symbol::from_index(5));
        assert_eq!(f.module().name, Symbol::from_index(6));
    }

    #[test]
    fn heading_param_count_sums_sections() {
        let ty = TypeExpr {
            kind: TypeExprKind::Named {
                module: None,
                name: ident(9),
            },
            span: Span::default(),
        };
        let h = ProcHeading {
            name: ident(0),
            params: vec![
                FormalParam {
                    is_var: false,
                    names: vec![ident(1), ident(2)],
                    ty: ty.clone(),
                },
                FormalParam {
                    is_var: true,
                    names: vec![ident(3)],
                    ty,
                },
            ],
            ret: None,
            span: Span::default(),
        };
        assert_eq!(h.param_count(), 3);
    }
}
