//! The Modula-2+ lexer.
//!
//! The lexer is a plain iterator over [`Token`]s; in the concurrent
//! compiler it runs as a *Lexor task* that fills fixed-size token blocks
//! whose completion events are the barrier events of paper §2.3.3 (the
//! blocking queue itself lives in the `ccm2` core crate — this module is
//! pure tokenization and is shared with the sequential compiler).
//!
//! Lexical syntax implemented (PIM Modula-2 plus Modula-2+ words):
//!
//! * nested `(* ... *)` comments;
//! * identifiers `[A-Za-z][A-Za-z0-9]*`, with reserved words recognized
//!   case-sensitively;
//! * integer literals: decimal `123`, octal `17B`, octal char `101C`
//!   (lexes to a [`TokenKind::CharLit`]), hexadecimal `0FFH`;
//! * real literals `1.5`, `2.0E+3`;
//! * string literals in single or double quotes (single line);
//! * the operator/delimiter set, with `<>` lexing to the same token as `#`.

use ccm2_support::diag::{Diagnostic, DiagnosticSink};
use ccm2_support::intern::Interner;
use ccm2_support::source::{FileId, SourceFile, Span};

use crate::token::{Token, TokenKind};

/// Streaming lexer over a source file's text.
///
/// # Examples
///
/// ```
/// use ccm2_support::{Interner, SourceMap, DiagnosticSink};
/// use ccm2_syntax::lexer::Lexer;
/// use ccm2_syntax::token::TokenKind;
///
/// let interner = Interner::new();
/// let map = SourceMap::new();
/// let file = map.add("x.mod", "VAR x : INTEGER;");
/// let sink = DiagnosticSink::new();
/// let kinds: Vec<TokenKind> = Lexer::new(&file, &interner, &sink).map(|t| t.kind).collect();
/// assert_eq!(kinds[0], TokenKind::Var);
/// assert_eq!(kinds.last(), Some(&TokenKind::Semi));
/// ```
pub struct Lexer<'a> {
    text: &'a [u8],
    pos: usize,
    file: FileId,
    interner: &'a Interner,
    sink: &'a DiagnosticSink,
    done: bool,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `file`'s text.
    pub fn new(
        file: &'a SourceFile,
        interner: &'a Interner,
        sink: &'a DiagnosticSink,
    ) -> Lexer<'a> {
        Lexer {
            text: file.text().as_bytes(),
            pos: 0,
            file: file.id(),
            interner,
            sink,
            done: false,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.text.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'('), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(b'*'), Some(b')')) => {
                                depth -= 1;
                                self.pos += 2;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                self.sink.report(Diagnostic::error(
                                    self.file,
                                    Span::new(start, self.pos as u32),
                                    "unterminated comment",
                                ));
                                break;
                            }
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let word = std::str::from_utf8(&self.text[start..self.pos]).expect("ascii identifier");
        TokenKind::reserved(word).unwrap_or_else(|| TokenKind::Ident(self.interner.intern(word)))
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.pos;
        // Consume digits plus hex letters; decide the base by the suffix.
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || (b'A'..=b'F').contains(&b)) {
            self.pos += 1;
        }
        // Real literal: digits '.' digits [E [sign] digits]. Careful: `..`
        // after a number is a range, not a decimal point.
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.peek() == Some(b'E') {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let s = std::str::from_utf8(&self.text[start..self.pos]).expect("ascii number");
            return match s.parse::<f64>() {
                Ok(v) => TokenKind::Real(v.to_bits()),
                Err(_) => {
                    self.sink.report(Diagnostic::error(
                        self.file,
                        Span::new(start as u32, self.pos as u32),
                        format!("malformed real literal `{s}`"),
                    ));
                    TokenKind::Real(0f64.to_bits())
                }
            };
        }
        let body = std::str::from_utf8(&self.text[start..self.pos]).expect("ascii number");
        // Suffix determines the base: `H` = hex; otherwise a trailing `B`
        // (octal) or `C` (octal char) was already consumed by the digit
        // scan above, since B and C are valid hex letters.
        let (base, digits, is_char) = if self.peek() == Some(b'H') {
            self.pos += 1;
            (16, body, false)
        } else if let Some(digits) = body.strip_suffix('B') {
            (8, digits, false)
        } else if let Some(digits) = body.strip_suffix('C') {
            (8, digits, true)
        } else {
            (10, body, false)
        };
        match i64::from_str_radix(digits, base) {
            Ok(v) if is_char => {
                if (0..=255).contains(&v) {
                    TokenKind::CharLit(v as u8)
                } else {
                    self.sink.report(Diagnostic::error(
                        self.file,
                        Span::new(start as u32, self.pos as u32),
                        format!("character code {v} out of range"),
                    ));
                    TokenKind::CharLit(0)
                }
            }
            Ok(v) => TokenKind::Int(v),
            Err(_) => {
                self.sink.report(Diagnostic::error(
                    self.file,
                    Span::new(start as u32, self.pos as u32),
                    format!("malformed integer literal `{digits}` (base {base})"),
                ));
                TokenKind::Int(0)
            }
        }
    }

    fn lex_string(&mut self, quote: u8) -> TokenKind {
        let start = self.pos;
        self.pos += 1; // opening quote
        let body_start = self.pos;
        loop {
            match self.peek() {
                Some(b) if b == quote => break,
                Some(b'\n') | None => {
                    self.sink.report(Diagnostic::error(
                        self.file,
                        Span::new(start as u32, self.pos as u32),
                        "unterminated string literal",
                    ));
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        let body = std::str::from_utf8(&self.text[body_start..self.pos]).unwrap_or("");
        if self.peek() == Some(quote) {
            self.pos += 1;
        }
        // A single-character string in quotes is a CHAR literal in Modula-2
        // when used in char context; we keep it as Str and let sema adapt,
        // except for the canonical single-char case which becomes CharLit.
        if body.len() == 1 {
            TokenKind::CharLit(body.as_bytes()[0])
        } else {
            TokenKind::Str(self.interner.intern(body))
        }
    }
}

impl<'a> Iterator for Lexer<'a> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        if self.done {
            return None;
        }
        self.skip_trivia();
        let start = self.pos as u32;
        let Some(b) = self.peek() else {
            self.done = true;
            return None;
        };
        use TokenKind::*;
        let kind = match b {
            b'A'..=b'Z' | b'a'..=b'z' => self.lex_ident(),
            b'0'..=b'9' => self.lex_number(),
            b'\'' | b'"' => self.lex_string(b),
            b'+' => {
                self.pos += 1;
                Plus
            }
            b'-' => {
                self.pos += 1;
                Minus
            }
            b'*' => {
                self.pos += 1;
                Star
            }
            b'/' => {
                self.pos += 1;
                Slash
            }
            b'&' => {
                self.pos += 1;
                Amp
            }
            b'=' => {
                self.pos += 1;
                Eq
            }
            b'#' => {
                self.pos += 1;
                Neq
            }
            b'~' => {
                self.pos += 1;
                Tilde
            }
            b'^' => {
                self.pos += 1;
                Caret
            }
            b',' => {
                self.pos += 1;
                Comma
            }
            b';' => {
                self.pos += 1;
                Semi
            }
            b'|' => {
                self.pos += 1;
                Bar
            }
            b'(' => {
                self.pos += 1;
                LParen
            }
            b')' => {
                self.pos += 1;
                RParen
            }
            b'[' => {
                self.pos += 1;
                LBracket
            }
            b']' => {
                self.pos += 1;
                RBracket
            }
            b'{' => {
                self.pos += 1;
                LBrace
            }
            b'}' => {
                self.pos += 1;
                RBrace
            }
            b':' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Assign
                } else {
                    Colon
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Le
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Neq
                    }
                    _ => Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ge
                } else {
                    Gt
                }
            }
            b'.' => {
                self.pos += 1;
                if self.peek() == Some(b'.') {
                    self.pos += 1;
                    DotDot
                } else {
                    Dot
                }
            }
            other => {
                self.bump();
                self.sink.report(Diagnostic::error(
                    self.file,
                    Span::new(start, self.pos as u32),
                    format!("unexpected character `{}`", other as char),
                ));
                return self.next();
            }
        };
        Some(Token::new(
            kind,
            Span::new(start, self.pos as u32),
            self.file,
        ))
    }
}

/// Lexes an entire file into a vector of tokens (no trailing `Eof` token —
/// the parser treats slice exhaustion as end of input).
pub fn lex_file(file: &SourceFile, interner: &Interner, sink: &DiagnosticSink) -> Vec<Token> {
    Lexer::new(file, interner, sink).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_support::source::SourceMap;

    fn kinds(src: &str) -> (Vec<TokenKind>, DiagnosticSink) {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("t.mod", src);
        let sink = DiagnosticSink::new();
        let toks = lex_file(&file, &interner, &sink);
        (toks.into_iter().map(|t| t.kind).collect(), sink)
    }

    #[test]
    fn reserved_vs_identifier() {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("t.mod", "MODULE Module modulE");
        let sink = DiagnosticSink::new();
        let toks = lex_file(&file, &interner, &sink);
        assert_eq!(toks[0].kind, TokenKind::Module);
        assert!(matches!(toks[1].kind, TokenKind::Ident(_)));
        assert!(matches!(toks[2].kind, TokenKind::Ident(_)));
        assert!(sink.is_empty());
    }

    #[test]
    fn integer_bases() {
        let (k, sink) = kinds("10 17B 0FFH 101C");
        assert_eq!(
            k,
            vec![
                TokenKind::Int(10),
                TokenKind::Int(0o17),
                TokenKind::Int(0xFF),
                TokenKind::CharLit(0o101),
            ]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn real_literals() {
        let (k, sink) = kinds("1.5 2.0E+3 7.25E-1");
        assert_eq!(
            k,
            vec![
                TokenKind::Real(1.5f64.to_bits()),
                TokenKind::Real(2000.0f64.to_bits()),
                TokenKind::Real(0.725f64.to_bits()),
            ]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn range_after_number_is_not_a_real() {
        let (k, _) = kinds("1..10");
        assert_eq!(
            k,
            vec![TokenKind::Int(1), TokenKind::DotDot, TokenKind::Int(10)]
        );
    }

    #[test]
    fn strings_and_chars() {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("t.mod", "\"hello\" 'x' ''");
        let sink = DiagnosticSink::new();
        let toks = lex_file(&file, &interner, &sink);
        match toks[0].kind {
            TokenKind::Str(s) => assert_eq!(interner.resolve(s), "hello"),
            other => panic!("expected string, got {other:?}"),
        }
        assert_eq!(toks[1].kind, TokenKind::CharLit(b'x'));
        assert!(
            matches!(toks[2].kind, TokenKind::Str(_)),
            "empty string stays Str"
        );
    }

    #[test]
    fn two_char_operators() {
        let (k, _) = kinds(":= <= >= <> .. # < >");
        assert_eq!(
            k,
            vec![
                TokenKind::Assign,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Neq,
                TokenKind::DotDot,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Gt,
            ]
        );
    }

    #[test]
    fn nested_comments_skipped() {
        let (k, sink) = kinds("BEGIN (* outer (* inner *) still outer *) END");
        assert_eq!(k, vec![TokenKind::Begin, TokenKind::End]);
        assert!(sink.is_empty());
    }

    #[test]
    fn unterminated_comment_reports() {
        let (_, sink) = kinds("(* never closed");
        assert!(sink.has_errors());
    }

    #[test]
    fn unterminated_string_reports() {
        let (_, sink) = kinds("\"oops\nVAR");
        assert!(sink.has_errors());
    }

    #[test]
    fn unexpected_character_reports_and_continues() {
        let (k, sink) = kinds("VAR ? x");
        assert!(sink.has_errors());
        assert_eq!(k.len(), 2, "lexing continues past the bad character");
        assert_eq!(k[0], TokenKind::Var);
    }

    #[test]
    fn spans_tile_the_nontrivia_input() {
        let interner = Interner::new();
        let map = SourceMap::new();
        let src = "IF a1 >= 10 THEN x := 'c' END;";
        let file = map.add("t.mod", src);
        let sink = DiagnosticSink::new();
        let toks = lex_file(&file, &interner, &sink);
        for w in toks.windows(2) {
            assert!(w[0].span.hi <= w[1].span.lo, "tokens out of order");
        }
        for t in &toks {
            assert!(!t.span.is_empty());
            assert!(t.span.hi as usize <= src.len());
        }
    }

    #[test]
    fn empty_input_lexes_to_nothing() {
        let (k, sink) = kinds("");
        assert!(k.is_empty());
        assert!(sink.is_empty());
    }
}
