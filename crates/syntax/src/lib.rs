//! Modula-2+ frontend: tokens, lexer and recursive-descent parser.
//!
//! The concurrent compiler of Wortman & Junkin (PLDI 1992) relies on one
//! property of the language surface: *reserved words determine lexical
//! structure* (paper §1). That property is what allows the source program
//! to be partitioned into separately compilable streams during lexical
//! analysis, before any parsing happens. This crate provides:
//!
//! * [`token`] — the token model, including the reserved-word table and the
//!   special [`token::TokenKind::ProcStub`] token that the splitter leaves
//!   in a parent stream where a procedure body was excised;
//! * [`lexer`] — a block-emitting lexer ([`lexer::Lexer`]): tokens are
//!   produced in fixed-size blocks, matching the paper's lexical-token
//!   queue whose per-block events are the *barrier events* of §2.3.3;
//! * [`ast`] — the abstract syntax tree for definition modules,
//!   implementation modules, declarations, statements and expressions;
//! * [`parser`] — a recursive-descent parser over token slices. The same
//!   parser serves the sequential compiler (whole file) and the concurrent
//!   compiler (per-stream token sequences with stubs).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_support::{Interner, SourceMap, DiagnosticSink};
//! use ccm2_syntax::lexer::lex_file;
//! use ccm2_syntax::parser::parse_implementation;
//!
//! let interner = Arc::new(Interner::new());
//! let map = SourceMap::new();
//! let file = map.add("M.mod", "IMPLEMENTATION MODULE M; BEGIN END M.");
//! let sink = DiagnosticSink::new();
//! let tokens = lex_file(&file, &interner, &sink);
//! let module = parse_implementation(&tokens, &interner, &sink).expect("parses");
//! assert_eq!(interner.resolve(module.name.name), "M");
//! assert!(!sink.has_errors());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use lexer::{lex_file, Lexer};
pub use token::{Token, TokenKind};
