//! Recursive-descent parser for Modula-2+.
//!
//! The parser operates on *token slices*, not text, because in the
//! concurrent compiler the tokens of one stream arrive from the splitter
//! (main module, procedures) or from a dedicated Lexor task (definition
//! modules). Three entry points correspond to the three stream kinds of
//! paper §2.1:
//!
//! * [`parse_definition`] — a definition-module stream;
//! * [`parse_implementation`] — the main-module stream (which, in the
//!   concurrent compiler, contains [`TokenKind::ProcStub`] markers where
//!   procedure bodies were diverted);
//! * [`parse_procedure`] — one procedure stream.
//!
//! Grammar follows PIM Modula-2 with the Modula-2+ statement extensions
//! (`LOCK`, `TRY`/`EXCEPT`/`FINALLY`, `RAISE`). Local (nested) modules and
//! `FORWARD` declarations are not supported; the paper likewise ignores
//! rare forms (§3, footnote 3).

use ccm2_support::diag::{Diagnostic, DiagnosticSink};
use ccm2_support::intern::Interner;
use ccm2_support::source::{FileId, Span};

use crate::ast::*;
use crate::token::{Token, TokenKind};

/// A source of tokens addressed by index.
///
/// The sequential compiler parses plain slices; the concurrent compiler
/// parses *live streams*: its implementation blocks on the token-block
/// barrier events of paper §2.3.3 until the requested token has been
/// produced, which is how parsing overlaps lexical analysis and
/// splitting.
pub trait TokenSource {
    /// Returns the `i`-th token, or `None` once the stream has ended
    /// before `i`. May block (stream implementations).
    fn get(&self, i: usize) -> Option<Token>;
}

impl TokenSource for &[Token] {
    fn get(&self, i: usize) -> Option<Token> {
        <[Token]>::get(self, i).copied()
    }
}

impl TokenSource for Vec<Token> {
    fn get(&self, i: usize) -> Option<Token> {
        self.as_slice().get(i).copied()
    }
}

/// Parses a definition module from its complete token stream.
///
/// Returns `None` (after reporting diagnostics) if the module header is
/// unusable; partial parses with recoverable errors still return a module.
pub fn parse_definition(
    tokens: &[Token],
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<DefinitionModule> {
    Parser::new(&tokens, interner, sink).definition_module()
}

/// Streaming variant of [`parse_definition`] over any [`TokenSource`].
pub fn parse_definition_from(
    source: &dyn TokenSource,
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<DefinitionModule> {
    Parser::new(source, interner, sink).definition_module()
}

/// Parses an implementation (or program) module from a token stream.
///
/// The stream may contain [`TokenKind::ProcStub`] markers left by the
/// splitter; the resulting [`ProcDecl`]s then have [`ProcBody::Remote`]
/// bodies.
pub fn parse_implementation(
    tokens: &[Token],
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<ImplementationModule> {
    Parser::new(&tokens, interner, sink).implementation_module()
}

/// Streaming variant of [`parse_implementation`] over any [`TokenSource`].
pub fn parse_implementation_from(
    source: &dyn TokenSource,
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<ImplementationModule> {
    Parser::new(source, interner, sink).implementation_module()
}

/// Parses one full procedure declaration (`PROCEDURE … END name ;`), the
/// content of a procedure stream.
pub fn parse_procedure(
    tokens: &[Token],
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<ProcDecl> {
    let mut p = Parser::new(&tokens, interner, sink);
    p.expect(TokenKind::Procedure)?;
    p.procedure_rest()
}

/// Streaming variant of [`parse_procedure`] over any [`TokenSource`].
pub fn parse_procedure_from(
    source: &dyn TokenSource,
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<ProcDecl> {
    let mut p = Parser::new(source, interner, sink);
    p.expect(TokenKind::Procedure)?;
    p.procedure_rest()
}

/// Parses a standalone (constant) expression — used by constant-evaluation
/// tests and tools.
pub fn parse_const_expr(
    tokens: &[Token],
    interner: &Interner,
    sink: &DiagnosticSink,
) -> Option<Expr> {
    Parser::new(&tokens, interner, sink).expression()
}

struct Parser<'a> {
    tokens: &'a dyn TokenSource,
    pos: usize,
    interner: &'a Interner,
    sink: &'a DiagnosticSink,
    file: FileId,
    file_known: bool,
    /// Syntax errors reported through [`Parser::error`]/[`Parser::expect`].
    /// Deltas around a body region decide whether that unit is *poisoned*
    /// — structurally parsed but not trustworthy for code generation.
    errors: std::cell::Cell<u32>,
}

impl<'a> Parser<'a> {
    fn new(
        tokens: &'a dyn TokenSource,
        interner: &'a Interner,
        sink: &'a DiagnosticSink,
    ) -> Parser<'a> {
        Parser {
            tokens,
            pos: 0,
            interner,
            sink,
            file: FileId(0),
            file_known: false,
            errors: std::cell::Cell::new(0),
        }
    }

    // ----- primitives ---------------------------------------------------

    fn observe_file(&mut self, t: Option<Token>) {
        if !self.file_known {
            if let Some(t) = t {
                self.file = t.file;
                self.file_known = true;
            }
        }
    }

    fn peek(&mut self) -> TokenKind {
        let t = self.tokens.get(self.pos);
        self.observe_file(t);
        t.map(|t| t.kind).unwrap_or(TokenKind::Eof)
    }

    fn peek2(&mut self) -> TokenKind {
        let t = self.tokens.get(self.pos + 1);
        t.map(|t| t.kind).unwrap_or(TokenKind::Eof)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| {
                self.tokens
                    .get(self.pos.saturating_sub(1))
                    .map(|t| Span::point(t.span.hi))
                    .unwrap_or_default()
            })
    }

    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.saturating_sub(1))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.peek();
        if k != TokenKind::Eof {
            self.pos += 1;
        }
        k
    }

    fn at(&mut self, kind: TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&self, msg: impl Into<String>) {
        self.errors.set(self.errors.get() + 1);
        self.sink
            .report(Diagnostic::error(self.file, self.span(), msg));
    }

    fn expect(&mut self, kind: TokenKind) -> Option<()> {
        if self.eat(kind) {
            Some(())
        } else {
            let found = self.peek();
            self.error(format!("expected `{kind}`, found `{found}`"));
            None
        }
    }

    fn ident(&mut self) -> Option<Ident> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let span = self.span();
                self.bump();
                Some(Ident { name, span })
            }
            other => {
                self.error(format!("expected identifier, found `{other}`"));
                None
            }
        }
    }

    fn ident_list(&mut self) -> Vec<Ident> {
        let mut ids = Vec::new();
        while let Some(id) = self.ident() {
            ids.push(id);
            if !self.eat(TokenKind::Comma) {
                break;
            }
        }
        ids
    }

    /// Skips tokens until one of `sync` (or Eof), for error recovery.
    fn synchronize(&mut self, sync: &[TokenKind]) {
        while !self.at(TokenKind::Eof) && !sync.contains(&self.peek()) {
            self.bump();
        }
    }

    // ----- modules -------------------------------------------------------

    fn imports(&mut self) -> Vec<Import> {
        let mut imports = Vec::new();
        loop {
            if self.eat(TokenKind::From) {
                let Some(module) = self.ident() else {
                    self.synchronize(&[TokenKind::Semi]);
                    self.eat(TokenKind::Semi);
                    continue;
                };
                if self.expect(TokenKind::Import).is_none() {
                    self.synchronize(&[TokenKind::Semi]);
                    self.eat(TokenKind::Semi);
                    continue;
                }
                let names = self.ident_list();
                self.expect(TokenKind::Semi);
                imports.push(Import::From { module, names });
            } else if self.eat(TokenKind::Import) {
                let modules = self.ident_list();
                self.expect(TokenKind::Semi);
                for module in modules {
                    imports.push(Import::Whole { module });
                }
            } else {
                break;
            }
        }
        imports
    }

    fn definition_module(&mut self) -> Option<DefinitionModule> {
        self.expect(TokenKind::Definition)?;
        self.expect(TokenKind::Module)?;
        let name = self.ident()?;
        self.expect(TokenKind::Semi)?;
        let imports = self.imports();
        let mut exports = Vec::new();
        if self.eat(TokenKind::Export) {
            self.eat(TokenKind::Qualified);
            exports = self.ident_list();
            self.expect(TokenKind::Semi);
        }
        let mut decls = Vec::new();
        while !matches!(self.peek(), TokenKind::End | TokenKind::Eof) {
            let before = self.pos;
            self.declaration(true, &mut decls);
            if self.pos == before {
                let found = self.peek();
                self.error(format!("unexpected `{found}` in definition module"));
                self.bump();
            }
        }
        self.expect(TokenKind::End);
        if let Some(end_name) = self.ident() {
            if end_name.name != name.name {
                self.sink.report(Diagnostic::error(
                    self.file,
                    end_name.span,
                    format!(
                        "module ends with `{}` but is named `{}`",
                        self.interner.resolve(end_name.name),
                        self.interner.resolve(name.name)
                    ),
                ));
            }
        }
        self.expect(TokenKind::Dot);
        Some(DefinitionModule {
            name,
            imports,
            exports,
            decls,
        })
    }

    fn implementation_module(&mut self) -> Option<ImplementationModule> {
        let lo = self.span();
        self.eat(TokenKind::Implementation);
        self.expect(TokenKind::Module)?;
        let name = self.ident()?;
        // Optional module priority `[const]` — parsed and discarded.
        if self.eat(TokenKind::LBracket) {
            let _ = self.expression();
            self.expect(TokenKind::RBracket);
        }
        self.expect(TokenKind::Semi)?;
        let imports = self.imports();
        let mut decls = Vec::new();
        self.declarations(&mut decls);
        let mut body = Vec::new();
        let errs_before = self.errors.get();
        if self.eat(TokenKind::Begin) {
            body = self.statement_sequence(&[TokenKind::End]);
        }
        let body_poisoned = self.errors.get() > errs_before;
        self.expect(TokenKind::End);
        if let Some(end_name) = self.ident() {
            if end_name.name != name.name {
                self.sink.report(Diagnostic::error(
                    self.file,
                    end_name.span,
                    format!(
                        "module ends with `{}` but is named `{}`",
                        self.interner.resolve(end_name.name),
                        self.interner.resolve(name.name)
                    ),
                ));
            }
        }
        self.expect(TokenKind::Dot);
        let span = lo.to(self.prev_span());
        Some(ImplementationModule {
            name,
            imports,
            decls,
            body,
            body_poisoned,
            span,
        })
    }

    // ----- declarations --------------------------------------------------

    fn declarations(&mut self, out: &mut Vec<Decl>) {
        loop {
            let before = self.pos;
            self.declaration(false, out);
            if self.pos == before {
                break;
            }
        }
    }

    /// Parses one declaration group (CONST/TYPE/VAR section or PROCEDURE).
    /// `heading_only` is true inside definition modules.
    fn declaration(&mut self, heading_only: bool, out: &mut Vec<Decl>) {
        match self.peek() {
            TokenKind::Const => {
                self.bump();
                while let TokenKind::Ident(_) = self.peek() {
                    let Some(name) = self.ident() else { break };
                    if self.expect(TokenKind::Eq).is_none() {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                        continue;
                    }
                    let Some(value) = self.expression() else {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                        continue;
                    };
                    self.expect(TokenKind::Semi);
                    out.push(Decl::Const { name, value });
                }
            }
            TokenKind::Type => {
                self.bump();
                while let TokenKind::Ident(_) = self.peek() {
                    let Some(name) = self.ident() else { break };
                    if self.eat(TokenKind::Semi) {
                        // Opaque type declaration `TYPE T;`
                        out.push(Decl::Type { name, ty: None });
                        continue;
                    }
                    if self.expect(TokenKind::Eq).is_none() {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                        continue;
                    }
                    let ty = self.type_expr();
                    self.expect(TokenKind::Semi);
                    out.push(Decl::Type { name, ty });
                }
            }
            TokenKind::Var => {
                self.bump();
                while let TokenKind::Ident(_) = self.peek() {
                    let names = self.ident_list();
                    if self.expect(TokenKind::Colon).is_none() {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                        continue;
                    }
                    let Some(ty) = self.type_expr() else {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                        continue;
                    };
                    self.expect(TokenKind::Semi);
                    out.push(Decl::Var { names, ty });
                }
            }
            TokenKind::Procedure => {
                self.bump();
                if heading_only {
                    if let Some(heading) = self.proc_heading() {
                        self.expect(TokenKind::Semi);
                        out.push(Decl::Procedure(ProcDecl {
                            heading,
                            body: ProcBody::HeadingOnly,
                        }));
                    } else {
                        self.synchronize(&[TokenKind::Semi]);
                        self.eat(TokenKind::Semi);
                    }
                } else if let Some(proc) = self.procedure_rest() {
                    out.push(Decl::Procedure(proc));
                } else {
                    self.synchronize(&[
                        TokenKind::Semi,
                        TokenKind::Const,
                        TokenKind::Type,
                        TokenKind::Var,
                        TokenKind::Procedure,
                        TokenKind::Begin,
                        TokenKind::End,
                    ]);
                    self.eat(TokenKind::Semi);
                }
            }
            _ => {}
        }
    }

    fn proc_heading(&mut self) -> Option<ProcHeading> {
        let lo = self.prev_span();
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(TokenKind::LParen) {
            if !self.at(TokenKind::RParen) {
                loop {
                    let is_var = self.eat(TokenKind::Var);
                    let names = self.ident_list();
                    self.expect(TokenKind::Colon)?;
                    let ty = self.type_expr()?;
                    params.push(FormalParam { is_var, names, ty });
                    if !self.eat(TokenKind::Semi) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let ret = if self.eat(TokenKind::Colon) {
            Some(self.type_expr()?)
        } else {
            None
        };
        let span = lo.to(self.prev_span());
        Some(ProcHeading {
            name,
            params,
            ret,
            span,
        })
    }

    /// Parses everything after the `PROCEDURE` reserved word: heading,
    /// then a local body, a splitter stub, or (heading-only) nothing.
    fn procedure_rest(&mut self) -> Option<ProcDecl> {
        let heading = self.proc_heading()?;
        self.expect(TokenKind::Semi)?;
        // The splitter may have replaced the body with a stub.
        if let TokenKind::ProcStub(stream) = self.peek() {
            self.bump();
            self.expect(TokenKind::Semi);
            return Some(ProcDecl {
                heading,
                body: ProcBody::Remote(stream),
            });
        }
        let mut decls = Vec::new();
        self.declarations(&mut decls);
        let mut body = Vec::new();
        let errs_before = self.errors.get();
        if self.eat(TokenKind::Begin) {
            body = self.statement_sequence(&[TokenKind::End]);
        }
        let poisoned = self.errors.get() > errs_before;
        self.expect(TokenKind::End)?;
        if let Some(end_name) = self.ident() {
            if end_name.name != heading.name.name {
                self.sink.report(Diagnostic::error(
                    self.file,
                    end_name.span,
                    format!(
                        "procedure ends with `{}` but is named `{}`",
                        self.interner.resolve(end_name.name),
                        self.interner.resolve(heading.name.name)
                    ),
                ));
            }
        }
        self.expect(TokenKind::Semi);
        Some(ProcDecl {
            heading,
            body: ProcBody::Local(Box::new(ProcLocal {
                decls,
                body,
                poisoned,
            })),
        })
    }

    // ----- types ----------------------------------------------------------

    fn type_expr(&mut self) -> Option<TypeExpr> {
        let lo = self.span();
        let kind = match self.peek() {
            TokenKind::Ident(_) => {
                let first = self.ident()?;
                if self.at(TokenKind::Dot) && matches!(self.peek2(), TokenKind::Ident(_)) {
                    self.bump();
                    let name = self.ident()?;
                    TypeExprKind::Named {
                        module: Some(first),
                        name,
                    }
                } else {
                    TypeExprKind::Named {
                        module: None,
                        name: first,
                    }
                }
            }
            TokenKind::Array => {
                self.bump();
                if self.eat(TokenKind::Of) {
                    let elem = Box::new(self.type_expr()?);
                    TypeExprKind::OpenArray { elem }
                } else {
                    let index = Box::new(self.type_expr()?);
                    // Multi-dimensional sugar: ARRAY a, b OF t.
                    if self.eat(TokenKind::Comma) {
                        let rest_lo = self.span();
                        let mut indices = vec![self.type_expr()?];
                        while self.eat(TokenKind::Comma) {
                            indices.push(self.type_expr()?);
                        }
                        self.expect(TokenKind::Of)?;
                        let mut elem = self.type_expr()?;
                        while let Some(ix) = indices.pop() {
                            elem = TypeExpr {
                                span: rest_lo.to(elem.span),
                                kind: TypeExprKind::Array {
                                    index: Box::new(ix),
                                    elem: Box::new(elem),
                                },
                            };
                        }
                        TypeExprKind::Array {
                            index,
                            elem: Box::new(elem),
                        }
                    } else {
                        self.expect(TokenKind::Of)?;
                        let elem = Box::new(self.type_expr()?);
                        TypeExprKind::Array { index, elem }
                    }
                }
            }
            TokenKind::Record => {
                self.bump();
                let mut fields = Vec::new();
                while let TokenKind::Ident(_) = self.peek() {
                    let names = self.ident_list();
                    self.expect(TokenKind::Colon)?;
                    let ty = self.type_expr()?;
                    fields.push(FieldSection { names, ty });
                    if !self.eat(TokenKind::Semi) {
                        break;
                    }
                }
                self.expect(TokenKind::End)?;
                TypeExprKind::Record { fields }
            }
            TokenKind::Pointer => {
                self.bump();
                self.expect(TokenKind::To)?;
                let to = Box::new(self.type_expr()?);
                TypeExprKind::Pointer { to }
            }
            TokenKind::Set => {
                self.bump();
                self.expect(TokenKind::Of)?;
                let of = Box::new(self.type_expr()?);
                TypeExprKind::Set { of }
            }
            TokenKind::LParen => {
                self.bump();
                let members = self.ident_list();
                self.expect(TokenKind::RParen)?;
                TypeExprKind::Enumeration { members }
            }
            TokenKind::LBracket => {
                self.bump();
                let lo_e = Box::new(self.expression()?);
                self.expect(TokenKind::DotDot)?;
                let hi_e = Box::new(self.expression()?);
                self.expect(TokenKind::RBracket)?;
                TypeExprKind::Subrange { lo: lo_e, hi: hi_e }
            }
            TokenKind::Procedure => {
                self.bump();
                let mut params = Vec::new();
                if self.eat(TokenKind::LParen) {
                    if !self.at(TokenKind::RParen) {
                        loop {
                            let is_var = self.eat(TokenKind::Var);
                            let ty = Box::new(self.type_expr()?);
                            params.push((is_var, ty));
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let ret = if self.eat(TokenKind::Colon) {
                    Some(Box::new(self.type_expr()?))
                } else {
                    None
                };
                TypeExprKind::ProcType { params, ret }
            }
            other => {
                self.error(format!("expected type, found `{other}`"));
                return None;
            }
        };
        Some(TypeExpr {
            kind,
            span: lo.to(self.prev_span()),
        })
    }

    // ----- statements -----------------------------------------------------

    /// Parses a statement sequence; stops (without consuming) at any of
    /// `terminators` or Eof.
    fn statement_sequence(&mut self, terminators: &[TokenKind]) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        loop {
            if self.at(TokenKind::Eof) || terminators.contains(&self.peek()) {
                break;
            }
            if self.eat(TokenKind::Semi) {
                continue; // empty statement
            }
            let before = self.pos;
            match self.statement() {
                Some(s) => {
                    stmts.push(s);
                    if !self.eat(TokenKind::Semi) {
                        if self.at(TokenKind::Eof) || terminators.contains(&self.peek()) {
                            break;
                        }
                        // Missing semicolon: report and continue (recovery).
                        let found = self.peek();
                        self.error(format!("expected `;`, found `{found}`"));
                    }
                }
                None => {
                    if self.pos == before {
                        let found = self.peek();
                        self.error(format!("unexpected `{found}` in statement sequence"));
                        self.bump();
                    }
                    // Skip to the next statement boundary: the failure is
                    // already reported; resuming at the next `;` (or this
                    // sequence's terminator) keeps one broken statement
                    // from cascading into errors for its siblings.
                    let mut sync = vec![TokenKind::Semi];
                    sync.extend_from_slice(terminators);
                    self.synchronize(&sync);
                    self.eat(TokenKind::Semi);
                }
            }
        }
        stmts
    }

    fn statement(&mut self) -> Option<Stmt> {
        let lo = self.span();
        let kind = match self.peek() {
            TokenKind::Ident(_) => {
                let target = self.designator()?;
                if self.eat(TokenKind::Assign) {
                    let rhs = self.expression()?;
                    StmtKind::Assign { lhs: target, rhs }
                } else {
                    StmtKind::Call { call: target }
                }
            }
            TokenKind::If => {
                self.bump();
                let mut arms = Vec::new();
                let cond = self.expression()?;
                self.expect(TokenKind::Then)?;
                let body =
                    self.statement_sequence(&[TokenKind::Elsif, TokenKind::Else, TokenKind::End]);
                arms.push((cond, body));
                while self.eat(TokenKind::Elsif) {
                    let c = self.expression()?;
                    self.expect(TokenKind::Then)?;
                    let b = self.statement_sequence(&[
                        TokenKind::Elsif,
                        TokenKind::Else,
                        TokenKind::End,
                    ]);
                    arms.push((c, b));
                }
                let else_body = if self.eat(TokenKind::Else) {
                    Some(self.statement_sequence(&[TokenKind::End]))
                } else {
                    None
                };
                self.expect(TokenKind::End)?;
                StmtKind::If { arms, else_body }
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expression()?;
                self.expect(TokenKind::Do)?;
                let body = self.statement_sequence(&[TokenKind::End]);
                self.expect(TokenKind::End)?;
                StmtKind::While { cond, body }
            }
            TokenKind::Repeat => {
                self.bump();
                let body = self.statement_sequence(&[TokenKind::Until]);
                self.expect(TokenKind::Until)?;
                let until = self.expression()?;
                StmtKind::Repeat { body, until }
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let from = self.expression()?;
                self.expect(TokenKind::To)?;
                let to = self.expression()?;
                let by = if self.eat(TokenKind::By) {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect(TokenKind::Do)?;
                let body = self.statement_sequence(&[TokenKind::End]);
                self.expect(TokenKind::End)?;
                StmtKind::For {
                    var,
                    from,
                    to,
                    by,
                    body,
                }
            }
            TokenKind::Loop => {
                self.bump();
                let body = self.statement_sequence(&[TokenKind::End]);
                self.expect(TokenKind::End)?;
                StmtKind::Loop { body }
            }
            TokenKind::Exit => {
                self.bump();
                StmtKind::Exit
            }
            TokenKind::Case => {
                self.bump();
                let scrutinee = self.expression()?;
                self.expect(TokenKind::Of)?;
                let mut arms = Vec::new();
                loop {
                    // Arms are separated by `|`; an arm may be empty.
                    if matches!(self.peek(), TokenKind::Else | TokenKind::End) {
                        break;
                    }
                    if self.eat(TokenKind::Bar) {
                        continue;
                    }
                    let mut labels = Vec::new();
                    loop {
                        let e = self.expression()?;
                        if self.eat(TokenKind::DotDot) {
                            let hi = self.expression()?;
                            labels.push(CaseLabel::Range(e, hi));
                        } else {
                            labels.push(CaseLabel::Single(e));
                        }
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::Colon)?;
                    let body =
                        self.statement_sequence(&[TokenKind::Bar, TokenKind::Else, TokenKind::End]);
                    arms.push(CaseArm { labels, body });
                }
                let else_body = if self.eat(TokenKind::Else) {
                    Some(self.statement_sequence(&[TokenKind::End]))
                } else {
                    None
                };
                self.expect(TokenKind::End)?;
                StmtKind::Case {
                    scrutinee,
                    arms,
                    else_body,
                }
            }
            TokenKind::With => {
                self.bump();
                let designator = self.designator()?;
                self.expect(TokenKind::Do)?;
                let body = self.statement_sequence(&[TokenKind::End]);
                self.expect(TokenKind::End)?;
                StmtKind::With { designator, body }
            }
            TokenKind::Return => {
                self.bump();
                let value = if matches!(
                    self.peek(),
                    TokenKind::Semi
                        | TokenKind::End
                        | TokenKind::Else
                        | TokenKind::Elsif
                        | TokenKind::Until
                        | TokenKind::Bar
                        | TokenKind::Except
                        | TokenKind::Finally
                        | TokenKind::Eof
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                StmtKind::Return(value)
            }
            TokenKind::Lock => {
                self.bump();
                let designator = self.designator()?;
                self.expect(TokenKind::Do)?;
                let body = self.statement_sequence(&[TokenKind::End]);
                self.expect(TokenKind::End)?;
                StmtKind::LockStmt { designator, body }
            }
            TokenKind::Try => {
                self.bump();
                let body = self.statement_sequence(&[
                    TokenKind::Except,
                    TokenKind::Finally,
                    TokenKind::End,
                ]);
                let except = if self.eat(TokenKind::Except) {
                    Some(self.statement_sequence(&[TokenKind::Finally, TokenKind::End]))
                } else {
                    None
                };
                let finally = if self.eat(TokenKind::Finally) {
                    Some(self.statement_sequence(&[TokenKind::End]))
                } else {
                    None
                };
                self.expect(TokenKind::End)?;
                StmtKind::TryStmt {
                    body,
                    except,
                    finally,
                }
            }
            TokenKind::Raise => {
                self.bump();
                let value = if matches!(
                    self.peek(),
                    TokenKind::Semi | TokenKind::End | TokenKind::Eof
                ) {
                    None
                } else {
                    Some(self.expression()?)
                };
                StmtKind::Raise(value)
            }
            other => {
                self.error(format!("expected statement, found `{other}`"));
                return None;
            }
        };
        Some(Stmt {
            kind,
            span: lo.to(self.prev_span()),
        })
    }

    // ----- expressions ----------------------------------------------------

    fn expression(&mut self) -> Option<Expr> {
        let lo = self.span();
        let lhs = self.simple_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::In => BinOp::In,
            _ => return Some(lhs),
        };
        self.bump();
        let rhs = self.simple_expr()?;
        Some(Expr {
            span: lo.to(self.prev_span()),
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
        })
    }

    fn simple_expr(&mut self) -> Option<Expr> {
        let lo = self.span();
        let mut expr = match self.peek() {
            TokenKind::Plus => {
                self.bump();
                let operand = self.term()?;
                Expr {
                    span: lo.to(self.prev_span()),
                    kind: ExprKind::Unary {
                        op: UnOp::Pos,
                        operand: Box::new(operand),
                    },
                }
            }
            TokenKind::Minus => {
                self.bump();
                let operand = self.term()?;
                Expr {
                    span: lo.to(self.prev_span()),
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        operand: Box::new(operand),
                    },
                }
            }
            _ => self.term()?,
        };
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Or => BinOp::Or,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            expr = Expr {
                span: lo.to(self.prev_span()),
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(expr),
                    rhs: Box::new(rhs),
                },
            };
        }
        Some(expr)
    }

    fn term(&mut self) -> Option<Expr> {
        let lo = self.span();
        let mut expr = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::RealDiv,
                TokenKind::Div => BinOp::IntDiv,
                TokenKind::Mod => BinOp::Modulo,
                TokenKind::And | TokenKind::Amp => BinOp::And,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            expr = Expr {
                span: lo.to(self.prev_span()),
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(expr),
                    rhs: Box::new(rhs),
                },
            };
        }
        Some(expr)
    }

    fn factor(&mut self) -> Option<Expr> {
        let lo = self.span();
        let expr = match self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Expr {
                    kind: ExprKind::IntLit(v),
                    span: lo,
                }
            }
            TokenKind::Real(bits) => {
                self.bump();
                Expr {
                    kind: ExprKind::RealLit(bits),
                    span: lo,
                }
            }
            TokenKind::CharLit(c) => {
                self.bump();
                Expr {
                    kind: ExprKind::CharLit(c),
                    span: lo,
                }
            }
            TokenKind::Str(s) => {
                self.bump();
                Expr {
                    kind: ExprKind::StrLit(s),
                    span: lo,
                }
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expression()?;
                self.expect(TokenKind::RParen)?;
                inner
            }
            TokenKind::Not | TokenKind::Tilde => {
                self.bump();
                let operand = self.factor()?;
                Expr {
                    span: lo.to(self.prev_span()),
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                }
            }
            TokenKind::LBrace => {
                // Untyped set constructor `{…}` (BITSET).
                self.set_constructor(None, lo)?
            }
            TokenKind::Ident(_) => {
                // `T{…}` is a typed set constructor; anything else is a
                // designator (possibly with calls).
                if let TokenKind::Ident(_) = self.peek() {
                    if self.peek2() == TokenKind::LBrace {
                        let name = self.ident()?;
                        let brace_lo = self.span();
                        return self.set_constructor(Some(name), brace_lo.to(lo));
                    }
                }
                self.designator()?
            }
            other => {
                self.error(format!("expected expression, found `{other}`"));
                return None;
            }
        };
        Some(expr)
    }

    fn set_constructor(&mut self, of_type: Option<Ident>, lo: Span) -> Option<Expr> {
        self.expect(TokenKind::LBrace)?;
        let mut elems = Vec::new();
        if !self.at(TokenKind::RBrace) {
            loop {
                let e = self.expression()?;
                if self.eat(TokenKind::DotDot) {
                    let hi = self.expression()?;
                    elems.push(SetElem::Range(e, hi));
                } else {
                    elems.push(SetElem::Single(e));
                }
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RBrace)?;
        Some(Expr {
            span: lo.to(self.prev_span()),
            kind: ExprKind::SetCons { of_type, elems },
        })
    }

    /// Parses a designator with postfix selectors and calls:
    /// `ident { .field | [exprs] | ^ | (args) }`.
    fn designator(&mut self) -> Option<Expr> {
        let lo = self.span();
        let first = self.ident()?;
        let mut expr = Expr {
            kind: ExprKind::Name(first),
            span: lo,
        };
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    expr = Expr {
                        span: lo.to(self.prev_span()),
                        kind: ExprKind::Field {
                            base: Box::new(expr),
                            field,
                        },
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let mut indices = vec![self.expression()?];
                    while self.eat(TokenKind::Comma) {
                        indices.push(self.expression()?);
                    }
                    self.expect(TokenKind::RBracket)?;
                    expr = Expr {
                        span: lo.to(self.prev_span()),
                        kind: ExprKind::Index {
                            base: Box::new(expr),
                            indices,
                        },
                    };
                }
                TokenKind::Caret => {
                    self.bump();
                    expr = Expr {
                        span: lo.to(self.prev_span()),
                        kind: ExprKind::Deref {
                            base: Box::new(expr),
                        },
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(TokenKind::RParen) {
                        loop {
                            args.push(self.expression()?);
                            if !self.eat(TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    expr = Expr {
                        span: lo.to(self.prev_span()),
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            args,
                        },
                    };
                }
                _ => break,
            }
        }
        Some(expr)
    }
}

// ----- streaming (incremental) parsing --------------------------------
//
// The concurrent compiler's fused Parser/DeclAnalyzer tasks (paper §3)
// must *interleave* parsing with declaration analysis: a procedure
// heading's symbol-table entry is created — and the procedure stream's
// avoided event fired — the moment the heading is parsed, not when the
// whole module has been. These drivers expose the grammar in stages.

/// Incremental parser for an implementation (or program) module.
///
/// Stages: [`StreamingImpl::begin`] (header + imports) →
/// repeated [`StreamingImpl::next_decls`] → [`StreamingImpl::finish`]
/// (body + trailer).
pub struct StreamingImpl<'a> {
    p: Parser<'a>,
    name: Ident,
    imports: Vec<Import>,
}

impl<'a> StreamingImpl<'a> {
    /// Parses the module header and import section.
    pub fn begin(
        source: &'a dyn TokenSource,
        interner: &'a Interner,
        sink: &'a DiagnosticSink,
    ) -> Option<StreamingImpl<'a>> {
        let mut p = Parser::new(source, interner, sink);
        p.eat(TokenKind::Implementation);
        p.expect(TokenKind::Module)?;
        let name = p.ident()?;
        if p.eat(TokenKind::LBracket) {
            let _ = p.expression();
            p.expect(TokenKind::RBracket);
        }
        p.expect(TokenKind::Semi)?;
        let imports = p.imports();
        Some(StreamingImpl { p, name, imports })
    }

    /// The module's name.
    pub fn name(&self) -> Ident {
        self.name
    }

    /// The parsed import list.
    pub fn imports(&self) -> &[Import] {
        &self.imports
    }

    /// Parses the next declaration group (one CONST/TYPE/VAR section or
    /// one PROCEDURE); `None` once the body (or module end) is reached.
    pub fn next_decls(&mut self) -> Option<Vec<Decl>> {
        loop {
            match self.p.peek() {
                TokenKind::Begin | TokenKind::End | TokenKind::Eof => return None,
                _ => {
                    let mut out = Vec::new();
                    let before = self.p.pos;
                    self.p.declaration(false, &mut out);
                    if !out.is_empty() {
                        return Some(out);
                    }
                    if self.p.pos == before {
                        let found = self.p.peek();
                        self.p
                            .error(format!("unexpected `{found}` in declarations"));
                        self.p.bump();
                    }
                }
            }
        }
    }

    /// Parses the optional module body and the `END name .` trailer.
    /// Returns the statements plus whether the body was *poisoned* —
    /// syntactically recovered but untrustworthy for code generation.
    pub fn finish(mut self) -> (Vec<Stmt>, bool) {
        let mut body = Vec::new();
        let errs_before = self.p.errors.get();
        if self.p.eat(TokenKind::Begin) {
            body = self.p.statement_sequence(&[TokenKind::End]);
        }
        let poisoned = self.p.errors.get() > errs_before;
        self.p.expect(TokenKind::End);
        if let Some(end_name) = self.p.ident() {
            if end_name.name != self.name.name {
                self.p.sink.report(Diagnostic::error(
                    self.p.file,
                    end_name.span,
                    format!(
                        "module ends with `{}` but is named `{}`",
                        self.p.interner.resolve(end_name.name),
                        self.p.interner.resolve(self.name.name)
                    ),
                ));
            }
        }
        self.p.expect(TokenKind::Dot);
        (body, poisoned)
    }
}

/// Incremental parser for one procedure stream
/// (`PROCEDURE … END name ;`).
pub struct StreamingProc<'a> {
    p: Parser<'a>,
    heading: ProcHeading,
}

impl<'a> StreamingProc<'a> {
    /// Parses `PROCEDURE` and the heading.
    pub fn begin(
        source: &'a dyn TokenSource,
        interner: &'a Interner,
        sink: &'a DiagnosticSink,
    ) -> Option<StreamingProc<'a>> {
        let mut p = Parser::new(source, interner, sink);
        p.expect(TokenKind::Procedure)?;
        let heading = p.proc_heading()?;
        p.expect(TokenKind::Semi)?;
        Some(StreamingProc { p, heading })
    }

    /// The parsed heading.
    pub fn heading(&self) -> &ProcHeading {
        &self.heading
    }

    /// Parses the next local declaration group; `None` at the body.
    pub fn next_decls(&mut self) -> Option<Vec<Decl>> {
        loop {
            match self.p.peek() {
                TokenKind::Begin | TokenKind::End | TokenKind::Eof => return None,
                _ => {
                    let mut out = Vec::new();
                    let before = self.p.pos;
                    self.p.declaration(false, &mut out);
                    if !out.is_empty() {
                        return Some(out);
                    }
                    if self.p.pos == before {
                        let found = self.p.peek();
                        self.p
                            .error(format!("unexpected `{found}` in declarations"));
                        self.p.bump();
                    }
                }
            }
        }
    }

    /// Parses the body and the `END name ;` trailer; returns the
    /// statements plus whether the body was poisoned (recovered from a
    /// syntax error and untrustworthy for code generation).
    pub fn finish(mut self) -> (Vec<Stmt>, bool) {
        let mut body = Vec::new();
        let errs_before = self.p.errors.get();
        if self.p.eat(TokenKind::Begin) {
            body = self.p.statement_sequence(&[TokenKind::End]);
        }
        let poisoned = self.p.errors.get() > errs_before;
        if self.p.expect(TokenKind::End).is_some() {
            if let Some(end_name) = self.p.ident() {
                if end_name.name != self.heading.name.name {
                    self.p.sink.report(Diagnostic::error(
                        self.p.file,
                        end_name.span,
                        format!(
                            "procedure ends with `{}` but is named `{}`",
                            self.p.interner.resolve(end_name.name),
                            self.p.interner.resolve(self.heading.name.name)
                        ),
                    ));
                }
            }
            self.p.eat(TokenKind::Semi);
        }
        (body, poisoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;
    use ccm2_support::source::SourceMap;

    fn parse_impl(src: &str) -> (Option<ImplementationModule>, DiagnosticSink, Interner) {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("M.mod", src);
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        let m = parse_implementation(&tokens, &interner, &sink);
        (m, sink, interner)
    }

    fn parse_def(src: &str) -> (Option<DefinitionModule>, DiagnosticSink, Interner) {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("M.def", src);
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        let m = parse_definition(&tokens, &interner, &sink);
        (m, sink, interner)
    }

    #[test]
    fn minimal_implementation_module() {
        let (m, sink, i) = parse_impl("IMPLEMENTATION MODULE M; BEGIN END M.");
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(i.resolve(m.name.name), "M");
        assert!(m.body.is_empty());
    }

    #[test]
    fn program_module_without_implementation_keyword() {
        let (m, sink, _) = parse_impl("MODULE Main; BEGIN END Main.");
        assert!(m.is_some());
        assert!(!sink.has_errors());
    }

    #[test]
    fn imports_both_forms() {
        let (m, sink, i) =
            parse_impl("IMPLEMENTATION MODULE M; IMPORT A, B; FROM C IMPORT x, y; END M.");
        let m = m.expect("parses");
        assert!(!sink.has_errors());
        assert_eq!(m.imports.len(), 3);
        assert_eq!(i.resolve(m.imports[0].module().name), "A");
        assert_eq!(i.resolve(m.imports[2].module().name), "C");
        match &m.imports[2] {
            Import::From { names, .. } => assert_eq!(names.len(), 2),
            _ => panic!("expected FROM import"),
        }
    }

    #[test]
    fn const_type_var_sections() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M;\
             CONST n = 10; pi = 3.14;\
             TYPE Vec = ARRAY [1..n] OF REAL; P = POINTER TO Vec;\
             Color = (red, green, blue); Flags = SET OF Color;\
             R = RECORD x, y : REAL; tag : Color END;\
             F = PROCEDURE (INTEGER, VAR REAL) : BOOLEAN;\
             VAR a, b : INTEGER; v : Vec;\
             BEGIN END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(m.decls.len(), 2 + 6 + 2);
    }

    #[test]
    fn full_procedure_with_nesting() {
        let (m, sink, i) = parse_impl(
            "IMPLEMENTATION MODULE M;\
             PROCEDURE Outer(a : INTEGER; VAR b : REAL) : INTEGER;\
               VAR t : INTEGER;\
               PROCEDURE Inner() : INTEGER;\
               BEGIN RETURN 1 END Inner;\
             BEGIN RETURN Inner() + a END Outer;\
             BEGIN END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let Decl::Procedure(p) = &m.decls[0] else {
            panic!("expected procedure")
        };
        assert_eq!(i.resolve(p.heading.name.name), "Outer");
        assert_eq!(p.heading.param_count(), 2);
        assert!(p.heading.ret.is_some());
        let ProcBody::Local(local) = &p.body else {
            panic!("expected local body")
        };
        assert_eq!(local.decls.len(), 2, "VAR t and Inner");
    }

    #[test]
    fn all_statement_forms_parse() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M; \
             VAR i, n : INTEGER; done : BOOLEAN; r : RECORD f : INTEGER END; mu : INTEGER; \
             BEGIN \
               i := 0; \
               IF i = 0 THEN n := 1 ELSIF i > 2 THEN n := 2 ELSE n := 3 END; \
               WHILE i < 10 DO i := i + 1 END; \
               REPEAT i := i - 1 UNTIL i <= 0; \
               FOR i := 1 TO 10 BY 2 DO n := n + i END; \
               LOOP EXIT END; \
               CASE i OF 1 : n := 1 | 2, 3 : n := 2 | 4..6 : n := 3 ELSE n := 0 END; \
               WITH r DO f := 1 END; \
               LOCK mu DO n := 0 END; \
               TRY n := 1 EXCEPT n := 2 FINALLY n := 3 END; \
               RAISE; \
               RETURN \
             END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(m.body.len(), 12);
    }

    #[test]
    fn expression_precedence() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M; VAR a, b, c, d : INTEGER; p : BOOLEAN;\
             BEGIN a := b + c * d; p := (a < b) OR (c >= d) AND NOT p END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors());
        let StmtKind::Assign { rhs, .. } = &m.body[0].kind else {
            panic!("expected assign")
        };
        // b + (c * d): top is Add.
        let ExprKind::Binary { op, rhs: mul, .. } = &rhs.kind else {
            panic!("expected binary")
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(mul.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn designators_and_calls() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M;\
             VAR a : ARRAY [0..9] OF INTEGER; p : POINTER TO INTEGER;\
             BEGIN a[1] := p^; IO.WriteInt(a[2], 4); Proc() END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(m.body.len(), 3);
        let StmtKind::Call { call } = &m.body[1].kind else {
            panic!("expected call")
        };
        let ExprKind::Call { callee, args } = &call.kind else {
            panic!("expected call expr")
        };
        assert_eq!(args.len(), 2);
        assert!(matches!(callee.kind, ExprKind::Field { .. }));
    }

    #[test]
    fn set_constructors() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M; TYPE S = SET OF [0..15]; VAR s : S; t : BITSET;\
             BEGIN s := S{1, 3..5}; t := {0, 2} END M.",
        );
        assert!(m.is_some());
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
    }

    #[test]
    fn definition_module_headings() {
        let (d, sink, i) = parse_def(
            "DEFINITION MODULE Text;\
             FROM Streams IMPORT Stream;\
             EXPORT QUALIFIED Open, Close, MaxLen;\
             CONST MaxLen = 128;\
             TYPE T; Mode = (readOnly, writeOnly);\
             PROCEDURE Open(name : ARRAY OF CHAR; m : Mode) : T;\
             PROCEDURE Close(VAR t : T);\
             END Text.",
        );
        let d = d.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(i.resolve(d.name.name), "Text");
        assert_eq!(d.exports.len(), 3);
        assert_eq!(d.decls.len(), 5, "MaxLen, T, Mode, Open, Close");
        let Decl::Procedure(p) = &d.decls[3] else {
            panic!()
        };
        assert!(matches!(p.body, ProcBody::HeadingOnly));
        let Decl::Type { ty, .. } = &d.decls[1] else {
            panic!()
        };
        assert!(ty.is_none(), "opaque type");
    }

    #[test]
    fn procedure_stream_parses_standalone() {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add(
            "p.frag",
            "PROCEDURE Add(a, b : INTEGER) : INTEGER; BEGIN RETURN a + b END Add;",
        );
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        let p = parse_procedure(&tokens, &interner, &sink).expect("parses");
        assert!(!sink.has_errors());
        assert_eq!(interner.resolve(p.heading.name.name), "Add");
    }

    #[test]
    fn proc_stub_produces_remote_body() {
        use ccm2_support::ids::StreamId;
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add(
            "m.frag",
            "IMPLEMENTATION MODULE M; PROCEDURE P(x : INTEGER); BEGIN END M.",
        );
        let sink = DiagnosticSink::new();
        let mut tokens = lex_file(&file, &interner, &sink);
        // Splice a stub after the heading's `;` the way the splitter does:
        // find the first `;` after the param list close paren.
        let semi_idx = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == TokenKind::Semi)
            .map(|(ix, _)| ix)
            .nth(1)
            .expect("heading semicolon");
        let file_id = tokens[semi_idx].file;
        let at = tokens[semi_idx].span;
        tokens.insert(
            semi_idx + 1,
            Token::new(TokenKind::ProcStub(StreamId(7)), at, file_id),
        );
        tokens.insert(semi_idx + 2, Token::new(TokenKind::Semi, at, file_id));
        let m = parse_implementation(&tokens, &interner, &sink).expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let Decl::Procedure(p) = &m.decls[0] else {
            panic!()
        };
        assert_eq!(p.body, ProcBody::Remote(StreamId(7)));
    }

    #[test]
    fn mismatched_end_name_reports() {
        let (_, sink, _) = parse_impl("IMPLEMENTATION MODULE M; BEGIN END Wrong.");
        assert!(sink.has_errors());
    }

    #[test]
    fn missing_semicolon_recovers() {
        let (m, sink, _) =
            parse_impl("IMPLEMENTATION MODULE M; VAR a : INTEGER; BEGIN a := 1 a := 2 END M.");
        assert!(sink.has_errors());
        let m = m.expect("still produces a module");
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn garbage_declaration_recovers() {
        let (m, sink, _) =
            parse_impl("IMPLEMENTATION MODULE M; CONST bad = ; good = 2; BEGIN END M.");
        assert!(sink.has_errors());
        assert!(m.is_some());
    }

    #[test]
    fn multidim_array_sugar() {
        let (m, sink, _) = parse_impl(
            "IMPLEMENTATION MODULE M; VAR g : ARRAY [0..3], [0..4] OF INTEGER; BEGIN END M.",
        );
        let m = m.expect("parses");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let Decl::Var { ty, .. } = &m.decls[0] else {
            panic!()
        };
        let TypeExprKind::Array { elem, .. } = &ty.kind else {
            panic!("outer array")
        };
        assert!(
            matches!(elem.kind, TypeExprKind::Array { .. }),
            "inner array"
        );
    }

    #[test]
    fn module_priority_is_accepted() {
        let (m, sink, _) = parse_impl("MODULE M [4]; BEGIN END M.");
        assert!(m.is_some());
        assert!(!sink.has_errors());
    }

    #[test]
    fn qualified_type_name() {
        let (m, sink, _) =
            parse_impl("IMPLEMENTATION MODULE M; IMPORT Lists; VAR l : Lists.List; BEGIN END M.");
        let m = m.expect("parses");
        assert!(!sink.has_errors());
        let Decl::Var { ty, .. } = &m.decls[0] else {
            panic!()
        };
        assert!(matches!(
            ty.kind,
            TypeExprKind::Named {
                module: Some(_),
                ..
            }
        ));
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::lexer::lex_file;
    use ccm2_support::source::SourceMap;

    fn tokens(src: &str) -> (Vec<Token>, Interner, DiagnosticSink) {
        let interner = Interner::new();
        let map = SourceMap::new();
        let file = map.add("s.mod", src);
        let sink = DiagnosticSink::new();
        let toks = lex_file(&file, &interner, &sink);
        (toks, interner, sink)
    }

    #[test]
    fn streaming_impl_stages() {
        let (toks, interner, sink) = tokens(
            "IMPLEMENTATION MODULE M; IMPORT A; \
             CONST k = 1; c2 = 2; \
             VAR v : INTEGER; \
             PROCEDURE P; BEGIN END P; \
             BEGIN v := k END M.",
        );
        let src: &[Token] = &toks;
        let mut s = StreamingImpl::begin(&src, &interner, &sink).expect("begins");
        assert_eq!(interner.resolve(s.name().name), "M");
        assert_eq!(s.imports().len(), 1);
        // Group 1: the CONST section (two items).
        let g1 = s.next_decls().expect("const section");
        assert_eq!(g1.len(), 2);
        assert!(matches!(g1[0], Decl::Const { .. }));
        // Group 2: VAR.
        let g2 = s.next_decls().expect("var section");
        assert!(matches!(g2[0], Decl::Var { .. }));
        // Group 3: the procedure (exactly one per call).
        let g3 = s.next_decls().expect("procedure");
        assert_eq!(g3.len(), 1);
        assert!(matches!(g3[0], Decl::Procedure(_)));
        assert!(s.next_decls().is_none(), "BEGIN reached");
        let (body, poisoned) = s.finish();
        assert_eq!(body.len(), 1);
        assert!(!poisoned);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
    }

    #[test]
    fn streaming_impl_without_body() {
        let (toks, interner, sink) = tokens("MODULE M; VAR v : INTEGER; END M.");
        let src: &[Token] = &toks;
        let mut s = StreamingImpl::begin(&src, &interner, &sink).expect("begins");
        assert!(s.next_decls().is_some());
        assert!(s.next_decls().is_none());
        assert!(s.finish().0.is_empty());
        assert!(!sink.has_errors());
    }

    #[test]
    fn streaming_proc_stages() {
        let (toks, interner, sink) = tokens(
            "PROCEDURE Outer(a : INTEGER) : INTEGER; \
             VAR t : INTEGER; \
             BEGIN t := a; RETURN t END Outer;",
        );
        let src: &[Token] = &toks;
        let mut s = StreamingProc::begin(&src, &interner, &sink).expect("begins");
        assert_eq!(interner.resolve(s.heading().name.name), "Outer");
        assert_eq!(s.heading().param_count(), 1);
        assert!(s.heading().ret.is_some());
        assert!(s.next_decls().is_some(), "VAR t");
        assert!(s.next_decls().is_none());
        let (body, poisoned) = s.finish();
        assert_eq!(body.len(), 2);
        assert!(!poisoned);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
    }

    #[test]
    fn streaming_proc_end_name_mismatch_reports() {
        let (toks, interner, sink) = tokens("PROCEDURE P; BEGIN END Wrong;");
        let src: &[Token] = &toks;
        let s = StreamingProc::begin(&src, &interner, &sink).expect("begins");
        let _ = {
            let mut s = s;
            while s.next_decls().is_some() {}
            s.finish()
        };
        assert!(sink.has_errors());
    }

    #[test]
    fn streaming_matches_batch_parse() {
        let src_text = "IMPLEMENTATION MODULE M; \
             CONST a = 1; \
             TYPE T = ARRAY [0..a] OF INTEGER; \
             VAR v : T; \
             PROCEDURE P(x : INTEGER); BEGIN v[0] := x END P; \
             BEGIN P(a) END M.";
        let (toks, interner, sink) = tokens(src_text);
        let batch = parse_implementation(&toks, &interner, &sink).expect("batch");
        let src: &[Token] = &toks;
        let mut s = StreamingImpl::begin(&src, &interner, &sink).expect("begins");
        let mut decls = Vec::new();
        while let Some(g) = s.next_decls() {
            decls.extend(g);
        }
        let (body, poisoned) = s.finish();
        assert!(!poisoned);
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        assert_eq!(decls, batch.decls);
        assert_eq!(body, batch.body);
    }
}
