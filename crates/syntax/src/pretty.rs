//! Pretty-printing of the AST back to Modula-2+ source.
//!
//! Used by tooling (the `ccm2c --emit ast` mode) and by the round-trip
//! property tests: parse → print → parse must reach a fixed point, which
//! pins down the parser and printer against each other.

use ccm2_support::intern::Interner;

use crate::ast::*;

/// Pretty-prints a definition module.
pub fn print_definition(m: &DefinitionModule, interner: &Interner) -> String {
    let mut p = Printer::new(interner);
    p.line(&format!("DEFINITION MODULE {};", p.id(m.name)));
    p.imports(&m.imports);
    if !m.exports.is_empty() {
        let names: Vec<String> = m.exports.iter().map(|e| p.id(*e)).collect();
        p.line(&format!("EXPORT QUALIFIED {};", names.join(", ")));
    }
    for d in &m.decls {
        p.decl(d);
    }
    p.line(&format!("END {}.", p.id(m.name)));
    p.out
}

/// Pretty-prints an implementation module.
pub fn print_implementation(m: &ImplementationModule, interner: &Interner) -> String {
    let mut p = Printer::new(interner);
    p.line(&format!("IMPLEMENTATION MODULE {};", p.id(m.name)));
    p.imports(&m.imports);
    for d in &m.decls {
        p.decl(d);
    }
    if !m.body.is_empty() {
        p.line("BEGIN");
        p.indent += 1;
        p.stmts(&m.body);
        p.indent -= 1;
    }
    p.line(&format!("END {}.", p.id(m.name)));
    p.out
}

struct Printer<'a> {
    interner: &'a Interner,
    out: String,
    indent: usize,
}

impl<'a> Printer<'a> {
    fn new(interner: &'a Interner) -> Printer<'a> {
        Printer {
            interner,
            out: String::new(),
            indent: 0,
        }
    }

    fn id(&self, id: Ident) -> String {
        self.interner.resolve(id.name)
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn imports(&mut self, imports: &[Import]) {
        for imp in imports {
            match imp {
                Import::Whole { module } => self.line(&format!("IMPORT {};", self.id(*module))),
                Import::From { module, names } => {
                    let names: Vec<String> = names.iter().map(|n| self.id(*n)).collect();
                    self.line(&format!(
                        "FROM {} IMPORT {};",
                        self.id(*module),
                        names.join(", ")
                    ));
                }
            }
        }
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Const { name, value } => {
                let v = self.expr(value);
                self.line(&format!("CONST {} = {};", self.id(*name), v));
            }
            Decl::Type { name, ty } => match ty {
                Some(t) => {
                    let t = self.ty(t);
                    self.line(&format!("TYPE {} = {};", self.id(*name), t));
                }
                None => self.line(&format!("TYPE {};", self.id(*name))),
            },
            Decl::Var { names, ty } => {
                let names: Vec<String> = names.iter().map(|n| self.id(*n)).collect();
                let t = self.ty(ty);
                self.line(&format!("VAR {} : {};", names.join(", "), t));
            }
            Decl::Procedure(p) => self.procedure(p),
        }
    }

    fn heading_text(&self, h: &ProcHeading) -> String {
        let mut s = format!("PROCEDURE {}", self.id(h.name));
        if !h.params.is_empty() || h.ret.is_some() {
            s.push('(');
            let sections: Vec<String> = h
                .params
                .iter()
                .map(|sec| {
                    let names: Vec<String> = sec.names.iter().map(|n| self.id(*n)).collect();
                    format!(
                        "{}{} : {}",
                        if sec.is_var { "VAR " } else { "" },
                        names.join(", "),
                        self.ty(&sec.ty)
                    )
                })
                .collect();
            s.push_str(&sections.join("; "));
            s.push(')');
        }
        if let Some(ret) = &h.ret {
            s.push_str(&format!(" : {}", self.ty(ret)));
        }
        s
    }

    fn procedure(&mut self, p: &ProcDecl) {
        let head = self.heading_text(&p.heading);
        match &p.body {
            ProcBody::HeadingOnly => self.line(&format!("{head};")),
            ProcBody::Remote(stream) => {
                self.line(&format!("{head};"));
                self.line(&format!("(* body in {stream} *);"));
            }
            ProcBody::Local(local) => {
                self.line(&format!("{head};"));
                self.indent += 1;
                for d in &local.decls {
                    self.decl(d);
                }
                self.indent -= 1;
                if !local.body.is_empty() {
                    self.line("BEGIN");
                    self.indent += 1;
                    self.stmts(&local.body);
                    self.indent -= 1;
                }
                self.line(&format!("END {};", self.id(p.heading.name)));
            }
        }
    }

    fn ty(&self, t: &TypeExpr) -> String {
        match &t.kind {
            TypeExprKind::Named { module, name } => match module {
                Some(m) => format!("{}.{}", self.id(*m), self.id(*name)),
                None => self.id(*name),
            },
            TypeExprKind::Array { index, elem } => {
                format!("ARRAY {} OF {}", self.ty(index), self.ty(elem))
            }
            TypeExprKind::OpenArray { elem } => format!("ARRAY OF {}", self.ty(elem)),
            TypeExprKind::Record { fields } => {
                let fs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let names: Vec<String> = f.names.iter().map(|n| self.id(*n)).collect();
                        format!("{} : {}", names.join(", "), self.ty(&f.ty))
                    })
                    .collect();
                format!("RECORD {} END", fs.join("; "))
            }
            TypeExprKind::Pointer { to } => format!("POINTER TO {}", self.ty(to)),
            TypeExprKind::Set { of } => format!("SET OF {}", self.ty(of)),
            TypeExprKind::Enumeration { members } => {
                let ms: Vec<String> = members.iter().map(|m| self.id(*m)).collect();
                format!("({})", ms.join(", "))
            }
            TypeExprKind::Subrange { lo, hi } => {
                format!("[{} .. {}]", self.expr(lo), self.expr(hi))
            }
            TypeExprKind::ProcType { params, ret } => {
                let mut s = String::from("PROCEDURE");
                if !params.is_empty() || ret.is_some() {
                    let ps: Vec<String> = params
                        .iter()
                        .map(|(v, t)| format!("{}{}", if *v { "VAR " } else { "" }, self.ty(t)))
                        .collect();
                    s.push_str(&format!("({})", ps.join(", ")));
                }
                if let Some(r) = ret {
                    s.push_str(&format!(" : {}", self.ty(r)));
                }
                s
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for (ix, s) in stmts.iter().enumerate() {
            let sep = ix + 1 < stmts.len();
            self.stmt(s, sep);
        }
    }

    fn stmt(&mut self, s: &Stmt, sep: bool) {
        let semi = if sep { ";" } else { "" };
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Assign { lhs, rhs } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                self.line(&format!("{l} := {r}{semi}"));
            }
            StmtKind::Call { call } => {
                let c = self.expr(call);
                self.line(&format!("{c}{semi}"));
            }
            StmtKind::If { arms, else_body } => {
                for (ix, (cond, body)) in arms.iter().enumerate() {
                    let kw = if ix == 0 { "IF" } else { "ELSIF" };
                    let c = self.expr(cond);
                    self.line(&format!("{kw} {c} THEN"));
                    self.indent += 1;
                    self.stmts(body);
                    self.indent -= 1;
                }
                if let Some(e) = else_body {
                    self.line("ELSE");
                    self.indent += 1;
                    self.stmts(e);
                    self.indent -= 1;
                }
                self.line(&format!("END{semi}"));
            }
            StmtKind::While { cond, body } => {
                let c = self.expr(cond);
                self.line(&format!("WHILE {c} DO"));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(&format!("END{semi}"));
            }
            StmtKind::Repeat { body, until } => {
                self.line("REPEAT");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                let u = self.expr(until);
                self.line(&format!("UNTIL {u}{semi}"));
            }
            StmtKind::For {
                var,
                from,
                to,
                by,
                body,
            } => {
                let f = self.expr(from);
                let t = self.expr(to);
                let by_txt = by
                    .as_ref()
                    .map(|b| format!(" BY {}", self.expr(b)))
                    .unwrap_or_default();
                self.line(&format!("FOR {} := {f} TO {t}{by_txt} DO", self.id(*var)));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(&format!("END{semi}"));
            }
            StmtKind::Loop { body } => {
                self.line("LOOP");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(&format!("END{semi}"));
            }
            StmtKind::Exit => self.line(&format!("EXIT{semi}")),
            StmtKind::Case {
                scrutinee,
                arms,
                else_body,
            } => {
                let sc = self.expr(scrutinee);
                self.line(&format!("CASE {sc} OF"));
                for (ix, arm) in arms.iter().enumerate() {
                    let labels: Vec<String> = arm
                        .labels
                        .iter()
                        .map(|l| match l {
                            CaseLabel::Single(e) => self.expr(e),
                            CaseLabel::Range(a, b) => {
                                format!("{} .. {}", self.expr(a), self.expr(b))
                            }
                        })
                        .collect();
                    let bar = if ix == 0 { "" } else { "| " };
                    self.line(&format!("{bar}{} :", labels.join(", ")));
                    self.indent += 1;
                    self.stmts(&arm.body);
                    self.indent -= 1;
                }
                if let Some(e) = else_body {
                    self.line("ELSE");
                    self.indent += 1;
                    self.stmts(e);
                    self.indent -= 1;
                }
                self.line(&format!("END{semi}"));
            }
            StmtKind::With { designator, body } => {
                let d = self.expr(designator);
                self.line(&format!("WITH {d} DO"));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(&format!("END{semi}"));
            }
            StmtKind::Return(value) => match value {
                Some(v) => {
                    let v = self.expr(v);
                    self.line(&format!("RETURN {v}{semi}"));
                }
                None => self.line(&format!("RETURN{semi}")),
            },
            StmtKind::LockStmt { designator, body } => {
                let d = self.expr(designator);
                self.line(&format!("LOCK {d} DO"));
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line(&format!("END{semi}"));
            }
            StmtKind::TryStmt {
                body,
                except,
                finally,
            } => {
                self.line("TRY");
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                if let Some(h) = except {
                    self.line("EXCEPT");
                    self.indent += 1;
                    self.stmts(h);
                    self.indent -= 1;
                }
                if let Some(f) = finally {
                    self.line("FINALLY");
                    self.indent += 1;
                    self.stmts(f);
                    self.indent -= 1;
                }
                self.line(&format!("END{semi}"));
            }
            StmtKind::Raise(value) => match value {
                Some(v) => {
                    let v = self.expr(v);
                    self.line(&format!("RAISE {v}{semi}"));
                }
                None => self.line(&format!("RAISE{semi}")),
            },
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match &e.kind {
            ExprKind::IntLit(v) => format!("{v}"),
            ExprKind::RealLit(bits) => {
                let v = f64::from_bits(*bits);
                // Ensure a decimal point so it re-lexes as a real.
                let s = format!("{v}");
                if s.contains('.') || s.contains('E') || s.contains('e') {
                    s.replace('e', "E")
                } else {
                    format!("{s}.0")
                }
            }
            ExprKind::CharLit(c) => {
                let ch = *c as char;
                if ch.is_ascii_graphic() || ch == ' ' {
                    if ch == '\'' {
                        format!("\"{ch}\"")
                    } else {
                        format!("'{ch}'")
                    }
                } else {
                    format!("{}C", u32::from(*c)) // numeric char literal
                }
            }
            ExprKind::StrLit(s) => {
                let text = self.interner.resolve(*s);
                if text.contains('\'') {
                    format!("\"{text}\"")
                } else {
                    format!("'{text}'")
                }
            }
            ExprKind::Name(id) => self.id(*id),
            ExprKind::Field { base, field } => {
                format!("{}.{}", self.expr(base), self.id(*field))
            }
            ExprKind::Index { base, indices } => {
                let ix: Vec<String> = indices.iter().map(|i| self.expr(i)).collect();
                format!("{}[{}]", self.expr(base), ix.join(", "))
            }
            ExprKind::Deref { base } => format!("{}^", self.expr(base)),
            ExprKind::Call { callee, args } => {
                let a: Vec<String> = args.iter().map(|x| self.expr(x)).collect();
                format!("{}({})", self.expr(callee), a.join(", "))
            }
            ExprKind::Unary { op, operand } => {
                let o = self.expr(operand);
                match op {
                    UnOp::Neg => format!("(-{o})"),
                    UnOp::Pos => format!("(+{o})"),
                    UnOp::Not => format!("(NOT {o})"),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let op_txt = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::RealDiv => "/",
                    BinOp::IntDiv => "DIV",
                    BinOp::Modulo => "MOD",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                    BinOp::Eq => "=",
                    BinOp::Neq => "#",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::In => "IN",
                };
                format!("({} {op_txt} {})", self.expr(lhs), self.expr(rhs))
            }
            ExprKind::SetCons { of_type, elems } => {
                let es: Vec<String> = elems
                    .iter()
                    .map(|el| match el {
                        SetElem::Single(x) => self.expr(x),
                        SetElem::Range(a, b) => format!("{} .. {}", self.expr(a), self.expr(b)),
                    })
                    .collect();
                let prefix = of_type.map(|t| self.id(t)).unwrap_or_default();
                format!("{prefix}{{{}}}", es.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_file;
    use crate::parser::parse_implementation;
    use ccm2_support::source::SourceMap;
    use ccm2_support::{DiagnosticSink, Interner};

    fn roundtrip(src: &str) {
        let interner = Interner::new();
        let map = SourceMap::new();
        let sink = DiagnosticSink::new();
        let f1 = map.add("a.mod", src);
        let t1 = lex_file(&f1, &interner, &sink);
        let m1 = parse_implementation(&t1, &interner, &sink).expect("first parse");
        assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let printed = print_implementation(&m1, &interner);
        let f2 = map.add("b.mod", printed.clone());
        let t2 = lex_file(&f2, &interner, &sink);
        let m2 = parse_implementation(&t2, &interner, &sink)
            .unwrap_or_else(|| panic!("reparse failed for:\n{printed}"));
        assert!(
            !sink.has_errors(),
            "printed:\n{printed}\n{:?}",
            sink.snapshot()
        );
        // Compare via a second print (spans differ; text must agree).
        let printed2 = print_implementation(&m2, &interner);
        assert_eq!(printed, printed2, "print not a fixed point");
    }

    #[test]
    fn roundtrip_simple_module() {
        roundtrip("MODULE M; VAR x : INTEGER; BEGIN x := 1 END M.");
    }

    #[test]
    fn roundtrip_procedures_and_types() {
        roundtrip(
            "IMPLEMENTATION MODULE M; \
             IMPORT A; FROM B IMPORT c, d; \
             CONST N = 3 * 4; \
             TYPE P = POINTER TO R; R = RECORD x, y : INTEGER; t : CHAR END; \
             E = (red, green); S = SET OF [0 .. 7]; \
             F = PROCEDURE(INTEGER, VAR REAL) : BOOLEAN; \
             VAR v : ARRAY [1 .. N] OF R; \
             PROCEDURE Go(a : INTEGER; VAR out : REAL) : BOOLEAN; \
             VAR t : INTEGER; \
             BEGIN t := a; RETURN t > 0 END Go; \
             BEGIN END M.",
        );
    }

    #[test]
    fn roundtrip_all_statements() {
        roundtrip(
            "MODULE M; VAR i, n : INTEGER; r : RECORD f : INTEGER END; b : BITSET; \
             BEGIN \
               i := 0; \
               IF i = 0 THEN n := 1 ELSIF i > 2 THEN n := 2 ELSE n := 3 END; \
               WHILE i < 10 DO INC(i) END; \
               REPEAT DEC(i) UNTIL i <= 0; \
               FOR i := 1 TO 10 BY 2 DO n := n + i END; \
               LOOP EXIT END; \
               CASE i OF 1 : n := 1 | 2, 3 : n := 2 | 4 .. 6 : n := 3 ELSE n := 0 END; \
               WITH r DO f := 1 END; \
               LOCK n DO n := 0 END; \
               TRY n := 1 EXCEPT n := 2 FINALLY n := 3 END; \
               b := {1, 3 .. 5}; \
               RETURN \
             END M.",
        );
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip(
            "MODULE M; VAR a, b : INTEGER; p : BOOLEAN; r : REAL; c : CHAR; \
             BEGIN \
               a := (a + b) * (a - b) DIV 2 MOD 3; \
               p := (NOT p) OR ((a < b) AND (a # b)) OR (3 IN {1, 3}); \
               r := 2.5 / 0.5; \
               c := 'x'; \
               a := ABS(-a) \
             END M.",
        );
    }

    #[test]
    fn roundtrip_generated_modules() {
        // The pretty-printer must survive generator output too.
        let interner = Interner::new();
        let map = SourceMap::new();
        let sink = DiagnosticSink::new();
        let src = "IMPLEMENTATION MODULE G; \
             PROCEDURE A(p0 : INTEGER) : INTEGER; \
               PROCEDURE B(q : INTEGER) : INTEGER; BEGIN RETURN q + p0 END B; \
             BEGIN RETURN B(1) END A; \
             BEGIN END G.";
        let f = map.add("g.mod", src);
        let t = lex_file(&f, &interner, &sink);
        let m = parse_implementation(&t, &interner, &sink).expect("parses");
        let printed = print_implementation(&m, &interner);
        assert!(printed.contains("PROCEDURE B(q : INTEGER) : INTEGER;"));
    }
}
