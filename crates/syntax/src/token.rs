//! The Modula-2+ token model.
//!
//! Reserved words (not keywords — paper §1 is explicit that reserved words
//! must determine program structure for early splitting to be possible) are
//! enumerated as distinct [`TokenKind`] variants. The table includes the
//! Modula-2 core plus the Modula-2+ extensions `LOCK`, `TRY`, `EXCEPT`,
//! `FINALLY` and `RAISE`.

use ccm2_support::ids::StreamId;
use ccm2_support::intern::Symbol;
use ccm2_support::source::{FileId, Span};
use std::fmt;

/// The kind (and payload) of one lexical token.
///
/// All payloads are `Copy`: identifiers and strings carry interned
/// [`Symbol`]s, reals carry their IEEE bit pattern (so the type can be
/// `Eq`/`Hash`, which the splitter's once-only table and the property tests
/// rely on).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TokenKind {
    // ----- payload-carrying tokens -----
    /// An identifier.
    Ident(Symbol),
    /// An integer literal (decimal, `0..7`+`B` octal, or hex+`H`).
    Int(i64),
    /// A real literal, stored as IEEE-754 bits.
    Real(u64),
    /// A string literal (contents interned, quotes stripped).
    Str(Symbol),
    /// A single-character literal.
    CharLit(u8),
    /// Marker left by the splitter in a parent stream where a procedure
    /// body was diverted to the stream with the given id (paper §3: the
    /// main module body is "stripped of all embedded streams").
    ProcStub(StreamId),

    // ----- reserved words (Modula-2) -----
    /// `AND`
    And,
    /// `ARRAY`
    Array,
    /// `BEGIN`
    Begin,
    /// `BY`
    By,
    /// `CASE`
    Case,
    /// `CONST`
    Const,
    /// `DEFINITION`
    Definition,
    /// `DIV`
    Div,
    /// `DO`
    Do,
    /// `ELSE`
    Else,
    /// `ELSIF`
    Elsif,
    /// `END`
    End,
    /// `EXIT`
    Exit,
    /// `EXPORT`
    Export,
    /// `FOR`
    For,
    /// `FROM`
    From,
    /// `IF`
    If,
    /// `IMPLEMENTATION`
    Implementation,
    /// `IMPORT`
    Import,
    /// `IN`
    In,
    /// `LOOP`
    Loop,
    /// `MOD`
    Mod,
    /// `MODULE`
    Module,
    /// `NOT`
    Not,
    /// `OF`
    Of,
    /// `OR`
    Or,
    /// `POINTER`
    Pointer,
    /// `PROCEDURE`
    Procedure,
    /// `QUALIFIED`
    Qualified,
    /// `RECORD`
    Record,
    /// `REPEAT`
    Repeat,
    /// `RETURN`
    Return,
    /// `SET`
    Set,
    /// `THEN`
    Then,
    /// `TO`
    To,
    /// `TYPE`
    Type,
    /// `UNTIL`
    Until,
    /// `VAR`
    Var,
    /// `WHILE`
    While,
    /// `WITH`
    With,

    // ----- reserved words (Modula-2+ extensions) -----
    /// `LOCK` (Modula-2+ mutual exclusion statement)
    Lock,
    /// `TRY` (Modula-2+ exception handling)
    Try,
    /// `EXCEPT`
    Except,
    /// `FINALLY`
    Finally,
    /// `RAISE`
    Raise,

    // ----- operators and delimiters -----
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `:=`
    Assign,
    /// `&` (synonym for `AND`)
    Amp,
    /// `=`
    Eq,
    /// `#` (not-equal; `<>` lexes to the same token)
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~` (synonym for `NOT`)
    Tilde,
    /// `^`
    Caret,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `|`
    Bar,
    /// End of the token stream.
    Eof,
}

impl TokenKind {
    /// Looks up a reserved word; returns `None` for ordinary identifiers.
    pub fn reserved(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "AND" => And,
            "ARRAY" => Array,
            "BEGIN" => Begin,
            "BY" => By,
            "CASE" => Case,
            "CONST" => Const,
            "DEFINITION" => Definition,
            "DIV" => Div,
            "DO" => Do,
            "ELSE" => Else,
            "ELSIF" => Elsif,
            "END" => End,
            "EXIT" => Exit,
            "EXPORT" => Export,
            "FOR" => For,
            "FROM" => From,
            "IF" => If,
            "IMPLEMENTATION" => Implementation,
            "IMPORT" => Import,
            "IN" => In,
            "LOOP" => Loop,
            "MOD" => Mod,
            "MODULE" => Module,
            "NOT" => Not,
            "OF" => Of,
            "OR" => Or,
            "POINTER" => Pointer,
            "PROCEDURE" => Procedure,
            "QUALIFIED" => Qualified,
            "RECORD" => Record,
            "REPEAT" => Repeat,
            "RETURN" => Return,
            "SET" => Set,
            "THEN" => Then,
            "TO" => To,
            "TYPE" => Type,
            "UNTIL" => Until,
            "VAR" => Var,
            "WHILE" => While,
            "WITH" => With,
            "LOCK" => Lock,
            "TRY" => Try,
            "EXCEPT" => Except,
            "FINALLY" => Finally,
            "RAISE" => Raise,
            _ => return None,
        })
    }

    /// Returns `true` for reserved-word tokens.
    pub fn is_reserved_word(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            And | Array
                | Begin
                | By
                | Case
                | Const
                | Definition
                | Div
                | Do
                | Else
                | Elsif
                | End
                | Exit
                | Export
                | For
                | From
                | If
                | Implementation
                | Import
                | In
                | Loop
                | Mod
                | Module
                | Not
                | Of
                | Or
                | Pointer
                | Procedure
                | Qualified
                | Record
                | Repeat
                | Return
                | Set
                | Then
                | To
                | Type
                | Until
                | Var
                | While
                | With
                | Lock
                | Try
                | Except
                | Finally
                | Raise
        )
    }

    /// Reserved words that open a construct terminated by `END`.
    ///
    /// This is the heart of the splitter's finite-state recognizer: to find
    /// where a procedure ends it must balance every `END`-consuming opener.
    /// (`REPEAT` closes with `UNTIL`, not `END`, so it is absent; `BEGIN`
    /// does not open its own `END` — it belongs to the enclosing
    /// procedure/module.)
    pub fn opens_end_block(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            If | Case | While | For | With | Loop | Record | Lock | Try | Module
        )
    }

    /// A short human-readable rendering for diagnostics.
    pub fn describe(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Ident(_) => "identifier",
            Int(_) => "integer literal",
            Real(_) => "real literal",
            Str(_) => "string literal",
            CharLit(_) => "character literal",
            ProcStub(_) => "<procedure stub>",
            And => "AND",
            Array => "ARRAY",
            Begin => "BEGIN",
            By => "BY",
            Case => "CASE",
            Const => "CONST",
            Definition => "DEFINITION",
            Div => "DIV",
            Do => "DO",
            Else => "ELSE",
            Elsif => "ELSIF",
            End => "END",
            Exit => "EXIT",
            Export => "EXPORT",
            For => "FOR",
            From => "FROM",
            If => "IF",
            Implementation => "IMPLEMENTATION",
            Import => "IMPORT",
            In => "IN",
            Loop => "LOOP",
            Mod => "MOD",
            Module => "MODULE",
            Not => "NOT",
            Of => "OF",
            Or => "OR",
            Pointer => "POINTER",
            Procedure => "PROCEDURE",
            Qualified => "QUALIFIED",
            Record => "RECORD",
            Repeat => "REPEAT",
            Return => "RETURN",
            Set => "SET",
            Then => "THEN",
            To => "TO",
            Type => "TYPE",
            Until => "UNTIL",
            Var => "VAR",
            While => "WHILE",
            With => "WITH",
            Lock => "LOCK",
            Try => "TRY",
            Except => "EXCEPT",
            Finally => "FINALLY",
            Raise => "RAISE",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Assign => ":=",
            Amp => "&",
            Eq => "=",
            Neq => "#",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Tilde => "~",
            Caret => "^",
            Dot => ".",
            DotDot => "..",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Bar => "|",
            Eof => "<eof>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.describe())
    }
}

/// One lexical token: kind plus provenance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// Byte range within `file`.
    pub span: Span,
    /// The file the token was lexed from.
    pub file: FileId,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span, file: FileId) -> Token {
        Token { kind, span, file }
    }

    /// Returns the identifier symbol if this is an `Ident` token.
    pub fn ident(&self) -> Option<Symbol> {
        match self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_word_lookup() {
        assert_eq!(TokenKind::reserved("MODULE"), Some(TokenKind::Module));
        assert_eq!(TokenKind::reserved("LOCK"), Some(TokenKind::Lock));
        assert_eq!(TokenKind::reserved("module"), None, "case-sensitive");
        assert_eq!(TokenKind::reserved("Foo"), None);
    }

    #[test]
    fn reserved_words_classified() {
        assert!(TokenKind::Procedure.is_reserved_word());
        assert!(!TokenKind::Plus.is_reserved_word());
        assert!(!TokenKind::Ident(Symbol::from_index(0)).is_reserved_word());
    }

    #[test]
    fn end_block_openers() {
        assert!(TokenKind::If.opens_end_block());
        assert!(TokenKind::Record.opens_end_block());
        assert!(TokenKind::Lock.opens_end_block());
        assert!(
            !TokenKind::Repeat.opens_end_block(),
            "REPEAT ends with UNTIL"
        );
        assert!(!TokenKind::Begin.opens_end_block());
        assert!(
            !TokenKind::Procedure.opens_end_block(),
            "handled separately"
        );
    }

    #[test]
    fn every_reserved_word_round_trips_through_describe() {
        for word in [
            "AND",
            "ARRAY",
            "BEGIN",
            "BY",
            "CASE",
            "CONST",
            "DEFINITION",
            "DIV",
            "DO",
            "ELSE",
            "ELSIF",
            "END",
            "EXIT",
            "EXPORT",
            "FOR",
            "FROM",
            "IF",
            "IMPLEMENTATION",
            "IMPORT",
            "IN",
            "LOOP",
            "MOD",
            "MODULE",
            "NOT",
            "OF",
            "OR",
            "POINTER",
            "PROCEDURE",
            "QUALIFIED",
            "RECORD",
            "REPEAT",
            "RETURN",
            "SET",
            "THEN",
            "TO",
            "TYPE",
            "UNTIL",
            "VAR",
            "WHILE",
            "WITH",
            "LOCK",
            "TRY",
            "EXCEPT",
            "FINALLY",
            "RAISE",
        ] {
            let kind = TokenKind::reserved(word).expect("is reserved");
            assert_eq!(kind.describe(), word);
        }
    }
}
