//! A stack-machine interpreter for merged M-code images.
//!
//! The paper's compiler produced Vax object code; this reproduction
//! produces M-code (see [`ccm2_codegen::ir`]) and this crate executes it.
//! Its purpose in the reproduction is *verification*: end-to-end tests
//! compile Modula-2+ programs with both the sequential and the concurrent
//! compiler and check that the merged images not only match structurally
//! but also *run* and produce the expected output.
//!
//! # Examples
//!
//! ```
//! use ccm2_support::{Interner, NullMeter};
//! use ccm2_codegen::ir::{CodeUnit, Instr};
//! use ccm2_codegen::merge::Merger;
//! use ccm2_vm::Vm;
//! use std::sync::Arc;
//!
//! let interner = Arc::new(Interner::new());
//! let m = interner.intern("M");
//! let merger = Merger::new(m, Arc::clone(&interner));
//! let mut unit = CodeUnit::new(m, 0);
//! unit.code.push(Instr::PushInt(42));
//! unit.code.push(Instr::PushInt(4));
//! unit.code.push(Instr::CallBuiltin { builtin: ccm2_sema::builtins::Builtin::WriteInt, argc: 2 });
//! unit.code.push(Instr::Halt);
//! merger.add_unit(unit, &NullMeter);
//! let image = merger.finish();
//! let mut vm = Vm::new(Arc::clone(&interner));
//! let out = vm.run(&image).expect("runs");
//! assert_eq!(out.trim(), "42");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ccm2_codegen::ir::{CodeUnit, Instr, Shape};
use ccm2_codegen::merge::ModuleImage;
use ccm2_sema::builtins::Builtin;
use ccm2_support::intern::{Interner, Symbol};

/// A runtime value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Integer / ordinal.
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(u8),
    /// Set (64-bit mask).
    Set(u64),
    /// String.
    Str(Symbol),
    /// NIL or an allocated heap cell.
    Pointer(Option<usize>),
    /// A procedure value.
    ProcRef(Symbol),
    /// An address (VAR parameters, WITH temps).
    Addr(Address),
    /// An array.
    Array(Vec<Value>),
    /// A record.
    Record(Vec<Value>),
}

impl Value {
    fn default_of(shape: &Shape) -> Value {
        match shape {
            Shape::Int => Value::Int(0),
            Shape::Real => Value::Real(0.0),
            Shape::Bool => Value::Bool(false),
            Shape::Char => Value::Char(0),
            Shape::Set => Value::Set(0),
            Shape::Ptr | Shape::ProcVal | Shape::Addr => Value::Pointer(None),
            Shape::Str => Value::Str(Symbol::from_index(0)),
            Shape::Array(elem, len) => {
                Value::Array((0..*len).map(|_| Value::default_of(elem)).collect())
            }
            Shape::Record(fields) => Value::Record(fields.iter().map(Value::default_of).collect()),
        }
    }

    fn as_int(&self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Char(c) => Ok(*c as i64),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(VmError::new(format!("expected integer, got {other:?}"))),
        }
    }

    fn as_bool(&self) -> Result<bool, VmError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(VmError::new(format!("expected boolean, got {other:?}"))),
        }
    }
}

/// Where an address points: a global slot, a frame slot, or a heap cell —
/// plus a selection path of field/element steps.
#[derive(Clone, PartialEq, Debug)]
pub struct Address {
    base: Base,
    path: Vec<usize>,
}

#[derive(Clone, PartialEq, Debug)]
enum Base {
    Global { area: usize, slot: usize },
    Frame { frame: usize, slot: usize },
    Heap { cell: usize },
}

/// A runtime error (bounds violation, NIL dereference, missing procedure,
/// step-budget exhaustion…).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VmError {
    /// Human-readable description.
    pub message: String,
}

impl VmError {
    fn new(message: impl Into<String>) -> VmError {
        VmError {
            message: message.into(),
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for VmError {}

struct Frame {
    slots: Vec<Value>,
    static_link: Option<usize>,
    unit: usize,
    pc: usize,
    stack_base: usize,
}

/// The interpreter.
pub struct Vm {
    interner: Arc<Interner>,
    /// Maximum instructions executed before aborting (guards tests
    /// against generated infinite loops).
    pub step_budget: u64,
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vm(step_budget = {})", self.step_budget)
    }
}

impl Vm {
    /// Creates a VM resolving strings through `interner`.
    pub fn new(interner: Arc<Interner>) -> Vm {
        Vm {
            interner,
            step_budget: 50_000_000,
        }
    }

    /// Runs the image's entry unit (the module body) to completion and
    /// returns everything the program wrote.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on any runtime fault: NIL dereference, index
    /// out of bounds, call to an unlinked external procedure, or step
    /// budget exhaustion.
    pub fn run(&mut self, image: &ModuleImage) -> Result<String, VmError> {
        let entry = image
            .unit_index(image.entry)
            .ok_or_else(|| VmError::new("image has no entry unit"))?;
        let mut st = State {
            image,
            interner: &self.interner,
            globals: image
                .globals
                .iter()
                .map(|g| g.slots.iter().map(Value::default_of).collect())
                .collect(),
            global_index: image
                .globals
                .iter()
                .enumerate()
                .map(|(ix, g)| (g.module, ix))
                .collect(),
            unit_index: image
                .units
                .iter()
                .enumerate()
                .map(|(ix, u)| (u.name, ix))
                .collect(),
            heap: Vec::new(),
            frames: Vec::new(),
            stack: Vec::new(),
            output: String::new(),
            steps: 0,
            budget: self.step_budget,
        };
        st.push_frame(entry, None, 0)?;
        st.exec()?;
        Ok(st.output)
    }
}

struct State<'a> {
    image: &'a ModuleImage,
    interner: &'a Interner,
    globals: Vec<Vec<Value>>,
    global_index: HashMap<Symbol, usize>,
    // Call dispatch by unit name: image units are sorted by name string,
    // so per-call symbol lookups get a map instead of a linear scan.
    unit_index: HashMap<Symbol, usize>,
    heap: Vec<Option<Value>>,
    frames: Vec<Frame>,
    stack: Vec<Value>,
    output: String,
    steps: u64,
    budget: u64,
}

impl<'a> State<'a> {
    fn unit(&self, ix: usize) -> &'a CodeUnit {
        &self.image.units[ix]
    }

    fn push_frame(
        &mut self,
        unit_ix: usize,
        static_link: Option<usize>,
        argc: usize,
    ) -> Result<(), VmError> {
        let unit = self.unit(unit_ix);
        if argc != unit.param_count as usize {
            return Err(VmError::new(format!(
                "call to {} with {argc} args, expected {}",
                self.interner.resolve(unit.name),
                unit.param_count
            )));
        }
        let mut slots: Vec<Value> = unit.frame.iter().map(Value::default_of).collect();
        // Arguments were pushed left to right; pop right to left.
        for slot in (0..argc).rev() {
            let v = self
                .stack
                .pop()
                .ok_or_else(|| VmError::new("stack underflow passing arguments"))?;
            slots[slot] = v;
        }
        self.frames.push(Frame {
            slots,
            static_link,
            unit: unit_ix,
            pc: 0,
            stack_base: self.stack.len(),
        });
        Ok(())
    }

    fn pop(&mut self) -> Result<Value, VmError> {
        self.stack
            .pop()
            .ok_or_else(|| VmError::new("operand stack underflow"))
    }

    fn pop_addr(&mut self) -> Result<Address, VmError> {
        match self.pop()? {
            Value::Addr(a) => Ok(a),
            other => Err(VmError::new(format!("expected address, got {other:?}"))),
        }
    }

    fn frame_up(&self, hops: u32) -> Result<usize, VmError> {
        let mut ix = self.frames.len() - 1;
        for _ in 0..hops {
            ix = self.frames[ix]
                .static_link
                .ok_or_else(|| VmError::new("static link chain exhausted"))?;
        }
        Ok(ix)
    }

    fn read(&self, addr: &Address) -> Result<Value, VmError> {
        let mut v: &Value = match &addr.base {
            Base::Global { area, slot } => self.globals[*area]
                .get(*slot)
                .ok_or_else(|| VmError::new("global slot out of range"))?,
            Base::Frame { frame, slot } => self.frames[*frame]
                .slots
                .get(*slot)
                .ok_or_else(|| VmError::new("frame slot out of range"))?,
            Base::Heap { cell } => self.heap[*cell]
                .as_ref()
                .ok_or_else(|| VmError::new("use of disposed heap cell"))?,
        };
        for &step in &addr.path {
            v = match v {
                Value::Array(elems) => elems
                    .get(step)
                    .ok_or_else(|| VmError::new("array index out of bounds"))?,
                Value::Record(fields) => fields
                    .get(step)
                    .ok_or_else(|| VmError::new("record field out of range"))?,
                other => return Err(VmError::new(format!("path into scalar {other:?}"))),
            };
        }
        Ok(v.clone())
    }

    fn write(&mut self, addr: &Address, value: Value) -> Result<(), VmError> {
        let root: &mut Value = match &addr.base {
            Base::Global { area, slot } => self.globals[*area]
                .get_mut(*slot)
                .ok_or_else(|| VmError::new("global slot out of range"))?,
            Base::Frame { frame, slot } => self.frames[*frame]
                .slots
                .get_mut(*slot)
                .ok_or_else(|| VmError::new("frame slot out of range"))?,
            Base::Heap { cell } => self.heap[*cell]
                .as_mut()
                .ok_or_else(|| VmError::new("use of disposed heap cell"))?,
        };
        let mut v = root;
        for &step in &addr.path {
            v = match v {
                Value::Array(elems) => elems
                    .get_mut(step)
                    .ok_or_else(|| VmError::new("array index out of bounds"))?,
                Value::Record(fields) => fields
                    .get_mut(step)
                    .ok_or_else(|| VmError::new("record field out of range"))?,
                other => return Err(VmError::new(format!("path into scalar {other:?}"))),
            };
        }
        *v = value;
        Ok(())
    }

    fn exec(&mut self) -> Result<(), VmError> {
        'outer: while let Some(frame) = self.frames.last() {
            let unit_ix = frame.unit;
            let unit = self.unit(unit_ix);
            let pc = frame.pc;
            if pc >= unit.code.len() {
                // Fell off the unit: implicit return.
                self.frames.pop();
                continue;
            }
            self.steps += 1;
            if self.steps > self.budget {
                return Err(VmError::new("step budget exhausted"));
            }
            self.frames.last_mut().expect("frame").pc = pc + 1;
            let ins = &unit.code[pc];
            match ins {
                Instr::PushInt(v) => self.stack.push(Value::Int(*v)),
                Instr::PushReal(bits) => self.stack.push(Value::Real(f64::from_bits(*bits))),
                Instr::PushBool(b) => self.stack.push(Value::Bool(*b)),
                Instr::PushChar(c) => self.stack.push(Value::Char(*c)),
                Instr::PushStr(s) => self.stack.push(Value::Str(*s)),
                Instr::PushNil => self.stack.push(Value::Pointer(None)),
                Instr::PushSet(m) => self.stack.push(Value::Set(*m)),
                Instr::PushProc(name) => self.stack.push(Value::ProcRef(*name)),
                Instr::PushAddr { level_up, slot } => {
                    let frame = self.frame_up(*level_up)?;
                    self.stack.push(Value::Addr(Address {
                        base: Base::Frame {
                            frame,
                            slot: *slot as usize,
                        },
                        path: Vec::new(),
                    }));
                }
                Instr::PushGlobalAddr { module, slot } => {
                    let area = *self.global_index.get(module).ok_or_else(|| {
                        VmError::new(format!(
                            "unknown global area `{}`",
                            self.interner.resolve(*module)
                        ))
                    })?;
                    self.stack.push(Value::Addr(Address {
                        base: Base::Global {
                            area,
                            slot: *slot as usize,
                        },
                        path: Vec::new(),
                    }));
                }
                Instr::AddrField(ix) => {
                    let mut a = self.pop_addr()?;
                    a.path.push(*ix as usize);
                    self.stack.push(Value::Addr(a));
                }
                Instr::AddrIndex { lo, len } => {
                    let ix = self.pop()?.as_int()?;
                    let mut a = self.pop_addr()?;
                    if *len >= 0 && (ix < *lo || ix >= lo + len) {
                        return Err(VmError::new(format!(
                            "index {ix} out of bounds {lo}..{}",
                            lo + len - 1
                        )));
                    }
                    if ix < *lo {
                        return Err(VmError::new(format!("index {ix} below lower bound {lo}")));
                    }
                    a.path.push((ix - lo) as usize);
                    self.stack.push(Value::Addr(a));
                }
                Instr::AddrDeref => {
                    let a = self.pop_addr()?;
                    match self.read(&a)? {
                        Value::Pointer(Some(cell)) => self.stack.push(Value::Addr(Address {
                            base: Base::Heap { cell },
                            path: Vec::new(),
                        })),
                        Value::Pointer(None) => return Err(VmError::new("NIL dereference")),
                        Value::Addr(inner) => self.stack.push(Value::Addr(inner)),
                        other => {
                            return Err(VmError::new(format!(
                                "dereferencing non-pointer {other:?}"
                            )))
                        }
                    }
                }
                Instr::Load => {
                    let a = self.pop_addr()?;
                    let v = self.read(&a)?;
                    self.stack.push(v);
                }
                Instr::Store => {
                    let v = self.pop()?;
                    let a = self.pop_addr()?;
                    self.write(&a, v)?;
                }
                Instr::Dup => {
                    let v = self.pop()?;
                    self.stack.push(v.clone());
                    self.stack.push(v);
                }
                Instr::Pop => {
                    let _ = self.pop()?;
                }
                Instr::Add | Instr::Sub | Instr::Mul | Instr::DivReal => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    let r = match (&a, &b) {
                        (Value::Int(x), Value::Int(y)) => match ins {
                            Instr::Add => Value::Int(x.wrapping_add(*y)),
                            Instr::Sub => Value::Int(x.wrapping_sub(*y)),
                            Instr::Mul => Value::Int(x.wrapping_mul(*y)),
                            _ => return Err(VmError::new("`/` on integers")),
                        },
                        (Value::Char(x), Value::Int(y)) | (Value::Int(y), Value::Char(x)) => {
                            // CHAR arithmetic via FOR-loop stepping.
                            let n = match ins {
                                Instr::Add => *x as i64 + y,
                                Instr::Sub => *x as i64 - y,
                                _ => return Err(VmError::new("char arithmetic")),
                            };
                            if !(0..=255).contains(&n) {
                                return Err(VmError::new("CHAR arithmetic out of range"));
                            }
                            Value::Char(n as u8)
                        }
                        (Value::Real(x), Value::Real(y)) => match ins {
                            Instr::Add => Value::Real(x + y),
                            Instr::Sub => Value::Real(x - y),
                            Instr::Mul => Value::Real(x * y),
                            _ => {
                                if *y == 0.0 {
                                    return Err(VmError::new("real division by zero"));
                                }
                                Value::Real(x / y)
                            }
                        },
                        (Value::Set(x), Value::Set(y)) => match ins {
                            Instr::Add => Value::Set(x | y),
                            Instr::Sub => Value::Set(x & !y),
                            Instr::Mul => Value::Set(x & y),
                            _ => Value::Set(x ^ y),
                        },
                        _ => {
                            return Err(VmError::new(format!(
                                "type error in arithmetic: {a:?} vs {b:?}"
                            )))
                        }
                    };
                    self.stack.push(r);
                }
                Instr::DivInt | Instr::ModInt => {
                    let b = self.pop()?.as_int()?;
                    let a = self.pop()?.as_int()?;
                    if b == 0 {
                        return Err(VmError::new("integer division by zero"));
                    }
                    self.stack.push(Value::Int(if matches!(ins, Instr::DivInt) {
                        a.div_euclid(b)
                    } else {
                        a.rem_euclid(b)
                    }));
                }
                Instr::Neg => {
                    let v = self.pop()?;
                    let r = match v {
                        Value::Int(x) => Value::Int(x.wrapping_neg()),
                        Value::Real(x) => Value::Real(-x),
                        other => return Err(VmError::new(format!("negating {other:?}"))),
                    };
                    self.stack.push(r);
                }
                Instr::Not => {
                    let v = self.pop()?.as_bool()?;
                    self.stack.push(Value::Bool(!v));
                }
                Instr::CmpEq
                | Instr::CmpNe
                | Instr::CmpLt
                | Instr::CmpLe
                | Instr::CmpGt
                | Instr::CmpGe => {
                    let b = self.pop()?;
                    let a = self.pop()?;
                    let ord = compare(&a, &b)?;
                    let r = match ins {
                        Instr::CmpEq => ord == std::cmp::Ordering::Equal,
                        Instr::CmpNe => ord != std::cmp::Ordering::Equal,
                        Instr::CmpLt => ord == std::cmp::Ordering::Less,
                        Instr::CmpLe => ord != std::cmp::Ordering::Greater,
                        Instr::CmpGt => ord == std::cmp::Ordering::Greater,
                        _ => ord != std::cmp::Ordering::Less,
                    };
                    self.stack.push(Value::Bool(r));
                }
                Instr::InSet => {
                    let s = match self.pop()? {
                        Value::Set(m) => m,
                        other => return Err(VmError::new(format!("IN on non-set {other:?}"))),
                    };
                    let e = self.pop()?.as_int()?;
                    self.stack
                        .push(Value::Bool((0..64).contains(&e) && (s >> e) & 1 == 1));
                }
                Instr::SetIncl => {
                    let e = self.pop()?.as_int()?;
                    let s = match self.pop()? {
                        Value::Set(m) => m,
                        other => return Err(VmError::new(format!("INCL on non-set {other:?}"))),
                    };
                    if !(0..64).contains(&e) {
                        return Err(VmError::new("set element out of range"));
                    }
                    self.stack.push(Value::Set(s | (1 << e)));
                }
                Instr::SetInclRange => {
                    let hi = self.pop()?.as_int()?;
                    let lo = self.pop()?.as_int()?;
                    let s = match self.pop()? {
                        Value::Set(m) => m,
                        other => return Err(VmError::new(format!("range on non-set {other:?}"))),
                    };
                    if !(0..64).contains(&lo) || !(0..64).contains(&hi) {
                        return Err(VmError::new("set range out of bounds"));
                    }
                    let mut m = s;
                    let mut k = lo;
                    while k <= hi {
                        m |= 1 << k;
                        k += 1;
                    }
                    self.stack.push(Value::Set(m));
                }
                Instr::Jump(t) => {
                    self.frames.last_mut().expect("frame").pc = *t as usize;
                }
                Instr::JumpIfFalse(t) => {
                    if !self.pop()?.as_bool()? {
                        self.frames.last_mut().expect("frame").pc = *t as usize;
                    }
                }
                Instr::JumpIfTrue(t) => {
                    if self.pop()?.as_bool()? {
                        self.frames.last_mut().expect("frame").pc = *t as usize;
                    }
                }
                Instr::Call {
                    target,
                    argc,
                    link_up,
                } => {
                    let callee = self.unit_index.get(target).copied().ok_or_else(|| {
                        VmError::new(format!(
                            "call to unlinked external procedure `{}`",
                            self.interner.resolve(*target)
                        ))
                    })?;
                    let link = if *link_up == u32::MAX {
                        None
                    } else {
                        Some(self.frame_up(*link_up)?)
                    };
                    self.push_frame(callee, link, *argc as usize)?;
                }
                Instr::CallIndirect { argc } => {
                    let target = match self.pop()? {
                        Value::ProcRef(name) => name,
                        Value::Pointer(None) => {
                            return Err(VmError::new("call through NIL procedure value"))
                        }
                        other => {
                            return Err(VmError::new(format!(
                                "call through non-procedure {other:?}"
                            )))
                        }
                    };
                    let callee = self.unit_index.get(&target).copied().ok_or_else(|| {
                        VmError::new(format!(
                            "call to unlinked external procedure `{}`",
                            self.interner.resolve(target)
                        ))
                    })?;
                    self.push_frame(callee, None, *argc as usize)?;
                }
                Instr::CallBuiltin { builtin, argc } => {
                    self.builtin(*builtin, *argc as usize)?;
                }
                Instr::Return => {
                    let f = self.frames.pop().expect("frame");
                    self.stack.truncate(f.stack_base);
                }
                Instr::ReturnValue => {
                    let v = self.pop()?;
                    let f = self.frames.pop().expect("frame");
                    self.stack.truncate(f.stack_base);
                    self.stack.push(v);
                }
                Instr::Halt => break 'outer,
                Instr::NewCell { shape } => {
                    let a = self.pop_addr()?;
                    let shape = &unit.shapes[*shape as usize];
                    let cell = self.heap.len();
                    self.heap.push(Some(Value::default_of(shape)));
                    self.write(&a, Value::Pointer(Some(cell)))?;
                }
                Instr::DisposeCell => {
                    let a = self.pop_addr()?;
                    match self.read(&a)? {
                        Value::Pointer(Some(cell)) => {
                            self.heap[cell] = None;
                            self.write(&a, Value::Pointer(None))?;
                        }
                        Value::Pointer(None) => return Err(VmError::new("DISPOSE of NIL")),
                        other => {
                            return Err(VmError::new(format!("DISPOSE of non-pointer {other:?}")))
                        }
                    }
                }
                Instr::Nop => {}
            }
        }
        Ok(())
    }

    fn builtin(&mut self, b: Builtin, argc: usize) -> Result<(), VmError> {
        use Builtin::*;
        match b {
            WriteLn => self.output.push('\n'),
            WriteInt | WriteCard => {
                let w = self.pop()?.as_int()?;
                let v = self.pop()?.as_int()?;
                let s = format!("{v}");
                let pad = (w as usize).saturating_sub(s.len());
                self.output.push_str(&" ".repeat(pad));
                self.output.push_str(&s);
            }
            WriteReal => {
                let w = self.pop()?.as_int()?;
                let v = match self.pop()? {
                    Value::Real(r) => r,
                    other => return Err(VmError::new(format!("WriteReal of {other:?}"))),
                };
                let s = format!("{v:.6}");
                let pad = (w as usize).saturating_sub(s.len());
                self.output.push_str(&" ".repeat(pad));
                self.output.push_str(&s);
            }
            WriteChar => match self.pop()? {
                Value::Char(c) => self.output.push(c as char),
                other => return Err(VmError::new(format!("WriteChar of {other:?}"))),
            },
            WriteString => match self.pop()? {
                Value::Str(s) => self.output.push_str(&self.interner.resolve(s)),
                Value::Char(c) => self.output.push(c as char),
                Value::Array(elems) => {
                    for e in elems {
                        match e {
                            Value::Char(0) => break,
                            Value::Char(c) => self.output.push(c as char),
                            other => {
                                return Err(VmError::new(format!(
                                    "WriteString of non-char array element {other:?}"
                                )))
                            }
                        }
                    }
                }
                other => return Err(VmError::new(format!("WriteString of {other:?}"))),
            },
            Inc | Dec => {
                let amount = if argc == 2 { self.pop()?.as_int()? } else { 1 };
                let a = self.pop_addr()?;
                let cur = self.read(&a)?;
                let next = match cur {
                    Value::Int(v) => Value::Int(if b == Inc { v + amount } else { v - amount }),
                    Value::Char(c) => {
                        let n = if b == Inc {
                            c as i64 + amount
                        } else {
                            c as i64 - amount
                        };
                        if !(0..=255).contains(&n) {
                            return Err(VmError::new("CHAR INC/DEC out of range"));
                        }
                        Value::Char(n as u8)
                    }
                    other => return Err(VmError::new(format!("INC/DEC of {other:?}"))),
                };
                self.write(&a, next)?;
            }
            Incl | Excl => {
                let e = self.pop()?.as_int()?;
                let a = self.pop_addr()?;
                let cur = match self.read(&a)? {
                    Value::Set(m) => m,
                    other => return Err(VmError::new(format!("INCL/EXCL of {other:?}"))),
                };
                if !(0..64).contains(&e) {
                    return Err(VmError::new("set element out of range"));
                }
                let next = if b == Incl {
                    cur | (1 << e)
                } else {
                    cur & !(1 << e)
                };
                self.write(&a, Value::Set(next))?;
            }
            Abs => {
                let v = self.pop()?;
                let r = match v {
                    Value::Int(x) => Value::Int(x.abs()),
                    Value::Real(x) => Value::Real(x.abs()),
                    other => return Err(VmError::new(format!("ABS of {other:?}"))),
                };
                self.stack.push(r);
            }
            Cap => match self.pop()? {
                Value::Char(c) => self.stack.push(Value::Char(c.to_ascii_uppercase())),
                other => return Err(VmError::new(format!("CAP of {other:?}"))),
            },
            Chr => {
                let v = self.pop()?.as_int()?;
                if !(0..=255).contains(&v) {
                    return Err(VmError::new("CHR out of range"));
                }
                self.stack.push(Value::Char(v as u8));
            }
            Ord => {
                let v = self.pop()?.as_int()?;
                self.stack.push(Value::Int(v));
            }
            Odd => {
                let v = self.pop()?.as_int()?;
                self.stack.push(Value::Bool(v.rem_euclid(2) == 1));
            }
            Trunc => {
                let v = match self.pop()? {
                    Value::Real(r) => r,
                    other => return Err(VmError::new(format!("TRUNC of {other:?}"))),
                };
                self.stack.push(Value::Int(v as i64));
            }
            Float => {
                let v = self.pop()?.as_int()?;
                self.stack.push(Value::Real(v as f64));
            }
            High => match self.pop()? {
                Value::Array(elems) => self.stack.push(Value::Int(elems.len() as i64 - 1)),
                Value::Str(s) => self
                    .stack
                    .push(Value::Int(self.interner.resolve(s).len() as i64 - 1)),
                other => return Err(VmError::new(format!("HIGH of {other:?}"))),
            },
            Sin | Cos | Sqrt | Exp | Ln => {
                let v = match self.pop()? {
                    Value::Real(r) => r,
                    Value::Int(i) => i as f64,
                    other => return Err(VmError::new(format!("math builtin of {other:?}"))),
                };
                let r = match b {
                    Sin => v.sin(),
                    Cos => v.cos(),
                    Sqrt => {
                        if v < 0.0 {
                            return Err(VmError::new("sqrt of negative"));
                        }
                        v.sqrt()
                    }
                    Exp => v.exp(),
                    _ => {
                        if v <= 0.0 {
                            return Err(VmError::new("ln of non-positive"));
                        }
                        v.ln()
                    }
                };
                self.stack.push(Value::Real(r));
            }
            Min | Max | Val | New | Dispose | Halt => {
                return Err(VmError::new(format!(
                    "builtin {b:?} should have been compiled away"
                )))
            }
        }
        Ok(())
    }
}

fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering, VmError> {
    use std::cmp::Ordering;
    let ord = match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Int(x), Value::Char(y)) => x.cmp(&(*y as i64)),
        (Value::Char(x), Value::Int(y)) => (*x as i64).cmp(y),
        (Value::Char(x), Value::Char(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Real(x), Value::Real(y)) => x
            .partial_cmp(y)
            .ok_or_else(|| VmError::new("NaN comparison"))?,
        (Value::Set(x), Value::Set(y)) => {
            if x == y {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        }
        (Value::Str(x), Value::Str(y)) => {
            if x == y {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        }
        (Value::Pointer(x), Value::Pointer(y)) => {
            if x == y {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        }
        (Value::ProcRef(x), Value::ProcRef(y)) => {
            if x == y {
                Ordering::Equal
            } else {
                Ordering::Less
            }
        }
        _ => return Err(VmError::new(format!("incomparable values {a:?} vs {b:?}"))),
    };
    Ok(ord)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_codegen::merge::Merger;
    use ccm2_support::work::NullMeter;

    fn run_unit(
        code: Vec<Instr>,
        frame: Vec<Shape>,
        shapes: Vec<Shape>,
    ) -> Result<String, VmError> {
        let interner = Arc::new(Interner::new());
        let m = interner.intern("M");
        let merger = Merger::new(m, Arc::clone(&interner));
        let mut unit = CodeUnit::new(m, 0);
        unit.frame = frame;
        unit.shapes = shapes;
        unit.code = code;
        merger.add_unit(unit, &NullMeter);
        let image = merger.finish();
        Vm::new(interner).run(&image)
    }

    #[test]
    fn arithmetic_and_write() {
        let out = run_unit(
            vec![
                Instr::PushInt(6),
                Instr::PushInt(7),
                Instr::Mul,
                Instr::PushInt(1),
                Instr::CallBuiltin {
                    builtin: Builtin::WriteInt,
                    argc: 2,
                },
                Instr::Halt,
            ],
            vec![],
            vec![],
        )
        .expect("runs");
        assert_eq!(out, "42");
    }

    #[test]
    fn store_load_frame_slot() {
        let out = run_unit(
            vec![
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::PushInt(5),
                Instr::Store,
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::Load,
                Instr::PushInt(0),
                Instr::CallBuiltin {
                    builtin: Builtin::WriteInt,
                    argc: 2,
                },
                Instr::Halt,
            ],
            vec![Shape::Int],
            vec![],
        )
        .expect("runs");
        assert_eq!(out, "5");
    }

    #[test]
    fn heap_new_write_read_dispose() {
        let out = run_unit(
            vec![
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::NewCell { shape: 0 },
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::AddrDeref,
                Instr::PushInt(9),
                Instr::Store,
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::AddrDeref,
                Instr::Load,
                Instr::PushInt(0),
                Instr::CallBuiltin {
                    builtin: Builtin::WriteInt,
                    argc: 2,
                },
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::DisposeCell,
                Instr::Halt,
            ],
            vec![Shape::Ptr],
            vec![Shape::Int],
        )
        .expect("runs");
        assert_eq!(out, "9");
    }

    #[test]
    fn nil_dereference_errors() {
        let err = run_unit(
            vec![
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::AddrDeref,
                Instr::Halt,
            ],
            vec![Shape::Ptr],
            vec![],
        )
        .expect_err("NIL deref");
        assert!(err.message.contains("NIL"));
    }

    #[test]
    fn unlinked_external_call_errors() {
        let interner = Arc::new(Interner::new());
        let m = interner.intern("M");
        let ext = interner.intern("Lib.DoThing");
        let merger = Merger::new(m, Arc::clone(&interner));
        let mut unit = CodeUnit::new(m, 0);
        unit.code = vec![Instr::Call {
            target: ext,
            argc: 0,
            link_up: u32::MAX,
        }];
        merger.add_unit(unit, &NullMeter);
        let image = merger.finish();
        let err = Vm::new(interner).run(&image).expect_err("unlinked");
        assert!(err.message.contains("unlinked"));
    }

    #[test]
    fn step_budget_guards_infinite_loops() {
        let interner = Arc::new(Interner::new());
        let m = interner.intern("M");
        let merger = Merger::new(m, Arc::clone(&interner));
        let mut unit = CodeUnit::new(m, 0);
        unit.code = vec![Instr::Jump(0)];
        merger.add_unit(unit, &NullMeter);
        let image = merger.finish();
        let mut vm = Vm::new(interner);
        vm.step_budget = 10_000;
        let err = vm.run(&image).expect_err("budget");
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn set_instructions() {
        let out = run_unit(
            vec![
                Instr::PushSet(0),
                Instr::PushInt(1),
                Instr::SetIncl,
                Instr::PushInt(3),
                Instr::PushInt(5),
                Instr::SetInclRange,
                Instr::PushSet(0b101010),
                Instr::Mul, // intersection: {1,3,4,5} ∩ {1,3,5} = {1,3,5}
                Instr::PushSet(0b101010),
                Instr::CmpEq,
                Instr::JumpIfFalse(13),
                Instr::PushInt(1),
                Instr::Jump(14),
                Instr::PushInt(0),
                Instr::PushInt(0),
                Instr::CallBuiltin {
                    builtin: Builtin::WriteInt,
                    argc: 2,
                },
                Instr::Halt,
            ],
            vec![],
            vec![],
        )
        .expect("runs");
        assert_eq!(out, "1");
    }

    #[test]
    fn bounds_check_fires() {
        let err = run_unit(
            vec![
                Instr::PushAddr {
                    level_up: 0,
                    slot: 0,
                },
                Instr::PushInt(10),
                Instr::AddrIndex { lo: 0, len: 5 },
                Instr::Load,
                Instr::Halt,
            ],
            vec![Shape::Array(Box::new(Shape::Int), 5)],
            vec![],
        )
        .expect_err("oob");
        assert!(err.message.contains("out of bounds"));
    }

    #[test]
    fn procedure_call_with_return_value() {
        let interner = Arc::new(Interner::new());
        let m = interner.intern("M");
        let padd = interner.intern("M.Add");
        let merger = Merger::new(m, Arc::clone(&interner));
        let mut add = CodeUnit::new(padd, 1);
        add.param_count = 2;
        add.frame = vec![Shape::Int, Shape::Int];
        add.code = vec![
            Instr::PushAddr {
                level_up: 0,
                slot: 0,
            },
            Instr::Load,
            Instr::PushAddr {
                level_up: 0,
                slot: 1,
            },
            Instr::Load,
            Instr::Add,
            Instr::ReturnValue,
        ];
        merger.add_unit(add, &NullMeter);
        let mut body = CodeUnit::new(m, 0);
        body.code = vec![
            Instr::PushInt(20),
            Instr::PushInt(22),
            Instr::Call {
                target: padd,
                argc: 2,
                link_up: u32::MAX,
            },
            Instr::PushInt(0),
            Instr::CallBuiltin {
                builtin: Builtin::WriteInt,
                argc: 2,
            },
            Instr::Halt,
        ];
        merger.add_unit(body, &NullMeter);
        let image = merger.finish();
        let out = Vm::new(interner).run(&image).expect("runs");
        assert_eq!(out, "42");
    }

    #[test]
    fn var_param_through_address() {
        // M.SetTo7(VAR x): x := 7, called with global M[0].
        let interner = Arc::new(Interner::new());
        let m = interner.intern("M");
        let pset = interner.intern("M.SetTo7");
        let merger = Merger::new(m, Arc::clone(&interner));
        merger.add_globals(m, vec![Shape::Int]);
        let mut setp = CodeUnit::new(pset, 1);
        setp.param_count = 1;
        setp.frame = vec![Shape::Addr];
        setp.code = vec![
            // slot 0 holds the caller's address; load it, store 7.
            Instr::PushAddr {
                level_up: 0,
                slot: 0,
            },
            Instr::Load,
            Instr::PushInt(7),
            Instr::Store,
            Instr::Return,
        ];
        merger.add_unit(setp, &NullMeter);
        let mut body = CodeUnit::new(m, 0);
        body.code = vec![
            Instr::PushGlobalAddr { module: m, slot: 0 },
            Instr::Call {
                target: pset,
                argc: 1,
                link_up: u32::MAX,
            },
            Instr::PushGlobalAddr { module: m, slot: 0 },
            Instr::Load,
            Instr::PushInt(0),
            Instr::CallBuiltin {
                builtin: Builtin::WriteInt,
                argc: 2,
            },
            Instr::Halt,
        ];
        merger.add_unit(body, &NullMeter);
        let image = merger.finish();
        let out = Vm::new(interner).run(&image).expect("runs");
        assert_eq!(out, "7");
    }
}
