//! ccm2-watch: always-on editor sessions over the concurrent compiler.
//!
//! A batch compiler answers "compile this module"; an editor loop asks
//! a different question — "I changed three lines, what is broken *now*?"
//! — hundreds of times an hour, and wants each answer in the time it
//! takes to glance at a diagnostics pane. This crate keeps a
//! [`Session`] alive per project: the last good parse, a warm
//! incremental-artifact store, and a bounded inbox of [`EditOp`]s.
//! Edits accumulate between checks (the in-process debounce window) and
//! are coalesced **newest-wins per target** — two edits to the same
//! procedure body collapse to the latest, exactly as a real editor's
//! buffer state supersedes its history. Each [`Session::check`] applies
//! the survivors, re-runs the concurrent driver against the warm store,
//! and returns a [`CheckReport`]: the diagnostics *delta*, which units
//! changed or degraded, warm/cold stream counts, and wall time.
//!
//! Two pieces are deliberately reused from `ccm2-serve` rather than
//! reinvented:
//!
//! * **admission** — the artifact store is serve's [`SharedStore`], the
//!   byte-budgeted LRU with single-flight admission, so a fleet of
//!   sessions shares one bounded cache exactly like a fleet of compile
//!   requests does;
//! * **dedup** — a revision's no-op key is serve's
//!   [`CompileRequest::fingerprint`], the same single-flight digest the
//!   service uses to join identical requests. If coalescing leaves the
//!   sources byte-identical to the previous revision, the compile is
//!   skipped outright and the report says [`CheckReport::deduped`].
//!
//! Unlike serve (which returns interner-independent object *bytes*),
//! sessions call [`compile_concurrent`] directly and keep the
//! [`ModuleImage`]: per-unit identity is what makes the editor-loop
//! guarantees checkable — a broken revision must degrade *only* the
//! edited procedure's unit (to the deterministic error unit the
//! recovering parser produces) while every sibling stays byte-identical
//! and warm.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccm2::{compile_concurrent, Options};
use ccm2_codegen::emit::is_error_unit;
use ccm2_codegen::ir::CodeUnit;
use ccm2_incr::{comparable_output, ArtifactStore};
use ccm2_serve::{CompileRequest, SharedStore, StoreStats};
use ccm2_support::hash::Fp128;
use ccm2_support::intern::Interner;
use ccm2_workload::{apply_edits, EditOp, GeneratedModule};

/// Errors surfaced by [`WatchService`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WatchError {
    /// No session is open under that project name.
    UnknownProject(String),
    /// The session's edit inbox is full; `check` the session to drain
    /// it before submitting more edits.
    InboxFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for WatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchError::UnknownProject(p) => write!(f, "no open session for project `{p}`"),
            WatchError::InboxFull { capacity } => {
                write!(
                    f,
                    "edit inbox full ({capacity} pending); run check to drain"
                )
            }
        }
    }
}

impl std::error::Error for WatchError {}

/// Service-wide configuration.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Byte budget of the shared artifact store (serve's LRU admission
    /// discipline; all sessions of one service share it).
    pub store_budget: u64,
    /// Maximum queued edits per session between checks.
    pub inbox_capacity: usize,
    /// Driver options template for every check. The `incremental` field
    /// is ignored — each check runs against the service's shared store.
    pub options: Options,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            store_budget: 32 << 20,
            inbox_capacity: 256,
            // One worker thread: the editor loop's latency target is
            // "faster than a cold compile at P=1", so the default
            // measures exactly that configuration.
            options: Options::threads(1),
        }
    }
}

/// What one revision's re-check found, phrased as a delta against the
/// previous revision (an editor overlay wants "what changed", not the
/// full diagnostic set again).
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The session's project name.
    pub project: String,
    /// Revision number this report answers (the initial `open` check is
    /// revision 0).
    pub revision: u64,
    /// Edits applied this revision, after coalescing.
    pub edits_applied: usize,
    /// Edits superseded by newer edits to the same target within this
    /// revision's debounce window.
    pub edits_coalesced: usize,
    /// The sources were byte-identical to the previous revision
    /// (serve-fingerprint match), so no compile ran.
    pub deduped: bool,
    /// Whether the revision compiled without errors.
    pub clean: bool,
    /// Units that are deterministic error units this revision (sorted
    /// dotted code names) — the streams the recovering parser degraded.
    pub degraded_units: Vec<String>,
    /// Units added, removed, or different from the previous revision
    /// (sorted dotted code names).
    pub changed_units: Vec<String>,
    /// Rendered diagnostics present now but not in the previous
    /// revision.
    pub diags_added: Vec<String>,
    /// Rendered diagnostics from the previous revision that are gone.
    pub diags_removed: Vec<String>,
    /// Streams spliced from the warm artifact store.
    pub warm_streams: usize,
    /// Streams compiled live.
    pub cold_streams: usize,
    /// Edit-to-report wall time for this check.
    pub wall: Duration,
}

/// A resolved unit snapshot: dotted code name plus the unit itself.
type UnitSnapshot = Vec<(String, CodeUnit)>;

/// One always-on project session.
pub struct Session {
    project: String,
    module: GeneratedModule,
    // `module.defs` behind an `Arc`, rebuilt only when an interface
    // edit lands: the fingerprint and the compile both want shared
    // ownership every check, and cloning the full library per
    // keystroke would dominate small-project checks.
    defs: Arc<ccm2_support::defs::DefLibrary>,
    interner: Arc<Interner>,
    store: Arc<SharedStore>,
    options: Options,
    inbox_capacity: usize,
    inbox: Vec<EditOp>,
    rejected_edits: u64,
    revision: u64,
    last_fp: Option<Fp128>,
    units: UnitSnapshot,
    diagnostics: Vec<String>,
    object: Option<Vec<u8>>,
}

impl Session {
    fn new(
        project: String,
        module: GeneratedModule,
        store: Arc<SharedStore>,
        options: Options,
        inbox_capacity: usize,
    ) -> Session {
        let defs = Arc::new(module.defs.clone());
        Session {
            project,
            module,
            defs,
            // One interner for the session's whole lifetime: symbols
            // stay stable across revisions, so units of revision N can
            // be compared to revision N-1 directly.
            interner: Arc::new(Interner::new()),
            store,
            options,
            inbox_capacity,
            inbox: Vec::new(),
            rejected_edits: 0,
            revision: 0,
            last_fp: None,
            units: Vec::new(),
            diagnostics: Vec::new(),
            object: None,
        }
    }

    /// The project name.
    pub fn project(&self) -> &str {
        &self.project
    }

    /// Revisions checked so far (0 before the initial check completes).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The session's current sources (all applied edits included).
    pub fn module(&self) -> &GeneratedModule {
        &self.module
    }

    /// Last revision's units as (dotted code name, unit) pairs, sorted
    /// by name.
    pub fn units(&self) -> &[(String, CodeUnit)] {
        &self.units
    }

    /// Last revision's rendered diagnostics.
    pub fn diagnostics(&self) -> &[String] {
        &self.diagnostics
    }

    /// Last revision's object image in the interner-independent
    /// encoding (comparable across sessions and to cold compiles).
    pub fn object(&self) -> Option<&[u8]> {
        self.object.as_deref()
    }

    /// Edits rejected because the inbox was full.
    pub fn rejected_edits(&self) -> u64 {
        self.rejected_edits
    }

    /// Edits currently queued.
    pub fn pending_edits(&self) -> usize {
        self.inbox.len()
    }

    fn submit(&mut self, op: EditOp) -> Result<(), WatchError> {
        if self.inbox.len() >= self.inbox_capacity {
            self.rejected_edits += 1;
            return Err(WatchError::InboxFull {
                capacity: self.inbox_capacity,
            });
        }
        self.inbox.push(op);
        Ok(())
    }

    fn check(&mut self) -> CheckReport {
        let start = Instant::now();
        let drained = std::mem::take(&mut self.inbox);
        let ops = coalesce(drained);
        let edits_coalesced = ops.superseded;
        let edits_applied = ops.survivors.len();
        if edits_applied > 0 {
            let defs_touched = ops
                .survivors
                .iter()
                .any(|op| matches!(op, EditOp::Interface { .. }));
            self.module = apply_edits(&self.module, &ops.survivors);
            if defs_touched {
                self.defs = Arc::new(self.module.defs.clone());
            }
        }

        // Serve's single-flight key doubles as the no-op detector: if
        // the coalesced edits left the sources byte-identical (or there
        // were none), skip the compile and answer from the snapshot.
        let fp = CompileRequest::new(
            0,
            self.module.name.clone(),
            self.module.source.clone(),
            Arc::clone(&self.defs),
        )
        .fingerprint();
        if self.last_fp == Some(fp) {
            self.revision += 1;
            return CheckReport {
                project: self.project.clone(),
                revision: self.revision,
                edits_applied,
                edits_coalesced,
                deduped: true,
                clean: self.diagnostics.is_empty() && self.object.is_some(),
                degraded_units: Vec::new(),
                changed_units: Vec::new(),
                diags_added: Vec::new(),
                diags_removed: Vec::new(),
                warm_streams: 0,
                cold_streams: 0,
                wall: start.elapsed(),
            };
        }

        let options = Options {
            incremental: Some(Arc::clone(&self.store) as Arc<dyn ArtifactStore>),
            ..self.options.clone()
        };
        let out = compile_concurrent(
            &self.module.source,
            Arc::clone(&self.defs) as Arc<dyn ccm2_support::defs::DefProvider>,
            Arc::clone(&self.interner),
            options,
        );
        let (object, diagnostics) = comparable_output(
            out.image.as_ref(),
            &out.diagnostics,
            &out.sources,
            &out.interner,
        );
        let units: UnitSnapshot = out
            .image
            .as_ref()
            .map(|im| {
                im.units
                    .iter()
                    .map(|u| (self.interner.resolve(u.name), u.clone()))
                    .collect()
            })
            .unwrap_or_default();
        let mut degraded_units: Vec<String> = units
            .iter()
            .filter(|(_, u)| is_error_unit(u, &self.interner))
            .map(|(n, _)| n.clone())
            .collect();
        degraded_units.sort();
        let changed_units = changed_units(&self.units, &units);
        let (diags_added, diags_removed) = sorted_diff(&self.diagnostics, &diagnostics);
        let (warm_streams, cold_streams) = out
            .incr
            .as_ref()
            .map(|s| (s.spliced, s.recompiled))
            .unwrap_or((0, 0));
        let clean = out.is_ok();

        self.revision += 1;
        self.last_fp = Some(fp);
        self.units = units;
        self.diagnostics = diagnostics;
        self.object = object;

        CheckReport {
            project: self.project.clone(),
            revision: self.revision,
            edits_applied,
            edits_coalesced,
            deduped: false,
            clean,
            degraded_units,
            changed_units,
            diags_added,
            diags_removed,
            warm_streams,
            cold_streams,
            wall: start.elapsed(),
        }
    }
}

/// The watch service: long-lived sessions keyed by project name,
/// sharing one byte-budgeted artifact store.
pub struct WatchService {
    config: WatchConfig,
    store: Arc<SharedStore>,
    sessions: HashMap<String, Session>,
}

impl Default for WatchService {
    fn default() -> WatchService {
        WatchService::new(WatchConfig::default())
    }
}

impl WatchService {
    /// Creates a service with its own shared store.
    pub fn new(config: WatchConfig) -> WatchService {
        let store = Arc::new(SharedStore::new(config.store_budget));
        WatchService {
            config,
            store,
            sessions: HashMap::new(),
        }
    }

    /// Opens (or replaces) the session for `project` and runs its
    /// initial revision-0 check, cold against the shared store.
    pub fn open(&mut self, project: impl Into<String>, module: GeneratedModule) -> CheckReport {
        let project = project.into();
        let mut session = Session::new(
            project.clone(),
            module,
            Arc::clone(&self.store),
            self.config.options.clone(),
            self.config.inbox_capacity,
        );
        let report = session.check();
        self.sessions.insert(project, session);
        report
    }

    /// Queues one edit into `project`'s inbox (bounded; see
    /// [`WatchError::InboxFull`]).
    pub fn submit(&mut self, project: &str, op: EditOp) -> Result<(), WatchError> {
        self.sessions
            .get_mut(project)
            .ok_or_else(|| WatchError::UnknownProject(project.to_string()))?
            .submit(op)
    }

    /// Drains `project`'s inbox, coalesces, applies, re-checks, and
    /// reports the delta.
    pub fn check(&mut self, project: &str) -> Result<CheckReport, WatchError> {
        Ok(self
            .sessions
            .get_mut(project)
            .ok_or_else(|| WatchError::UnknownProject(project.to_string()))?
            .check())
    }

    /// Read access to an open session.
    pub fn session(&self, project: &str) -> Option<&Session> {
        self.sessions.get(project)
    }

    /// Open session count.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Counters of the shared artifact store.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }
}

/// Coalescing result: the surviving ops in arrival order of each
/// target's *last* edit, plus how many were superseded.
struct Coalesced {
    survivors: Vec<EditOp>,
    superseded: usize,
}

/// The coalescing target of an edit: body edits key on the procedure
/// index, interface edits on the definition-module name.
#[derive(PartialEq, Eq, Hash)]
enum Target {
    Proc(usize),
    Def(String),
}

fn target(op: &EditOp) -> Target {
    match op {
        EditOp::ProcBody { index, .. }
        | EditOp::BreakBody { index, .. }
        | EditOp::FixBody { index } => Target::Proc(*index),
        EditOp::Interface { def, .. } => Target::Def(def.clone()),
    }
}

/// Newest-wins per target: for each target, only its last queued edit
/// survives; survivors keep their relative arrival order.
fn coalesce(ops: Vec<EditOp>) -> Coalesced {
    let mut last: HashMap<Target, usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        last.insert(target(op), i);
    }
    let total = ops.len();
    let survivors: Vec<EditOp> = ops
        .into_iter()
        .enumerate()
        .filter(|(i, op)| last.get(&target(op)) == Some(i))
        .map(|(_, op)| op)
        .collect();
    let superseded = total - survivors.len();
    Coalesced {
        survivors,
        superseded,
    }
}

/// Merge-walk two name-sorted unit snapshots; a unit counts as changed
/// if it is only present on one side or compares unequal.
fn changed_units(old: &UnitSnapshot, new: &UnitSnapshot) -> Vec<String> {
    let mut changed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some((a, ua)), Some((b, ub))) => match a.cmp(b) {
                std::cmp::Ordering::Equal => {
                    if ua != ub {
                        changed.push(a.clone());
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    changed.push(a.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    changed.push(b.clone());
                    j += 1;
                }
            },
            (Some((a, _)), None) => {
                changed.push(a.clone());
                i += 1;
            }
            (None, Some((b, _))) => {
                changed.push(b.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    changed
}

/// Multiset difference of two sorted string lists: (in `new` only, in
/// `old` only).
fn sorted_diff(old: &[String], new: &[String]) -> (Vec<String>, Vec<String>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) => match a.cmp(b) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    removed.push(a.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    added.push(b.clone());
                    j += 1;
                }
            },
            (Some(a), None) => {
                removed.push(a.clone());
                i += 1;
            }
            (None, Some(b)) => {
                added.push(b.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_workload::{generate, GenParams};

    fn service() -> WatchService {
        WatchService::new(WatchConfig::default())
    }

    fn small(name: &str, seed: u64) -> GeneratedModule {
        generate(&GenParams::small(name, seed))
    }

    #[test]
    fn open_runs_a_cold_clean_check() {
        let mut svc = service();
        let r = svc.open("p", small("WatchA", 1));
        assert_eq!(r.revision, 1);
        assert!(r.clean, "{:#?}", r.diags_added);
        assert!(r.degraded_units.is_empty());
        assert_eq!(r.warm_streams, 0, "store starts cold");
        assert!(r.cold_streams > 0);
        assert!(!r.changed_units.is_empty(), "all units new at revision 1");
        assert!(svc.session("p").unwrap().object().is_some());
    }

    #[test]
    fn benign_edit_is_warm_and_changes_one_unit() {
        let mut svc = service();
        svc.open("p", small("WatchB", 2));
        svc.submit("p", EditOp::ProcBody { index: 1, seed: 7 })
            .unwrap();
        let r = svc.check("p").unwrap();
        assert!(r.clean);
        assert_eq!(r.edits_applied, 1);
        assert_eq!(r.changed_units, vec!["WatchB.Proc1".to_string()]);
        assert!(r.warm_streams > 0, "siblings splice from the warm store");
        assert!(r.warm_streams > r.cold_streams);
    }

    #[test]
    fn broken_revision_degrades_only_the_edited_stream() {
        let mut svc = service();
        svc.open("p", small("WatchC", 3));
        let clean_units: Vec<_> = svc.session("p").unwrap().units().to_vec();
        svc.submit("p", EditOp::BreakBody { index: 2, seed: 9 })
            .unwrap();
        let r = svc.check("p").unwrap();
        assert!(!r.clean);
        assert!(!r.diags_added.is_empty(), "syntax errors reported");
        assert_eq!(r.degraded_units, vec!["WatchC.Proc2".to_string()]);
        assert_eq!(r.changed_units, vec!["WatchC.Proc2".to_string()]);
        // Every sibling unit is byte-identical to the fault-free
        // revision.
        for (name, unit) in svc.session("p").unwrap().units() {
            if name != "WatchC.Proc2" {
                let prev = clean_units
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("sibling");
                assert_eq!(&prev.1, unit, "{name} unchanged");
            }
        }
        // Fixing restores the clean outputs exactly.
        svc.submit("p", EditOp::FixBody { index: 2 }).unwrap();
        let r = svc.check("p").unwrap();
        assert!(r.clean);
        assert!(r.degraded_units.is_empty());
        assert_eq!(r.diags_removed.len(), 1, "the syntax error is gone");
        assert_eq!(svc.session("p").unwrap().units(), &clean_units[..]);
    }

    #[test]
    fn coalescing_is_newest_wins_per_target() {
        let mut svc = service();
        svc.open("p", small("WatchD", 4));
        // Three edits to Proc0 (only the last survives), one to Proc1.
        svc.submit("p", EditOp::ProcBody { index: 0, seed: 1 })
            .unwrap();
        svc.submit("p", EditOp::BreakBody { index: 0, seed: 2 })
            .unwrap();
        svc.submit("p", EditOp::ProcBody { index: 0, seed: 3 })
            .unwrap();
        svc.submit("p", EditOp::ProcBody { index: 1, seed: 4 })
            .unwrap();
        let r = svc.check("p").unwrap();
        assert_eq!(r.edits_applied, 2);
        assert_eq!(r.edits_coalesced, 2);
        assert!(r.clean, "the superseded break never applied");
        assert_eq!(
            r.changed_units,
            vec!["WatchD.Proc0".to_string(), "WatchD.Proc1".to_string()]
        );
    }

    #[test]
    fn empty_check_dedups_without_compiling() {
        let mut svc = service();
        svc.open("p", small("WatchE", 5));
        let misses_before = svc.store_stats().misses;
        let r = svc.check("p").unwrap();
        assert!(r.deduped);
        assert!(r.clean);
        assert_eq!(r.edits_applied, 0);
        assert_eq!(r.warm_streams + r.cold_streams, 0);
        assert_eq!(r.changed_units, Vec::<String>::new());
        assert_eq!(
            svc.store_stats().misses,
            misses_before,
            "no store traffic on a deduped revision"
        );
        assert_eq!(svc.session("p").unwrap().revision(), 2);
    }

    #[test]
    fn inbox_is_bounded() {
        let mut svc = WatchService::new(WatchConfig {
            inbox_capacity: 2,
            ..WatchConfig::default()
        });
        svc.open("p", small("WatchF", 6));
        svc.submit("p", EditOp::ProcBody { index: 0, seed: 1 })
            .unwrap();
        svc.submit("p", EditOp::ProcBody { index: 1, seed: 1 })
            .unwrap();
        let err = svc
            .submit("p", EditOp::ProcBody { index: 2, seed: 1 })
            .unwrap_err();
        assert_eq!(err, WatchError::InboxFull { capacity: 2 });
        assert_eq!(svc.session("p").unwrap().rejected_edits(), 1);
        // Draining reopens the inbox.
        svc.check("p").unwrap();
        svc.submit("p", EditOp::ProcBody { index: 2, seed: 1 })
            .unwrap();
    }

    #[test]
    fn unknown_project_is_an_error() {
        let mut svc = service();
        assert_eq!(
            svc.check("nope").unwrap_err(),
            WatchError::UnknownProject("nope".into())
        );
        assert!(matches!(
            svc.submit("nope", EditOp::FixBody { index: 0 }),
            Err(WatchError::UnknownProject(_))
        ));
    }

    #[test]
    fn sessions_share_one_store() {
        let mut svc = service();
        svc.open("a", small("Shared", 7));
        let a_insertions = svc.store_stats().insertions;
        assert!(a_insertions > 0);
        // Same sources under a different project: every unit splices
        // from the store the first session warmed.
        let r = svc.open("b", small("Shared", 7));
        assert!(r.warm_streams > 0);
        assert_eq!(r.cold_streams, 0, "fully warm across sessions");
        assert_eq!(svc.sessions(), 2);
    }
}
