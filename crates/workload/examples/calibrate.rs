//! Cost-model calibration probe: prints self-relative speedup curves for
//! `Synth.mod` and four suite entries under an explicit cost vector.
//! Used to tune `SimConfig::firefly` against the paper's Table 3 shape
//! (see EXPERIMENTS.md); kept as a development tool.
//!
//! ```text
//! cargo run --release -p ccm2-workload --example calibrate
//! ```

use ccm2::{compile_concurrent, Executor, Options};
use ccm2_sched::SimConfig;
use std::sync::Arc;

fn run(
    src: &str,
    defs: &ccm2_support::DefLibrary,
    procs: u32,
    cost: [f64; 12],
    alpha: f64,
    dispatch: u64,
) -> u64 {
    let mut cfg = SimConfig::new(procs);
    cfg.cost = cost;
    cfg.contention_alpha = alpha;
    cfg.dispatch_cost = dispatch;
    let out = compile_concurrent(
        src,
        Arc::new(defs.clone()),
        Arc::new(ccm2_support::Interner::new()),
        Options {
            executor: Executor::Sim(cfg),
            ..Options::default()
        },
    );
    assert!(
        out.is_ok(),
        "{:?}",
        &out.diagnostics[..out.diagnostics.len().min(3)]
    );
    out.report.virtual_time.unwrap()
}

fn main() {
    // cost order: Lex, Split, Import, Parse, DeclAnalyze, Lookup, StmtAnalyze, CodeGen, Merge, TaskOverhead, Analyze, Splice
    let cost = [
        0.05, 0.04, 0.03, 0.5, 2.0, 1.5, 1.5, 1.0, 0.5, 1.0, 1.2, 0.5,
    ];
    let alpha = 0.03;
    let dispatch = 40;
    let synth = ccm2_workload::synth_module(ccm2_workload::SynthParams::default());
    let empty = ccm2_support::DefLibrary::new();
    {
        let t1 = run(&synth, &empty, 1, cost, alpha, dispatch);
        let s: Vec<String> = (2..=8)
            .map(|p| {
                format!(
                    "{:.2}",
                    t1 as f64 / run(&synth, &empty, p, cost, alpha, dispatch) as f64
                )
            })
            .collect();
        println!("synth: t1={t1} speedups 2..8 = {}", s.join(" "));
    }
    for i in [5usize, 18, 30, 36] {
        let m = ccm2_workload::generate(&ccm2_workload::suite_params(i));
        let t1 = run(&m.source, &m.defs, 1, cost, alpha, dispatch);
        let s: Vec<String> = [2, 4, 8]
            .iter()
            .map(|&p| {
                format!(
                    "{:.2}",
                    t1 as f64 / run(&m.source, &m.defs, p, cost, alpha, dispatch) as f64
                )
            })
            .collect();
        println!("suite{i}: t1={t1} speedups@2/4/8 = {}", s.join(" "));
    }
}
