//! Synth trace probe: renders the WatchTool snapshot and per-task-kind
//! time totals for a `Synth.mod` compilation on 8 simulated processors.
//! A development tool for inspecting scheduler behavior.
//!
//! ```text
//! cargo run --release -p ccm2-workload --example synthtrace
//! ```

use ccm2::{compile_concurrent, Executor, Options};
use ccm2_sched::SimConfig;
use std::sync::Arc;
fn main() {
    let synth = ccm2_workload::synth_module(ccm2_workload::SynthParams::default());
    let mut cfg = SimConfig::new(8);
    cfg.cost = [0.2, 0.15, 0.1, 0.5, 2.0, 1.5, 1.5, 1.0, 0.5, 1.0, 1.2, 0.5];
    cfg.contention_alpha = 0.035;
    cfg.dispatch_cost = 40;
    let out = compile_concurrent(
        &synth,
        Arc::new(ccm2_support::DefLibrary::new()),
        Arc::new(ccm2_support::Interner::new()),
        Options {
            executor: Executor::Sim(cfg),
            ..Options::default()
        },
    );
    let trace = &out.report.trace;
    println!("{}", ccm2_sched::render_watchtool(trace, 8, 110));
    println!("utilization: {:.2}", trace.utilization(8));
    println!("charges: {:?}", out.report.charges);
    // busiest task kinds by total time
    let mut by_kind = std::collections::BTreeMap::new();
    for s in &trace.segments {
        *by_kind.entry(format!("{:?}", s.kind)).or_insert(0u64) += s.end - s.start;
    }
    println!("time by kind: {:#?}", by_kind);
}
