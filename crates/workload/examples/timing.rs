//! Timing probe: compiles the largest suite entry with the sequential
//! compiler and the 8-/1-processor simulator, printing wall-clock and
//! virtual times. A development tool for watching compile-time costs.
//!
//! ```text
//! cargo run --release -p ccm2-workload --example timing
//! ```

use std::sync::Arc;
use std::time::Instant;
fn main() {
    let m = ccm2_workload::generate(&ccm2_workload::suite_params(36));
    println!(
        "largest module: {} bytes, {} procs, {} ifaces",
        m.size_bytes(),
        m.params.procedures,
        m.params.interfaces
    );
    let t = Instant::now();
    let out = ccm2_seq::compile(&m.source, &m.defs);
    println!(
        "seq compile: {:?} ok={} units={}",
        t.elapsed(),
        out.is_ok(),
        out.image.as_ref().map(|i| i.units.len()).unwrap_or(0)
    );
    assert!(
        out.is_ok(),
        "{:?}",
        &out.diagnostics[..out.diagnostics.len().min(3)]
    );
    let t = Instant::now();
    let conc = ccm2::compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(ccm2_support::Interner::new()),
        ccm2::Options::sim(8),
    );
    println!(
        "sim(8) compile: {:?} ok={} vtime={:?} tasks={}",
        t.elapsed(),
        conc.is_ok(),
        conc.report.virtual_time,
        conc.report.tasks_run
    );
    let t = Instant::now();
    let conc1 = ccm2::compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(ccm2_support::Interner::new()),
        ccm2::Options::sim(1),
    );
    println!(
        "sim(1) compile: {:?} vtime={:?}",
        t.elapsed(),
        conc1.report.virtual_time
    );
    println!(
        "speedup 8 vs 1: {:.2}",
        conc1.report.virtual_time.unwrap() as f64 / conc.report.virtual_time.unwrap() as f64
    );
}
