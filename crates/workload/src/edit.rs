//! Edit scenarios: mechanical, semantically safe mutations of generated
//! modules, used to evaluate the incremental compilation cache.
//!
//! Real incremental builds are dominated by two edit classes:
//!
//! * **procedure-body edits** — change code inside one procedure; every
//!   other stream's inputs are untouched, so a content-addressed cache
//!   should resplice all of them;
//! * **interface edits** — change an imported definition module; the
//!   environment fingerprint covers the whole interface library, so
//!   *every* cached unit of every importing module must be invalidated.
//!
//! The mutations anchor on the fixed textual skeleton `gen` emits (every
//! procedure body starts with the same three assignments), so they stay
//! compilable and deterministic without reparsing.

use crate::gen::GeneratedModule;
use ccm2_support::defs::DefLibrary;

/// One mechanical edit applied to a [`GeneratedModule`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Append one assignment at the top of `Proc{index}`'s body. The
    /// procedure's own stream changes; siblings, nested procedures and
    /// the module-level text do not.
    ProcBody {
        /// The `Proc{index}` to edit.
        index: usize,
        /// Folded into the inserted statement, so distinct seeds produce
        /// distinct bodies (and distinct fingerprints).
        seed: u64,
    },
    /// Insert a new exported constant into the named definition module,
    /// after its header and import section (Modula-2 requires imports
    /// before declarations). Invalidates every unit of every importing
    /// module (the environment digest covers the full library).
    Interface {
        /// Definition-module name (e.g. `"M12Lib0"`).
        def: String,
        /// Distinguishes repeated edits to the same interface.
        tag: u64,
    },
    /// Insert a *syntactically broken* statement at the top of
    /// `Proc{index}`'s body: `l0 := N + ;` — an expression cut off
    /// mid-operator. Statement-local on purpose: it contains no
    /// `BEGIN`/`END` tokens, so the splitter's stream carving is
    /// untouched and only this procedure's stream degrades (to a
    /// deterministic error unit) while siblings still parse, hit cache,
    /// and codegen.
    BreakBody {
        /// The `Proc{index}` to break.
        index: usize,
        /// Folded into the broken statement.
        seed: u64,
    },
    /// Remove every broken statement previously inserted by
    /// [`EditOp::BreakBody`] into `Proc{index}`'s body. A no-op if the
    /// procedure has none.
    FixBody {
        /// The `Proc{index}` to fix.
        index: usize,
    },
}

/// Applies `edits` to a copy of `module`, returning the edited module.
/// Edits whose anchor is absent (no such procedure or interface) are
/// skipped — callers can detect that by comparing sources.
pub fn apply_edits(module: &GeneratedModule, edits: &[EditOp]) -> GeneratedModule {
    let mut out = module.clone();
    for edit in edits {
        match edit {
            EditOp::ProcBody { index, seed } => {
                out.source = edit_proc_body(&out.source, *index, *seed);
            }
            EditOp::Interface { def, tag } => {
                out.defs = edit_interface(&out.defs, def, *tag);
            }
            EditOp::BreakBody { index, seed } => {
                out.source = break_proc_body(&out.source, *index, *seed);
            }
            EditOp::FixBody { index } => {
                out.source = fix_proc_body(&out.source, *index);
            }
        }
    }
    out
}

/// The first `k` procedures of `module`, as body edits (the standard
/// "developer touched k procedures" scenario).
pub fn body_edits(k: usize, seed: u64) -> Vec<EditOp> {
    (0..k)
        .map(|index| EditOp::ProcBody { index, seed })
        .collect()
}

/// Every procedure body in `gen`-produced text opens with this exact
/// prologue; the edit inserts right after it.
const BODY_ANCHOR: &str = "BEGIN\n  l0 := p0 + p1; l1 := 1; l2 := 0;\n";

fn edit_proc_body(source: &str, index: usize, seed: u64) -> String {
    // The first body prologue after the heading belongs to this procedure
    // (nested procedures use a differently indented prologue).
    let Some(insert_at) = body_insert_point(source, index) else {
        return source.to_string();
    };
    let mut edited = source.to_string();
    edited.insert_str(insert_at, &format!("  l0 := l0 + {};\n", seed % 9973));
    edited
}

/// Finds the byte offset just past `Proc{index}`'s body prologue, or
/// `None` if the procedure (or its prologue) is absent.
fn body_insert_point(source: &str, index: usize) -> Option<usize> {
    let heading = format!("PROCEDURE Proc{index}(");
    let at = source.find(&heading)?;
    let body = source[at..].find(BODY_ANCHOR)?;
    Some(at + body + BODY_ANCHOR.len())
}

fn break_proc_body(source: &str, index: usize, seed: u64) -> String {
    let Some(insert_at) = body_insert_point(source, index) else {
        return source.to_string();
    };
    let mut edited = source.to_string();
    edited.insert_str(insert_at, &format!("  l0 := {} + ;\n", seed % 9973));
    edited
}

/// A line is a break-marker iff it has exactly the shape
/// [`break_proc_body`] inserts: `  l0 := <digits> + ;`.
fn is_broken_line(line: &str) -> bool {
    line.strip_prefix("  l0 := ")
        .and_then(|rest| rest.strip_suffix(" + ;"))
        .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
}

/// A line matching the shape benign [`EditOp::ProcBody`] edits insert
/// (`  l0 := l0 + <digits>;`). Used only to extend the fix scan window;
/// an organic statement that happens to match is kept either way.
fn is_benign_inserted(line: &str) -> bool {
    line.strip_prefix("  l0 := l0 + ")
        .and_then(|rest| rest.strip_suffix(';'))
        .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
}

fn fix_proc_body(source: &str, index: usize) -> String {
    // Every edit (benign or breaking) inserts at the top-of-body insert
    // point, so broken lines always live in the contiguous run of
    // edit-shaped lines right after the prologue. Scan that run, drop
    // the broken lines, keep everything else byte-for-byte.
    let Some(start) = body_insert_point(source, index) else {
        return source.to_string();
    };
    let rest = &source[start..];
    let mut edited = source[..start].to_string();
    let mut scanned = 0usize;
    for line in rest.split_inclusive('\n') {
        let trimmed = line.trim_end_matches('\n');
        if is_broken_line(trimmed) {
            scanned += line.len();
        } else if is_benign_inserted(trimmed) {
            edited.push_str(line);
            scanned += line.len();
        } else {
            break;
        }
    }
    edited.push_str(&rest[scanned..]);
    edited
}

fn edit_interface(defs: &DefLibrary, target: &str, tag: u64) -> DefLibrary {
    let mut out = DefLibrary::new();
    for (name, text) in defs.iter() {
        if name == target {
            out.insert(name, insert_interface_const(text, tag));
        } else {
            out.insert(name, text);
        }
    }
    out
}

/// Returns `text` with `CONST EditN{tag} = {tag};` inserted after the
/// module header line and any `IMPORT`/`FROM` lines — declarations may
/// not precede imports in Modula-2.
fn insert_interface_const(text: &str, tag: u64) -> String {
    let mut at = text.find('\n').map(|i| i + 1).unwrap_or(text.len());
    while at < text.len() {
        let line_end = text[at..]
            .find('\n')
            .map(|i| at + i + 1)
            .unwrap_or(text.len());
        let line = text[at..line_end].trim_start();
        if line.starts_with("IMPORT") || line.starts_with("FROM") {
            at = line_end;
        } else {
            break;
        }
    }
    let mut t = text.to_string();
    t.insert_str(at, &format!("CONST EditN{tag} = {tag};\n"));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use ccm2_seq::compile;
    use ccm2_support::defs::DefProvider;

    #[test]
    fn proc_body_edit_changes_only_that_procedure() {
        let m = generate(&GenParams::small("EditMe", 9));
        let e = apply_edits(&m, &body_edits(1, 4242));
        assert_ne!(m.source, e.source);
        // Everything before Proc0's body is untouched.
        let at = m.source.find("PROCEDURE Proc0(").expect("has Proc0");
        assert_eq!(&m.source[..at], &e.source[..at]);
        // Still compiles cleanly.
        let out = compile(&e.source, &e.defs);
        assert!(out.is_ok(), "{:#?}", out.diagnostics);
    }

    #[test]
    fn interface_edit_changes_one_def() {
        // Every def in the library must stay compilable after the edit —
        // including defs with an import section (the inserted CONST has
        // to land after it, not before).
        let m = generate(&GenParams::small("IfEdit", 10));
        let targets: Vec<String> = m.defs.iter().map(|(n, _)| n.to_string()).collect();
        assert!(!targets.is_empty(), "has defs");
        for target in &targets {
            let e = apply_edits(
                &m,
                &[EditOp::Interface {
                    def: target.clone(),
                    tag: 7,
                }],
            );
            assert_eq!(m.source, e.source);
            let before = m.defs.definition_source(target).expect("def");
            let after = e.defs.definition_source(target).expect("def");
            assert_ne!(before, after);
            assert!(after.contains("CONST EditN7 = 7;"));
            let out = compile(&e.source, &e.defs);
            assert!(out.is_ok(), "{target}: {:#?}", out.diagnostics);
        }
    }

    #[test]
    fn missing_anchor_is_a_no_op() {
        let m = generate(&GenParams::small("NoSuch", 11));
        let e = apply_edits(
            &m,
            &[
                EditOp::ProcBody {
                    index: 9999,
                    seed: 1,
                },
                EditOp::Interface {
                    def: "NotALib".into(),
                    tag: 1,
                },
            ],
        );
        assert_eq!(m.source, e.source);
        assert_eq!(
            m.defs.all_definitions(),
            e.defs.all_definitions(),
            "untouched library"
        );
    }

    #[test]
    fn break_then_fix_roundtrips_exactly() {
        let m = generate(&GenParams::small("BrkFix", 13));
        let broken = apply_edits(&m, &[EditOp::BreakBody { index: 1, seed: 77 }]);
        assert_ne!(m.source, broken.source);
        assert!(broken.source.contains(" + ;"));
        // The broken module still parses (error recovery) but reports
        // syntax errors.
        let out = compile(&broken.source, &broken.defs);
        assert!(!out.is_ok());
        assert!(out.image.is_some(), "recovered parse still yields an image");
        // Fixing removes exactly the inserted line — byte-identical to
        // the pre-break text.
        let fixed = apply_edits(&broken, &[EditOp::FixBody { index: 1 }]);
        assert_eq!(m.source, fixed.source);
    }

    #[test]
    fn fix_only_touches_the_named_procedure() {
        let m = generate(&GenParams::small("FixScope", 14));
        let broken = apply_edits(
            &m,
            &[
                EditOp::BreakBody { index: 0, seed: 3 },
                EditOp::BreakBody { index: 2, seed: 4 },
            ],
        );
        let fixed = apply_edits(&broken, &[EditOp::FixBody { index: 0 }]);
        // Proc0's break is gone, Proc2's remains.
        let expect = apply_edits(&m, &[EditOp::BreakBody { index: 2, seed: 4 }]);
        assert_eq!(fixed.source, expect.source);
    }

    #[test]
    fn edits_are_deterministic() {
        let m = generate(&GenParams::small("DetEdit", 12));
        let a = apply_edits(&m, &body_edits(2, 5));
        let b = apply_edits(&m, &body_edits(2, 5));
        assert_eq!(a.source, b.source);
        let c = apply_edits(&m, &body_edits(2, 6));
        assert_ne!(a.source, c.source);
    }
}
