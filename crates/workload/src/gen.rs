//! Seeded Modula-2+ program generation.
//!
//! Produces semantically valid modules whose *shape* is controlled: number
//! of procedures (and how many are nested), number and nesting depth of
//! imported definition modules, and statement volume per procedure. Shape
//! is what the paper's results depend on — the speedup experiments are
//! functions of how much parallel work a program offers and how its
//! declarations flow between scopes.
//!
//! Generated programs exercise the constructs that drive the paper's
//! statistics: qualified references into imported interfaces (`Lib.C`),
//! FROM-imports, outward scope-chain references from procedure bodies to
//! module-level variables, `WITH` statements, and builtin calls.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ccm2_support::defs::DefLibrary;

/// Shape parameters for one generated module.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Module name (must be a valid Modula-2 identifier).
    pub name: String,
    /// RNG seed: same seed, same program.
    pub seed: u64,
    /// Total procedures (top-level + nested).
    pub procedures: usize,
    /// Total definition modules imported directly or indirectly.
    pub interfaces: usize,
    /// Maximum import nesting depth (≥ 1 when `interfaces > 0`).
    pub import_depth: usize,
    /// Average statements per procedure body.
    pub stmts_per_proc: usize,
    /// Fraction of procedures nested inside another procedure.
    pub nested_ratio: f64,
    /// Seed lint-triggering shapes (unused locals, statements after
    /// RETURN, possible use-before-init, unused imports, nested re-LOCK).
    /// The module still compiles cleanly — lint findings are warnings —
    /// so these exercise the `ccm2-analysis` passes without perturbing
    /// the object image.
    pub lint_seeds: bool,
    /// Append fixed-text procedures with known names and shapes
    /// (`FaultShort`, `FaultLong`, `FaultNest`/`FaultNestInner`) that
    /// fault-injection tests target by site name. RNG-independent: the
    /// rest of the module is byte-identical with the flag off.
    pub fault_seeds: bool,
    /// Append fixed-text procedures with known interprocedural lock
    /// shapes: `LockGrabX` acquires module lock `lkX`, `LockEdgeXY`
    /// acquires `lkX` and calls `LockGrabY` (a lock-order edge — AB, BC
    /// and CA close a cycle, DE is the acyclic control), and `LockReent`
    /// calls `LockGrabA` while already holding `lkA`. RNG-independent,
    /// like `fault_seeds`. [`lock_seed_scenarios`] describes the runtime
    /// drills these shapes support.
    pub lock_seeds: bool,
}

impl GenParams {
    /// Reasonable defaults for a small module.
    pub fn small(name: &str, seed: u64) -> GenParams {
        GenParams {
            name: name.to_string(),
            seed,
            procedures: 6,
            interfaces: 4,
            import_depth: 2,
            stmts_per_proc: 12,
            nested_ratio: 0.15,
            lint_seeds: false,
            fault_seeds: false,
            lock_seeds: false,
        }
    }
}

/// One runtime deadlock drill over the [`GenParams::lock_seeds`]
/// procedures: each simulated thread enters one seeded entry point,
/// holds its outer lock and waits for the lock its callee acquires.
/// The wait-for-graph tests build exactly this shape and check the
/// runtime verdict against the static prediction.
#[derive(Clone, Debug)]
pub struct LockScenario {
    /// Scenario name (test labels).
    pub name: &'static str,
    /// `(entry procedure, lock held, lock waited for)` per thread.
    pub threads: Vec<(&'static str, &'static str, &'static str)>,
    /// Whether this schedule deadlocks at runtime (wait-for cycle).
    pub deadlocks: bool,
    /// Locks on the runtime cycle (sorted), empty when `!deadlocks`.
    pub cycle: Vec<&'static str>,
}

/// The drill set over the seeded lock procedures. Every scenario that
/// deadlocks at runtime is also statically predicted (zero false
/// negatives): `abc-cycle` by the lock-order-cycle diagnostic,
/// `self-relock` by the cross-procedure re-LOCK diagnostic. The
/// non-deadlocking schedules are controls — `ab-bc-chain` runs two
/// thirds of a cycle the static pass still (soundly) warns about, and
/// `de-acyclic` is warning-free.
pub fn lock_seed_scenarios() -> Vec<LockScenario> {
    vec![
        LockScenario {
            name: "abc-cycle",
            threads: vec![
                ("LockEdgeAB", "lkA", "lkB"),
                ("LockEdgeBC", "lkB", "lkC"),
                ("LockEdgeCA", "lkC", "lkA"),
            ],
            deadlocks: true,
            cycle: vec!["lkA", "lkB", "lkC"],
        },
        LockScenario {
            name: "ab-bc-chain",
            threads: vec![("LockEdgeAB", "lkA", "lkB"), ("LockEdgeBC", "lkB", "lkC")],
            deadlocks: false,
            cycle: vec![],
        },
        LockScenario {
            name: "de-acyclic",
            threads: vec![("LockEdgeDE", "lkD", "lkE")],
            deadlocks: false,
            cycle: vec![],
        },
        LockScenario {
            name: "self-relock",
            threads: vec![("LockReent", "lkA", "lkA")],
            deadlocks: true,
            cycle: vec!["lkA"],
        },
    ]
}

/// A generated compilation unit: main source plus its interface library.
#[derive(Clone, Debug)]
pub struct GeneratedModule {
    /// Module name.
    pub name: String,
    /// The `M.mod` text.
    pub source: String,
    /// Definition modules (`*.def`) the module imports, transitively.
    pub defs: DefLibrary,
    /// The parameters that produced it.
    pub params: GenParams,
}

impl GeneratedModule {
    /// Total source bytes (main + interfaces) — Table 1's "Module size".
    pub fn size_bytes(&self) -> usize {
        self.source.len() + self.defs.iter().map(|(_, s)| s.len()).sum::<usize>()
    }
}

struct DefInfo {
    name: String,
    consts: Vec<String>,
    procs: Vec<String>,
    vars: Vec<String>,
}

/// Generates a module from shape parameters. Deterministic per seed.
pub fn generate(params: &GenParams) -> GeneratedModule {
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x5eed_cafe);
    let mut defs = DefLibrary::new();
    let mut infos: Vec<DefInfo> = Vec::new();

    // ---- definition modules -------------------------------------------
    // Build a chain of `import_depth` interfaces (each importing the
    // next), then hang the remaining interfaces off random chain nodes so
    // the import graph is a tree of the requested depth (§4.4: the
    // definition modules form a tree).
    let n_defs = params.interfaces;
    let depth = params
        .import_depth
        .clamp(usize::from(n_defs > 0), n_defs.max(1));
    for k in 0..n_defs {
        let name = format!("{}Lib{}", params.name, k);
        let imports: Vec<usize> = if k + 1 < depth {
            vec![k + 1] // chain link
        } else if k >= depth && depth > 0 {
            // Attach to a random earlier-or-chain node it may import
            // (must import a *later-generated* def to avoid cycles: defs
            // k imports only defs with larger index).
            if k + 1 < n_defs && rng.gen_bool(0.35) {
                vec![k + 1]
            } else {
                vec![]
            }
        } else {
            vec![]
        };
        let n_consts = rng.gen_range(4..=12);
        let n_procs = rng.gen_range(2..=5);
        let n_vars = rng.gen_range(0..=3);
        let mut text = format!("DEFINITION MODULE {name};\n");
        for &imp in &imports {
            text.push_str(&format!("IMPORT {}Lib{};\n", params.name, imp));
        }
        let mut consts = Vec::new();
        for j in 0..n_consts {
            let cname = format!("C{k}x{j}");
            // Reference an imported constant sometimes (declaration-phase
            // qualified lookups → the DKY flows of §4.4).
            if let Some(&imp) = imports.first() {
                if j == 0 {
                    text.push_str(&format!(
                        "CONST {cname} = {}Lib{}.C{}x0 + {};\n",
                        params.name,
                        imp,
                        imp,
                        rng.gen_range(1..100)
                    ));
                    consts.push(cname);
                    continue;
                }
            }
            text.push_str(&format!("CONST {cname} = {};\n", rng.gen_range(1..1000)));
            consts.push(cname);
        }
        let mut vars = Vec::new();
        for j in 0..n_vars {
            text.push_str(&format!("VAR V{k}x{j} : INTEGER;\n"));
            vars.push(format!("V{k}x{j}"));
        }
        // An exported record type: procedure headings in the importing
        // module reference these, so heading elaboration performs
        // qualified lookups into (possibly incomplete) interface tables —
        // the §2.4/§4.4 information flow real programs exhibit.
        text.push_str(&format!("TYPE T{k} = RECORD f0, f1 : INTEGER END;\n"));
        let mut procs = Vec::new();
        for j in 0..n_procs {
            let pname = format!("P{k}x{j}");
            text.push_str(&format!("PROCEDURE {pname}(x : INTEGER) : INTEGER;\n"));
            procs.push(pname);
        }
        text.push_str(&format!("END {name}.\n"));
        defs.insert(name.clone(), text);
        infos.push(DefInfo {
            name,
            consts,
            procs,
            vars,
        });
    }

    // ---- main module -----------------------------------------------------
    let mut src = format!("IMPLEMENTATION MODULE {};\n", params.name);
    // Direct imports: the chain head plus every def not imported by
    // another def (tree roots) — plus FROM-imports for a couple of names.
    let mut direct: Vec<usize> = Vec::new();
    for k in 0..n_defs {
        let imported_by_other = (0..n_defs).any(|o| o + 1 == k && (o + 1 < depth || o >= depth));
        if !imported_by_other {
            direct.push(k);
        }
    }
    // Re-derive: simpler to import every interface directly too — legal
    // Modula-2 and common style; keeps every interface reachable.
    let _ = direct;
    let mut from_imports: Vec<(usize, String)> = Vec::new();
    let mut whole_imports: Vec<usize> = Vec::new();
    for (k, info) in infos.iter().enumerate() {
        if rng.gen_bool(0.3) && !info.consts.is_empty() {
            let c = info.consts[rng.gen_range(0..info.consts.len())].clone();
            src.push_str(&format!("FROM {} IMPORT {};\n", info.name, c));
            from_imports.push((k, c));
        } else {
            src.push_str(&format!("IMPORT {};\n", info.name));
            whole_imports.push(k);
        }
    }
    if params.lint_seeds {
        // An interface imported and never referenced (unused-import lint).
        let uname = format!("{}LibU", params.name);
        defs.insert(
            uname.clone(),
            format!("DEFINITION MODULE {uname};\nCONST UC0 = 1;\nEND {uname}.\n"),
        );
        src.push_str(&format!("IMPORT {uname};\n"));
    }
    src.push_str("CONST Scale = 3;\n");
    src.push_str("TYPE Rec = RECORD a, b : INTEGER END;\n");
    src.push_str("TYPE Arr = ARRAY [0..9] OF INTEGER;\n");
    src.push_str("VAR gTotal, gCount : INTEGER;\n");
    src.push_str("VAR gRec : Rec;\nVAR gArr : Arr;\nVAR gFlag : BOOLEAN;\n");
    // Module-level declaration volume scales with program size, and —
    // like real programs — is *interleaved* with the procedures: the main
    // module's declaration analysis is inherently serial (one
    // Parser/DeclAnalyzer task), so procedure headings released early in
    // the file run their streams while the rest of the module scope is
    // still incomplete. That overlap is what produces the paper's
    // searches-in-incomplete-outer-tables (Table 2).
    let n_module_consts = (params.procedures / 2).max(3);
    let n_module_vars = (params.procedures / 3).max(2);
    let n_module_types = (params.procedures / 8).min(12);
    // A seed portion up front so every procedure has something to refer
    // to; the rest is spread between procedures below.
    let up_front_consts = (n_module_consts / 3).max(1).min(n_module_consts);
    let mut next_const = 0usize;
    let mut next_type = 0usize;
    let mut emit_const = |src: &mut String, rng: &mut SmallRng| {
        if next_const < n_module_consts {
            src.push_str(&format!(
                "CONST MC{next_const} = {} * Scale + {next_const};\n",
                rng.gen_range(1..500)
            ));
            next_const += 1;
        }
    };
    for _ in 0..up_front_consts {
        emit_const(&mut src, &mut rng);
    }
    src.push_str("VAR mv0, mv1 : INTEGER;\n");
    let mut next_var = 2.min(n_module_vars);

    // Procedures, with the remaining module-level declarations sprinkled
    // between them.
    let n_procs = params.procedures.max(1);
    let n_nested = ((n_procs as f64) * params.nested_ratio) as usize;
    let n_top = n_procs - n_nested;
    let mut gen = ProcGen {
        rng: &mut rng,
        infos: &infos,
        whole_imports: &whole_imports,
        from_imports: &from_imports,
        declared_procs: Vec::new(),
        stmts_per_proc: params.stmts_per_proc,
        module_consts_declared: 0,
        lint_seeds: params.lint_seeds,
    };
    let mut nested_left = n_nested;
    for i in 0..n_top {
        // Spread nested procedures across early hosts.
        let nest_here = if nested_left > 0 && i < n_nested {
            nested_left -= 1;
            1
        } else {
            0
        };
        gen.module_consts_declared = next_const;
        let text = gen.procedure(i, nest_here);
        src.push_str(&text);
        // Interleave the remaining module-level declarations.
        if next_const < n_module_consts && gen.rng.gen_bool(0.6) {
            src.push_str(&format!(
                "CONST MC{next_const} = {} * Scale + {next_const};\n",
                gen.rng.gen_range(1..500)
            ));
            next_const += 1;
        }
        if next_var < n_module_vars && gen.rng.gen_bool(0.4) {
            src.push_str(&format!("VAR mv{next_var} : INTEGER;\n"));
            next_var += 1;
        }
        if next_type < n_module_types && gen.rng.gen_bool(0.3) {
            src.push_str(&format!(
                "TYPE MR{next_type} = RECORD f0, f1, f2 : INTEGER END;\n"
            ));
            next_type += 1;
        }
    }
    // Whatever was not sprinkled lands at the end (before the body).
    while next_const < n_module_consts {
        src.push_str(&format!(
            "CONST MC{next_const} = {} * Scale + {next_const};\n",
            gen.rng.gen_range(1..500)
        ));
        next_const += 1;
    }
    while next_var < n_module_vars {
        src.push_str(&format!("VAR mv{next_var} : INTEGER;\n"));
        next_var += 1;
    }
    while next_type < n_module_types {
        src.push_str(&format!(
            "TYPE MR{next_type} = RECORD f0, f1, f2 : INTEGER END;\n"
        ));
        next_type += 1;
    }

    // Fault-seed procedures: fixed text, appended after every
    // RNG-driven declaration so the rest of the module is unchanged by
    // the flag. `FaultShort` is a one-assignment body (a short CodeGen
    // task), `FaultLong` a 40-statement one (long enough that a stall
    // or mid-stream panic lands while other streams are active), and
    // `FaultNest` hosts `FaultNestInner` (heading events + static
    // chain, the §2.4 dependency shape).
    if params.fault_seeds {
        src.push_str(
            "PROCEDURE FaultShort(p0, p1 : INTEGER) : INTEGER;\nVAR l0 : INTEGER;\nBEGIN\n  l0 := p0 + p1;\n  RETURN l0\nEND FaultShort;\n\n",
        );
        src.push_str("PROCEDURE FaultLong(p0, p1 : INTEGER) : INTEGER;\nVAR l0, l1 : INTEGER;\nBEGIN\n  l0 := p0; l1 := p1;\n");
        for k in 0..40 {
            src.push_str(&format!("  l0 := l0 + l1 + {k};\n"));
        }
        src.push_str("  RETURN l0 + l1\nEND FaultLong;\n\n");
        src.push_str(
            "PROCEDURE FaultNest(p0, p1 : INTEGER) : INTEGER;\nVAR l0 : INTEGER;\n  PROCEDURE FaultNestInner(q0 : INTEGER) : INTEGER;\n  VAR m0 : INTEGER;\n  BEGIN\n    m0 := q0 + l0;\n    RETURN m0\n  END FaultNestInner;\nBEGIN\n  l0 := p0 + p1;\n  l0 := l0 + FaultNestInner(p0);\n  RETURN l0\nEND FaultNest;\n\n",
        );
    }

    // Lock-seed procedures: fixed text like the fault seeds, appended
    // after every RNG-driven declaration so the rest of the module is
    // unchanged by the flag. Grabbers precede the edge procedures, so
    // every call site targets an already-declared procedure.
    if params.lock_seeds {
        src.push_str("VAR lkA, lkB, lkC, lkD, lkE : Rec;\n");
        for l in ["A", "B", "C", "E"] {
            src.push_str(&format!(
                "PROCEDURE LockGrab{l}(p0, p1 : INTEGER) : INTEGER;\nVAR l0 : INTEGER;\nBEGIN\n  LOCK lk{l} DO l0 := p0 + p1 END;\n  RETURN l0\nEND LockGrab{l};\n\n"
            ));
        }
        for (edge, held, grab) in [
            ("AB", "A", "B"),
            ("BC", "B", "C"),
            ("CA", "C", "A"),
            ("DE", "D", "E"),
        ] {
            src.push_str(&format!(
                "PROCEDURE LockEdge{edge}(p0, p1 : INTEGER) : INTEGER;\nVAR l0 : INTEGER;\nBEGIN\n  LOCK lk{held} DO l0 := LockGrab{grab}(p0, p1) END;\n  RETURN l0\nEND LockEdge{edge};\n\n"
            ));
        }
        src.push_str(
            "PROCEDURE LockReent(p0, p1 : INTEGER) : INTEGER;\nVAR l0 : INTEGER;\nBEGIN\n  LOCK lkA DO l0 := LockGrabA(p0, p1) END;\n  RETURN l0\nEND LockReent;\n\n",
        );
    }

    // Module body: one statement-analysis/code-generation task at the
    // very end of the compilation — the paper's sequential tail. Its
    // volume scales with program size.
    src.push_str("BEGIN\n  gTotal := 0; gCount := Scale;\n");
    let calls = gen.declared_procs.clone();
    for name in calls.iter().take(8) {
        src.push_str(&format!("  gTotal := gTotal + {name}(gCount, 2);\n"));
    }
    if params.fault_seeds {
        src.push_str(
            "  gTotal := gTotal + FaultShort(gCount, 1) + FaultLong(gCount, 2) + FaultNest(gCount, 3);\n",
        );
    }
    if params.lock_seeds {
        src.push_str(
            "  gTotal := gTotal + LockEdgeAB(gCount, 1) + LockEdgeBC(gCount, 2) + LockEdgeCA(gCount, 3) + LockEdgeDE(gCount, 4) + LockReent(gCount, 5);\n",
        );
    }
    let body_stmts = params.procedures * 2;
    for j in 0..body_stmts {
        match j % 4 {
            0 => src.push_str(&format!(
                "  gTotal := gTotal + MC{} ;\n",
                j % n_module_consts
            )),
            1 => src.push_str(&format!("  mv{} := gTotal MOD 97;\n", j % n_module_vars)),
            2 => src.push_str("  IF gTotal > 1000 THEN gTotal := gTotal DIV 2 END;\n"),
            _ => src.push_str("  INC(gCount);\n"),
        }
    }
    src.push_str("  WriteInt(gTotal, 0); WriteLn\n");
    src.push_str(&format!("END {}.\n", params.name));

    GeneratedModule {
        name: params.name.clone(),
        source: src,
        defs,
        params: params.clone(),
    }
}

struct ProcGen<'a> {
    rng: &'a mut SmallRng,
    infos: &'a [DefInfo],
    /// Indices of interfaces imported whole (qualified references legal).
    whole_imports: &'a [usize],
    from_imports: &'a [(usize, String)],
    /// Top-level procedures declared so far (callable from later ones).
    declared_procs: Vec<String>,
    stmts_per_proc: usize,
    /// Module-level `MC*` constants declared before the procedure being
    /// generated (bodies may reference those — outward lookups that can
    /// hit the still-incomplete module table).
    module_consts_declared: usize,
    /// Inject lint-triggering shapes into some procedures.
    lint_seeds: bool,
}

impl ProcGen<'_> {
    /// The first whole-imported interface exposing both a variable (the
    /// mutex stand-in) and a procedure — the re-entry lint seed target.
    fn reentry_target(&self) -> Option<(String, String, String)> {
        self.whole_imports
            .iter()
            .map(|&k| &self.infos[k])
            .find_map(|d| match (d.vars.first(), d.procs.first()) {
                (Some(v), Some(p)) => Some((d.name.clone(), v.clone(), p.clone())),
                _ => None,
            })
    }

    /// An integer-valued atom: literal, param, local, global, imported
    /// constant (qualified or FROM), earlier procedure call, or builtin.
    fn int_atom(&mut self, locals: &[String]) -> String {
        match self.rng.gen_range(0..10) {
            0 => format!("{}", self.rng.gen_range(0..100)),
            1 => "gTotal".to_string(),
            2 => {
                if self.module_consts_declared > 0 && self.rng.gen_bool(0.5) {
                    format!("MC{}", self.rng.gen_range(0..self.module_consts_declared))
                } else {
                    "gCount".to_string()
                }
            }
            3 | 4 => locals[self.rng.gen_range(0..locals.len())].clone(),
            5 => {
                // Qualified constant (Table 2's qualified identifiers);
                // only interfaces imported whole are addressable by name.
                if self.whole_imports.is_empty() {
                    "7".to_string()
                } else {
                    let d = &self.infos
                        [self.whole_imports[self.rng.gen_range(0..self.whole_imports.len())]];
                    if d.consts.is_empty() {
                        "5".to_string()
                    } else {
                        format!(
                            "{}.{}",
                            d.name,
                            d.consts[self.rng.gen_range(0..d.consts.len())]
                        )
                    }
                }
            }
            6 => {
                // FROM-imported name ("other" scope in Table 2).
                if self.from_imports.is_empty() {
                    "3".to_string()
                } else {
                    self.from_imports[self.rng.gen_range(0..self.from_imports.len())]
                        .1
                        .clone()
                }
            }
            7 => {
                // Call an imported procedure (qualified).
                if self.whole_imports.is_empty() {
                    "11".to_string()
                } else {
                    let d = &self.infos
                        [self.whole_imports[self.rng.gen_range(0..self.whole_imports.len())]];
                    if d.procs.is_empty() {
                        "2".to_string()
                    } else {
                        format!(
                            "{}.{}({})",
                            d.name,
                            d.procs[self.rng.gen_range(0..d.procs.len())],
                            locals[self.rng.gen_range(0..locals.len())].clone()
                        )
                    }
                }
            }
            8 => {
                // Call an earlier local procedure.
                if self.declared_procs.is_empty() {
                    "1".to_string()
                } else {
                    let p = &self.declared_procs[self.rng.gen_range(0..self.declared_procs.len())];
                    format!(
                        "{p}({}, {})",
                        locals[self.rng.gen_range(0..locals.len())],
                        self.rng.gen_range(0..10)
                    )
                }
            }
            _ => format!("ABS({})", locals[self.rng.gen_range(0..locals.len())]),
        }
    }

    fn int_expr(&mut self, locals: &[String]) -> String {
        let a = self.int_atom(locals);
        if self.rng.gen_bool(0.5) {
            let b = self.int_atom(locals);
            let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
            format!("{a} {op} {b}")
        } else {
            a
        }
    }

    fn statement(&mut self, locals: &[String], depth: usize, out: &mut String, indent: &str) {
        let lhs = locals[self.rng.gen_range(0..locals.len())].clone();
        let choice = if depth >= 2 {
            0 // only simple statements deep down
        } else {
            self.rng.gen_range(0..12)
        };
        match choice {
            0..=4 => {
                let rhs = self.int_expr(locals);
                out.push_str(&format!("{indent}{lhs} := {rhs};\n"));
            }
            5 => {
                let c = self.int_expr(locals);
                out.push_str(&format!("{indent}IF {lhs} > {c} THEN\n"));
                self.statement(locals, depth + 1, out, &format!("{indent}  "));
                out.push_str(&format!("{indent}ELSE\n"));
                self.statement(locals, depth + 1, out, &format!("{indent}  "));
                out.push_str(&format!("{indent}END;\n"));
            }
            6 => {
                out.push_str(&format!("{indent}FOR {lhs} := 0 TO 9 DO\n"));
                self.statement(locals, depth + 1, out, &format!("{indent}  "));
                out.push_str(&format!("{indent}END;\n"));
            }
            7 => {
                out.push_str(&format!("{indent}WHILE {lhs} > 0 DO\n"));
                out.push_str(&format!("{indent}  {lhs} := {lhs} - 1;\n"));
                self.statement(locals, depth + 1, out, &format!("{indent}  "));
                out.push_str(&format!("{indent}END;\n"));
            }
            8 => {
                // WITH on the module-level record (outer-scope + WITH
                // statistics).
                out.push_str(&format!(
                    "{indent}WITH gRec DO a := b + {}; b := a - 1 END;\n",
                    self.rng.gen_range(1..5)
                ));
            }
            9 => {
                let v = self.int_expr(locals);
                out.push_str(&format!(
                    "{indent}CASE {lhs} MOD 3 OF 0 : {lhs} := {v} | 1 : {lhs} := 0 ELSE {lhs} := 1 END;\n"
                ));
            }
            10 => {
                out.push_str(&format!(
                    "{indent}gArr[{lhs} MOD 10] := {};\n",
                    self.int_expr(locals)
                ));
            }
            _ => {
                out.push_str(&format!("{indent}INC({lhs});\n"));
            }
        }
    }

    /// Emits a complete procedure (optionally with `nest` nested
    /// procedures inside), registers it as callable, returns its text.
    fn procedure(&mut self, index: usize, nest: usize) -> String {
        let name = format!("Proc{index}");
        // A quarter of procedures take a record parameter typed by an
        // imported interface: the heading cannot be elaborated until that
        // interface's table has the type (declaration-phase DKY flow).
        let rec_param = if !self.whole_imports.is_empty() && self.rng.gen_bool(0.25) {
            let k = self.whole_imports[self.rng.gen_range(0..self.whole_imports.len())];
            Some((self.infos[k].name.clone(), k))
        } else {
            None
        };
        let mut text = match &rec_param {
            Some((lib, k)) => format!(
                "PROCEDURE {name}(p0, p1 : INTEGER; r : {lib}.T{k}) : INTEGER;\nVAR l0, l1, l2 : INTEGER;\n"
            ),
            None => format!(
                "PROCEDURE {name}(p0, p1 : INTEGER) : INTEGER;\nVAR l0, l1, l2 : INTEGER;\n"
            ),
        };
        let seed_dead = self.lint_seeds && index.is_multiple_of(3);
        let seed_uninit = self.lint_seeds && index % 5 == 2;
        let seed_unreachable = self.lint_seeds && index % 4 == 1;
        let seed_relock = self.lint_seeds && index % 5 == 3;
        let seed_reentry = self.lint_seeds && index % 5 == 4;
        if seed_dead {
            text.push_str(&format!("VAR dead{index} : INTEGER;\n"));
        }
        if seed_uninit {
            text.push_str("VAR u0 : INTEGER;\n");
        }
        let locals: Vec<String> = ["p0", "p1", "l0", "l1", "l2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for n in 0..nest {
            // A nested procedure that reads its host's locals through the
            // static chain.
            let nname = format!("{name}N{n}");
            let mut body = String::new();
            let n_stmts = (self.stmts_per_proc / 2).max(2);
            let inner_locals: Vec<String> =
                ["q0", "m0", "m1"].iter().map(|s| s.to_string()).collect();
            for _ in 0..n_stmts {
                self.statement(&inner_locals, 1, &mut body, "    ");
            }
            text.push_str(&format!(
                "  PROCEDURE {nname}(q0 : INTEGER) : INTEGER;\n  VAR m0, m1 : INTEGER;\n  BEGIN\n    m0 := q0 + l0;\n{body}    RETURN m0 + m1\n  END {nname};\n"
            ));
        }
        text.push_str("BEGIN\n  l0 := p0 + p1; l1 := 1; l2 := 0;\n");
        if rec_param.is_some() {
            text.push_str("  l0 := l0 + r.f0 - r.f1;\n");
        }
        if seed_uninit {
            // Assigned on one branch only, then read: possible use before
            // initialization.
            text.push_str("  IF p0 > 0 THEN u0 := 1 END;\n  l1 := l1 + u0;\n");
        }
        if seed_relock {
            text.push_str("  LOCK gRec DO LOCK gRec DO l2 := l2 + 1 END END;\n");
        }
        if seed_reentry {
            // Hold an interface-owned mutex across a call back into the
            // same interface (the LOCK-discipline re-entry lint).
            if let Some((lib, v, p)) = self.reentry_target() {
                text.push_str(&format!("  LOCK {lib}.{v} DO l0 := {lib}.{p}(l0) END;\n"));
            }
        }
        let jitter = self.rng.gen_range(0..=(self.stmts_per_proc / 2).max(1));
        let n_stmts = (self.stmts_per_proc / 2 + jitter).max(2);
        let mut body = String::new();
        for _ in 0..n_stmts {
            self.statement(&locals, 0, &mut body, "  ");
        }
        text.push_str(&body);
        for n in 0..nest {
            text.push_str(&format!("  l2 := l2 + {name}N{n}(l0);\n"));
        }
        if seed_unreachable {
            text.push_str(&format!(
                "  RETURN l0 + l1 + l2;\n  l0 := 0\nEND {name};\n\n"
            ));
        } else {
            text.push_str(&format!("  RETURN l0 + l1 + l2\nEND {name};\n\n"));
        }
        if rec_param.is_none() {
            // Only two-argument procedures are registered as callable by
            // later code (call sites pass two integers).
            self.declared_procs.push(name);
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_seq::compile;

    #[test]
    fn generated_module_compiles_cleanly() {
        let m = generate(&GenParams::small("TestGen", 42));
        let out = compile(&m.source, &m.defs);
        assert!(
            out.is_ok(),
            "diagnostics: {:#?}\nsource:\n{}",
            out.diagnostics,
            m.source
        );
        assert_eq!(out.procedures as f64, m.params.procedures as f64);
        assert_eq!(out.imported_interfaces, m.params.interfaces);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GenParams::small("Det", 7));
        let b = generate(&GenParams::small("Det", 7));
        assert_eq!(a.source, b.source);
        let c = generate(&GenParams::small("Det", 8));
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn interface_count_and_depth_respected() {
        let params = GenParams {
            name: "Deep".into(),
            seed: 3,
            procedures: 4,
            interfaces: 6,
            import_depth: 4,
            stmts_per_proc: 8,
            nested_ratio: 0.0,
            lint_seeds: false,
            fault_seeds: false,
            lock_seeds: false,
        };
        let m = generate(&params);
        let out = compile(&m.source, &m.defs);
        assert!(out.is_ok(), "{:#?}", out.diagnostics);
        assert_eq!(out.imported_interfaces, 6);
        assert!(
            out.import_nesting_depth >= 3,
            "depth {}",
            out.import_nesting_depth
        );
    }

    #[test]
    fn nested_procedures_generated() {
        let params = GenParams {
            name: "Nest".into(),
            seed: 11,
            procedures: 10,
            interfaces: 0,
            import_depth: 0,
            stmts_per_proc: 6,
            nested_ratio: 0.4,
            lint_seeds: false,
            fault_seeds: false,
            lock_seeds: false,
        };
        let m = generate(&params);
        assert!(m.source.contains("N0("), "has nested procedures");
        let out = compile(&m.source, &m.defs);
        assert!(out.is_ok(), "{:#?}", out.diagnostics);
        assert_eq!(out.procedures, 10);
    }

    #[test]
    fn lint_seeded_modules_compile_and_trigger_every_lint() {
        let params = GenParams {
            lint_seeds: true,
            procedures: 12,
            interfaces: 3,
            import_depth: 2,
            ..GenParams::small("LintSeed", 21)
        };
        let m = generate(&params);
        let out = ccm2_seq::compile_full(
            &m.source,
            &m.defs,
            std::sync::Arc::new(ccm2_support::Interner::new()),
            std::sync::Arc::new(ccm2_support::work::NullMeter),
            ccm2_sema::declare::HeadingMode::CopyToChild,
            true,
        );
        assert!(
            out.is_ok(),
            "lint seeds must stay compile-clean: {:#?}\nsource:\n{}",
            out.diagnostics,
            m.source
        );
        let msgs: Vec<String> = out.diagnostics.iter().map(|d| d.message.clone()).collect();
        for needle in [
            "unused local declaration",
            "unreachable code after RETURN",
            "before initialization",
            "unused import",
            "nested re-LOCK",
        ] {
            assert!(
                msgs.iter().any(|m| m.contains(needle)),
                "no `{needle}` finding among {msgs:#?}\nsource:\n{}",
                m.source
            );
        }
    }

    #[test]
    fn fault_seeded_modules_compile_cleanly_and_leave_the_rest_unchanged() {
        let base = GenParams::small("FaultSeed", 77);
        let seeded = GenParams {
            fault_seeds: true,
            ..base.clone()
        };
        let plain = generate(&base);
        let m = generate(&seeded);
        for needle in ["FaultShort", "FaultLong", "FaultNest", "FaultNestInner"] {
            assert!(m.source.contains(needle), "missing `{needle}`");
        }
        let out = compile(&m.source, &m.defs);
        assert!(out.is_ok(), "{:#?}\nsource:\n{}", out.diagnostics, m.source);
        // Byte-identical prefix: the seeds only append, never perturb the
        // RNG-driven part of the module.
        let split = m
            .source
            .find("PROCEDURE FaultShort")
            .expect("seeds appended");
        assert_eq!(&m.source[..split], &plain.source[..split]);
    }

    #[test]
    fn lock_seeded_modules_compile_and_are_statically_predicted() {
        let base = GenParams::small("LockSeed", 91);
        let seeded = GenParams {
            lock_seeds: true,
            ..base.clone()
        };
        let plain = generate(&base);
        let m = generate(&seeded);
        for needle in ["LockGrabA", "LockEdgeCA", "LockReent"] {
            assert!(m.source.contains(needle), "missing `{needle}`");
        }
        // Byte-identical prefix: the seeds only append, never perturb the
        // RNG-driven part of the module.
        let split = m.source.find("VAR lkA").expect("seeds appended");
        assert_eq!(&m.source[..split], &plain.source[..split]);
        let out = ccm2_seq::compile_full(
            &m.source,
            &m.defs,
            std::sync::Arc::new(ccm2_support::Interner::new()),
            std::sync::Arc::new(ccm2_support::work::NullMeter),
            ccm2_sema::declare::HeadingMode::CopyToChild,
            true,
        );
        assert!(out.is_ok(), "{:#?}", out.diagnostics);
        let msgs: Vec<String> = out.diagnostics.iter().map(|d| d.message.clone()).collect();
        assert!(
            msgs.iter()
                .any(|m| m
                    .contains("potential deadlock: lock-order cycle among `lkA`, `lkB`, `lkC`")),
            "no cycle prediction among {msgs:#?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m
                    .contains("call to `LockSeed.LockGrabA` while holding `lkA` may re-LOCK it")),
            "no re-LOCK prediction among {msgs:#?}"
        );
        // The acyclic control contributes an edge but no finding about
        // its locks.
        assert!(
            !msgs.iter().any(|m| m.contains("`lkD`")),
            "acyclic control flagged: {msgs:#?}"
        );
        let stats = out.locks.expect("lock stats under analyze");
        assert!(stats.cycles >= 1);
        assert!(stats.edges >= 4, "edges {}", stats.edges);
    }

    #[test]
    fn many_seeds_compile() {
        for seed in 0..10 {
            let m = generate(&GenParams::small(&format!("Fuzz{seed}"), seed));
            let out = compile(&m.source, &m.defs);
            assert!(out.is_ok(), "seed {seed}: {:#?}", out.diagnostics);
        }
    }
}
