//! Workloads for evaluating the concurrent Modula-2+ compiler.
//!
//! The paper evaluated on 37 programs from the (proprietary) DEC SRC
//! Modula-2+ library plus a mechanically generated best-case module,
//! `Synth.mod`. This crate regenerates both, seeded and deterministic:
//!
//! * [`gen`] — the parameterized program generator (shape-controlled,
//!   always semantically valid);
//! * [`suite`] — the 37-program suite matching Table 1's gross
//!   characteristics;
//! * [`synth`] — `Synth.mod`, the no-DKY, ample-parallelism best case of
//!   §4.2 (Figure 2);
//! * [`edit`] — mechanical edit scenarios (k procedure bodies, one
//!   interface) for evaluating the incremental compilation cache;
//! * [`serve_load`] — a seeded many-client event stream (projects,
//!   revisions, edits) for driving the `ccm2-serve` compile service;
//! * [`session`] — seeded editor-session edit streams (benign, breaking
//!   and fixing edits) for driving `ccm2-watch`.
//!
//! # Examples
//!
//! ```
//! use ccm2_workload::{generate, GenParams};
//!
//! let m = generate(&GenParams::small("Demo", 1));
//! assert!(m.source.contains("IMPLEMENTATION MODULE Demo"));
//! assert_eq!(m.defs.len(), 4);
//! ```

pub mod edit;
pub mod gen;
pub mod serve_load;
pub mod session;
pub mod suite;
pub mod synth;

pub use edit::{apply_edits, body_edits, EditOp};
pub use gen::{generate, lock_seed_scenarios, GenParams, GeneratedModule, LockScenario};
pub use serve_load::{
    kill_points, router_drill_schedule, serve_load, shard_kill_schedule, shard_partition_schedule,
    PartitionWindow, RouterDrillKind, RouterDrillWindow, ServeEvent, ServeLoadParams,
};
pub use session::{edit_session_seeds, SessionEdit, SessionParams};
pub use suite::{generate_suite, suite_params, suite_stats, SuiteStats, SUITE_SIZE};
pub use synth::{synth_module, SynthParams};
