//! Seeded many-client load for the `ccm2-serve` compile service.
//!
//! The scenario is a build farm fronting a team: a handful of
//! *projects* (generated modules), each at some *revision*, and many
//! *clients* repeatedly asking for a build of whatever revision their
//! project is at. Edits happen at the **project** level — a revision
//! bump rewrites the project's source (a procedure-body edit, or
//! occasionally an interface edit) for *everyone* — so clients of the
//! same project at the same revision submit byte-identical requests.
//! That is exactly the traffic a service can exploit:
//!
//! * concurrent identical requests → single-flight deduplication;
//! * a new revision sharing most streams with the old one → warm
//!   `CacheSplice` hits from the shared artifact store;
//! * many projects cycling through a size-bounded store → LRU eviction
//!   pressure.
//!
//! Everything is derived from one seed; the same parameters always
//! produce the same event list.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edit::{apply_edits, EditOp};
use crate::gen::{generate, GenParams, GeneratedModule};
use ccm2_support::defs::DefProvider as _;

/// Shape of one serve-load run.
#[derive(Clone, Debug)]
pub struct ServeLoadParams {
    /// Master seed; everything else is derived from it.
    pub seed: u64,
    /// Distinct projects (generated modules).
    pub projects: usize,
    /// Distinct clients issuing requests.
    pub clients: usize,
    /// Total compile-request events.
    pub events: usize,
    /// A project-revision bump lands every this-many events (0 = never;
    /// every request then hits the same sources).
    pub edit_every: usize,
    /// Every this-many-th revision bump edits an imported interface
    /// instead of a procedure body (0 = bodies only). Interface edits
    /// invalidate every unit of the project, body edits only one.
    pub interface_every: usize,
}

impl Default for ServeLoadParams {
    fn default() -> ServeLoadParams {
        ServeLoadParams {
            seed: 0xCC42,
            projects: 4,
            clients: 8,
            events: 48,
            edit_every: 6,
            interface_every: 4,
        }
    }
}

/// One compile-request event: `client` asks for a build of `project`
/// at `revision`.
#[derive(Clone, Debug)]
pub struct ServeEvent {
    /// Position in the event stream (0-based).
    pub seq: usize,
    /// Issuing client.
    pub client: u64,
    /// Project index in `0..params.projects`.
    pub project: usize,
    /// The project's revision counter at this event (bumped by edits).
    pub revision: u64,
    /// The project's sources at that revision.
    pub module: GeneratedModule,
}

/// Generates the seeded event list. Deterministic: same parameters,
/// same events (including every module's exact source text).
pub fn serve_load(params: &ServeLoadParams) -> Vec<ServeEvent> {
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x5e27_e10a);
    let projects = params.projects.max(1);
    let clients = params.clients.max(1);

    // Project sources differ in name and seed, so their streams have
    // disjoint fingerprints in the shared store.
    let mut current: Vec<(u64, GeneratedModule)> = (0..projects)
        .map(|p| {
            let gp = GenParams::small(&format!("Proj{p}"), params.seed.wrapping_add(p as u64));
            (0, generate(&gp))
        })
        .collect();

    let mut edits_done: u64 = 0;
    (0..params.events)
        .map(|seq| {
            if params.edit_every > 0 && seq > 0 && seq % params.edit_every == 0 {
                // Bump a random project's revision for everyone.
                let p = rng.gen_range(0..projects);
                let (rev, module) = &mut current[p];
                let edit = if params.interface_every > 0
                    && edits_done % params.interface_every as u64
                        == params.interface_every as u64 - 1
                {
                    // The generator names a small project's interfaces
                    // `{Name}Lib0..`; editing the first one invalidates
                    // the whole project in the cache.
                    EditOp::Interface {
                        def: format!("{}Lib0", module.name),
                        tag: edits_done,
                    }
                } else {
                    EditOp::ProcBody {
                        index: rng.gen_range(0..module.params.procedures.max(1)),
                        seed: params.seed ^ edits_done,
                    }
                };
                let mut next = apply_edits(module, &[edit]);
                if next.source == module.source
                    && next.defs.all_definitions() == module.defs.all_definitions()
                {
                    // The random anchor missed (e.g. the index named a
                    // nested procedure); Proc0 always exists, and a body
                    // edit always inserts, so the revision really changes.
                    next = apply_edits(
                        module,
                        &[EditOp::ProcBody {
                            index: 0,
                            seed: params.seed ^ edits_done.wrapping_mul(0x9e37),
                        }],
                    );
                }
                *module = next;
                *rev += 1;
                edits_done += 1;
            }
            let p = rng.gen_range(0..projects);
            let (revision, module) = &current[p];
            ServeEvent {
                seq,
                client: rng.gen_range(0..clients) as u64,
                project: p,
                revision: *revision,
                module: module.clone(),
            }
        })
        .collect()
}

/// Seeded kill points for crash/restart drills over a serve load: `n`
/// distinct event indices in `1..params.events`, sorted ascending, so a
/// drill always kills with at least one request served and at least one
/// still to come. Derived from the master seed on a *different* stream
/// than the load itself, so asking for kill points never perturbs the
/// generated events.
pub fn kill_points(params: &ServeLoadParams, n: usize) -> Vec<usize> {
    if params.events < 2 || n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x4b11_1bd5);
    let mut points = std::collections::BTreeSet::new();
    let want = n.min(params.events - 1);
    while points.len() < want {
        points.insert(rng.gen_range(1..params.events));
    }
    points.into_iter().collect()
}

/// Seeded shard-kill schedule for fleet failover drills: `n` distinct
/// interior event indices, each paired with a shard id in `0..shards`,
/// sorted by index. The fabric drill kills the named shard just before
/// serving the event at that index. Like [`kill_points`], the schedule
/// rides its own seed stream so asking for it never perturbs the load,
/// and the same `(params, shards, n)` always yields the same schedule.
pub fn shard_kill_schedule(params: &ServeLoadParams, shards: u32, n: usize) -> Vec<(usize, u32)> {
    if params.events < 2 || n == 0 || shards == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xfab1_c417);
    let mut points = std::collections::BTreeSet::new();
    let want = n.min(params.events - 1);
    while points.len() < want {
        points.insert(rng.gen_range(1..params.events));
    }
    // Shard ids draw after the indices settle, so the count of rejected
    // duplicate indices above cannot shift which shard dies.
    points
        .into_iter()
        .map(|at| (at, rng.gen_range(0..shards)))
        .collect()
}

/// One window of a seeded partition schedule: the link to `shard` is
/// cut just before serving event `from` and healed just before serving
/// event `until` (`from < until`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Event index at which the partition opens.
    pub from: usize,
    /// Event index at which the link heals (exclusive).
    pub until: usize,
    /// The shard whose link is cut.
    pub shard: u32,
}

/// Seeded network-partition schedule for chaos drills: `n`
/// non-overlapping interior windows, each cutting one shard's link for
/// at least one event, sorted by start. Rides its own seed stream (like
/// [`kill_points`] / [`shard_kill_schedule`]) so asking for it never
/// perturbs the load, and the same `(params, shards, n)` always yields
/// the same windows.
pub fn shard_partition_schedule(
    params: &ServeLoadParams,
    shards: u32,
    n: usize,
) -> Vec<PartitionWindow> {
    if params.events < 3 || n == 0 || shards == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x9a27_7717);
    // Draw distinct interior indices, pair them up as window edges:
    // 2k sorted points make k disjoint (start, end) windows.
    let want = n.min((params.events - 1) / 2);
    let mut points = std::collections::BTreeSet::new();
    while points.len() < want * 2 {
        points.insert(rng.gen_range(1..params.events));
    }
    let points: Vec<usize> = points.into_iter().collect();
    points
        .chunks_exact(2)
        .map(|edge| PartitionWindow {
            from: edge[0],
            until: edge[1],
            shard: rng.gen_range(0..shards),
        })
        .collect()
}

/// What a router drill does to the fleet's control plane during one
/// window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterDrillKind {
    /// The leading router dies outright (no more ticks, clients fail
    /// over); the standby must promote.
    Kill,
    /// The leading router is partitioned from every shard for the
    /// window, then healed; the standby promotes meanwhile and the
    /// healed ex-leader must demote instead of split-braining.
    Partition,
    /// The leading router is silenced (no ticks) but *not* told, so
    /// after the standby promotes, both believe they lead until the
    /// ex-leader's next stamped frame draws an `EpochReject`.
    Duel,
}

/// One window of a seeded router drill: the disturbance opens just
/// before serving event `from` and (for recoverable kinds) heals just
/// before event `until`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterDrillWindow {
    /// Event index at which the disturbance opens.
    pub from: usize,
    /// Event index at which it heals (exclusive). `Kill` never heals;
    /// the field still bounds the window the drill asserts over.
    pub until: usize,
    /// What happens to the leading router.
    pub kind: RouterDrillKind,
}

/// Seeded router-drill schedule for split-brain drills: `n` disjoint
/// interior windows, each naming a [`RouterDrillKind`], sorted by
/// start. Rides its own seed stream (like [`kill_points`] /
/// [`shard_partition_schedule`]) so asking for it never perturbs the
/// load, and the same `(params, n)` always yields the same windows.
pub fn router_drill_schedule(params: &ServeLoadParams, n: usize) -> Vec<RouterDrillWindow> {
    if params.events < 3 || n == 0 {
        return Vec::new();
    }
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x5b1a_1274);
    let want = n.min((params.events - 1) / 2);
    let mut points = std::collections::BTreeSet::new();
    while points.len() < want * 2 {
        points.insert(rng.gen_range(1..params.events));
    }
    let points: Vec<usize> = points.into_iter().collect();
    points
        .chunks_exact(2)
        .map(|edge| RouterDrillWindow {
            from: edge[0],
            until: edge[1],
            kind: match rng.gen_range(0..3u32) {
                0 => RouterDrillKind::Kill,
                1 => RouterDrillKind::Partition,
                _ => RouterDrillKind::Duel,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_drill_schedule_is_deterministic_disjoint_and_seeded() {
        let p = ServeLoadParams::default();
        let a = router_drill_schedule(&p, 2);
        assert_eq!(a, router_drill_schedule(&p, 2), "same seed, same plan");
        assert_eq!(a.len(), 2);
        assert!(
            a.iter()
                .all(|w| w.from >= 1 && w.from < w.until && w.until < p.events),
            "interior, ordered windows: {a:?}"
        );
        assert!(
            a.windows(2).all(|pair| pair[0].until <= pair[1].from),
            "sorted, disjoint: {a:?}"
        );
        let b = router_drill_schedule(&ServeLoadParams { seed: 0x77, ..p }, 2);
        assert_ne!(a, b, "seed-sensitive");
        // Its own stream: independent of the shard-partition windows.
        let parts = shard_partition_schedule(&p, 3, 2);
        assert_ne!(
            a.iter().map(|w| w.from).collect::<Vec<_>>(),
            parts.iter().map(|w| w.from).collect::<Vec<_>>(),
            "independent of the partition stream"
        );
        assert!(router_drill_schedule(&p, 0).is_empty(), "no windows");
        let tiny = ServeLoadParams {
            events: 2,
            ..ServeLoadParams::default()
        };
        assert!(router_drill_schedule(&tiny, 2).is_empty());
    }

    #[test]
    fn load_is_deterministic() {
        let p = ServeLoadParams::default();
        let a = serve_load(&p);
        let b = serve_load(&p);
        assert_eq!(a.len(), p.events);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.client, y.client);
            assert_eq!((x.project, x.revision), (y.project, y.revision));
            assert_eq!(x.module.source, y.module.source);
        }
    }

    #[test]
    fn same_revision_means_identical_sources() {
        let events = serve_load(&ServeLoadParams::default());
        for a in &events {
            for b in &events {
                if a.project == b.project && a.revision == b.revision {
                    assert_eq!(a.module.source, b.module.source);
                    assert_eq!(
                        a.module.defs.all_definitions(),
                        b.module.defs.all_definitions()
                    );
                }
            }
        }
    }

    #[test]
    fn edits_advance_revisions_and_change_sources() {
        let events = serve_load(&ServeLoadParams::default());
        let max_rev = events.iter().map(|e| e.revision).max().unwrap_or(0);
        assert!(max_rev > 0, "some project got edited");
        // Different revisions of one project differ in content.
        for a in &events {
            for b in &events {
                if a.project == b.project && a.revision != b.revision {
                    let differs = a.module.source != b.module.source
                        || a.module.defs.all_definitions() != b.module.defs.all_definitions();
                    assert!(differs, "revision bump without content change");
                }
            }
        }
    }

    #[test]
    fn kill_points_are_deterministic_sorted_and_interior() {
        let p = ServeLoadParams::default();
        let a = kill_points(&p, 3);
        assert_eq!(a, kill_points(&p, 3), "same seed, same points");
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct: {a:?}");
        assert!(
            a.iter().all(|&k| k >= 1 && k < p.events),
            "interior points only: {a:?}"
        );
        // The points ride their own seed stream: asking for them does
        // not change the load, and a different seed moves them.
        let with = serve_load(&p);
        let without = serve_load(&p);
        assert_eq!(with.len(), without.len());
        let b = kill_points(&ServeLoadParams { seed: 0x1234, ..p }, 3);
        assert_ne!(a, b, "seed-sensitive");
        // Degenerate loads have no interior index to kill at.
        let tiny = ServeLoadParams {
            events: 1,
            ..ServeLoadParams::default()
        };
        assert!(kill_points(&tiny, 3).is_empty());
        // More points than interior indices clamps instead of spinning.
        let short = ServeLoadParams {
            events: 4,
            ..ServeLoadParams::default()
        };
        assert_eq!(kill_points(&short, 10).len(), 3);
    }

    #[test]
    fn shard_kill_schedule_is_deterministic_interior_and_in_range() {
        let p = ServeLoadParams::default();
        let a = shard_kill_schedule(&p, 3, 2);
        assert_eq!(a, shard_kill_schedule(&p, 3, 2), "same seed, same plan");
        assert_eq!(a.len(), 2);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "sorted: {a:?}");
        assert!(
            a.iter().all(|&(at, s)| at >= 1 && at < p.events && s < 3),
            "interior indices, valid shards: {a:?}"
        );
        let b = shard_kill_schedule(&ServeLoadParams { seed: 0x77, ..p }, 3, 2);
        assert_ne!(a, b, "seed-sensitive");
        assert!(shard_kill_schedule(&p, 0, 2).is_empty(), "no shards");
        assert!(shard_kill_schedule(&p, 3, 0).is_empty(), "no kills");
        let tiny = ServeLoadParams {
            events: 1,
            ..ServeLoadParams::default()
        };
        assert!(shard_kill_schedule(&tiny, 3, 2).is_empty());
    }

    #[test]
    fn partition_schedule_windows_are_disjoint_interior_and_seeded() {
        let p = ServeLoadParams::default();
        let a = shard_partition_schedule(&p, 3, 2);
        assert_eq!(
            a,
            shard_partition_schedule(&p, 3, 2),
            "same seed, same plan"
        );
        assert_eq!(a.len(), 2);
        for w in &a {
            assert!(w.from >= 1 && w.until < p.events, "interior window: {w:?}");
            assert!(w.from < w.until, "window spans at least one event: {w:?}");
            assert!(w.shard < 3, "valid shard: {w:?}");
        }
        // Windows never overlap: a drill heals one partition before
        // opening the next, so the plan must keep them disjoint.
        assert!(
            a.windows(2).all(|pair| pair[0].until <= pair[1].from),
            "sorted, disjoint: {a:?}"
        );
        let b = shard_partition_schedule(&ServeLoadParams { seed: 0x77, ..p }, 3, 2);
        assert_ne!(a, b, "seed-sensitive");
        // The schedule rides its own seed stream, distinct from the
        // kill schedule's, so the two drills do not mirror each other.
        let kills = shard_kill_schedule(&p, 3, 2);
        assert_ne!(
            a.iter().map(|w| w.from).collect::<Vec<_>>(),
            kills.iter().map(|&(at, _)| at).collect::<Vec<_>>(),
            "independent of the kill stream"
        );
        assert!(shard_partition_schedule(&p, 0, 2).is_empty(), "no shards");
        assert!(shard_partition_schedule(&p, 3, 0).is_empty(), "no windows");
        let tiny = ServeLoadParams {
            events: 2,
            ..ServeLoadParams::default()
        };
        assert!(shard_partition_schedule(&tiny, 3, 2).is_empty());
        // More windows than index pairs clamps instead of spinning.
        let short = ServeLoadParams {
            events: 6,
            ..ServeLoadParams::default()
        };
        assert!(shard_partition_schedule(&short, 3, 10).len() <= 2);
    }

    #[test]
    fn interface_edits_occur() {
        let events = serve_load(&ServeLoadParams {
            events: 120,
            ..ServeLoadParams::default()
        });
        assert!(
            events.iter().any(|e| e
                .module
                .defs
                .all_definitions()
                .iter()
                .flatten()
                .any(|(_, text)| text.contains("CONST EditN"))),
            "at least one interface edit landed"
        );
    }
}
