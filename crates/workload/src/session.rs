//! Seeded editor-session streams for `ccm2-watch`.
//!
//! A watch session absorbs a stream of [`EditOp`]s against one project
//! and re-checks after each revision. This module generates such
//! streams deterministically: mostly benign procedure-body edits (the
//! cache-friendly common case), a controlled fraction of
//! *syntax-breaking* edits and their matching fixes (exercising the
//! error-recovering parser and per-stream degradation), and rare
//! interface edits (whole-project invalidation — kept rare because an
//! editor loop's p99 must not be dominated by them).
//!
//! Invariant: every [`EditOp::BreakBody`] in a generated stream is
//! followed (eventually) by an [`EditOp::FixBody`] for the same
//! procedure, and the stream ends with no outstanding breaks — so the
//! final revision of a session replaying the stream compiles cleanly.

use crate::edit::EditOp;
use crate::gen::GenParams;

/// One step of a generated session: which suite module the edit
/// targets, and the edit itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionEdit {
    /// Index into the module list the stream was generated against.
    pub module: usize,
    /// The edit to apply to that module's sources.
    pub op: EditOp,
}

/// Tuning knobs for [`edit_session_seeds`]. Percentages are weights out
/// of 100 for each generated step; whatever `break_pct` leaves
/// outstanding is repaired by forced fixes before the stream ends.
#[derive(Clone, Debug)]
pub struct SessionParams {
    /// Total edits to generate.
    pub edits: usize,
    /// RNG seed: same seed, same stream.
    pub seed: u64,
    /// Weight of syntax-breaking edits (default 12).
    pub break_pct: u32,
    /// Weight of fixing an outstanding break early (default 10).
    pub fix_pct: u32,
    /// Maximum interface edits in the whole stream (default 1 — they
    /// invalidate every cached unit of the project).
    pub max_interface_edits: usize,
}

impl Default for SessionParams {
    fn default() -> SessionParams {
        SessionParams {
            edits: 100,
            seed: 0x005E_5510,
            break_pct: 12,
            fix_pct: 10,
            max_interface_edits: 1,
        }
    }
}

/// Deterministic splitmix-style step (same scheme the generators in
/// [`crate::gen`] use).
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a seeded multi-module edit stream over `modules` (their
/// [`GenParams`] — the stream only needs procedure counts and interface
/// names, not the generated text). See the module docs for the shape
/// guarantees.
pub fn edit_session_seeds(modules: &[GenParams], params: &SessionParams) -> Vec<SessionEdit> {
    assert!(!modules.is_empty(), "need at least one module");
    let mut state = params.seed ^ 0xCC_0DE;
    let mut out = Vec::with_capacity(params.edits);
    // Outstanding breaks, in insertion order: (module, proc index).
    let mut broken: Vec<(usize, usize)> = Vec::new();
    let mut interface_edits = 0usize;
    while out.len() < params.edits {
        let remaining = params.edits - out.len();
        // Reserve the tail of the stream for repairing whatever is
        // still broken, so the final revision compiles cleanly.
        if remaining <= broken.len() {
            let (module, index) = broken.remove(0);
            out.push(SessionEdit {
                module,
                op: EditOp::FixBody { index },
            });
            continue;
        }
        let module = (next(&mut state) % modules.len() as u64) as usize;
        let procs = modules[module].procedures.max(1);
        let index = (next(&mut state) % procs as u64) as usize;
        let seed = next(&mut state);
        let roll = (next(&mut state) % 100) as u32;
        // A new break needs its own slot *and* a later slot for its fix.
        let can_break = remaining > broken.len() + 1;
        let op = if roll < params.break_pct && can_break && !broken.contains(&(module, index)) {
            broken.push((module, index));
            EditOp::BreakBody { index, seed }
        } else if roll < params.break_pct + params.fix_pct && !broken.is_empty() {
            let at = (next(&mut state) % broken.len() as u64) as usize;
            let (module, index) = broken.remove(at);
            out.push(SessionEdit {
                module,
                op: EditOp::FixBody { index },
            });
            continue;
        } else if roll >= 98
            && interface_edits < params.max_interface_edits
            && modules[module].interfaces > 0
        {
            interface_edits += 1;
            // The generator names a module's interfaces
            // `{name}Lib{0..}`; edit the first one.
            EditOp::Interface {
                def: format!("{}Lib0", modules[module].name),
                tag: seed % 1000,
            }
        } else {
            EditOp::ProcBody { index, seed }
        };
        out.push(SessionEdit { module, op });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::suite_params;

    fn suite_mods() -> Vec<GenParams> {
        (0..8).map(suite_params).collect()
    }

    #[test]
    fn streams_are_deterministic() {
        let mods = suite_mods();
        let a = edit_session_seeds(&mods, &SessionParams::default());
        let b = edit_session_seeds(&mods, &SessionParams::default());
        assert_eq!(a, b);
        let c = edit_session_seeds(
            &mods,
            &SessionParams {
                seed: 99,
                ..SessionParams::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn every_break_is_fixed_and_stream_ends_clean() {
        let mods = suite_mods();
        for seed in [1u64, 7, 0x005E_5510] {
            let stream = edit_session_seeds(
                &mods,
                &SessionParams {
                    seed,
                    ..SessionParams::default()
                },
            );
            assert_eq!(stream.len(), 100);
            let mut broken: Vec<(usize, usize)> = Vec::new();
            let mut saw_break = false;
            for e in &stream {
                match &e.op {
                    EditOp::BreakBody { index, .. } => {
                        saw_break = true;
                        broken.push((e.module, *index));
                    }
                    EditOp::FixBody { index } => {
                        let pos = broken
                            .iter()
                            .position(|b| *b == (e.module, *index))
                            .expect("fix matches an outstanding break");
                        broken.remove(pos);
                    }
                    _ => {}
                }
            }
            assert!(saw_break, "stream exercises breakage");
            assert!(broken.is_empty(), "no outstanding breaks at stream end");
        }
    }

    #[test]
    fn interface_edits_are_rare() {
        let mods = suite_mods();
        let stream = edit_session_seeds(&mods, &SessionParams::default());
        let ifaces = stream
            .iter()
            .filter(|e| matches!(e.op, EditOp::Interface { .. }))
            .count();
        assert!(ifaces <= 1, "at most one whole-project invalidation");
    }
}
