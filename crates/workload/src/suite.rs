//! The 37-program test suite (paper §4.1, Table 1).
//!
//! The paper's suite came from the DEC SRC Modula-2+ library — proprietary
//! and long gone. This module regenerates a suite of 37 modules whose
//! *gross characteristics* match Table 1: module sizes from a few KB to a
//! few hundred KB, 4–133 imported interfaces with nesting depth 1–12, and
//! 2–221 procedures, log-distributed so the medians land near the paper's
//! (size ≈ 13 KB, 17 interfaces, depth 5, 16 procedures, 37 streams).
//!
//! Every module is generated from a fixed seed, so the whole evaluation
//! is reproducible bit-for-bit.

use crate::gen::{generate, GenParams, GeneratedModule};

/// Number of programs in the suite, as in the paper.
pub const SUITE_SIZE: usize = 37;

/// Log-interpolates between `lo` and `hi` at fraction `f ∈ [0, 1]`.
fn log_interp(lo: f64, hi: f64, f: f64) -> f64 {
    (lo.ln() + (hi.ln() - lo.ln()) * f).exp()
}

/// The shape parameters of suite entry `i` (0-based).
///
/// Entries are ordered small → large; the benchmark harness later sorts
/// by measured sequential compile time to form the paper's quartiles.
pub fn suite_params(i: usize) -> GenParams {
    assert!(i < SUITE_SIZE, "suite has {SUITE_SIZE} programs");
    let f = i as f64 / (SUITE_SIZE - 1) as f64;
    // Procedures: 2 .. 221, median ≈ 16 ⇒ bias the curve downward.
    let procedures = log_interp(2.0, 221.0, f.powf(1.35)).round() as usize;
    // Interfaces: 4 .. 133, median ≈ 17.
    let interfaces = log_interp(4.0, 133.0, f.powf(1.25)).round() as usize;
    // Import nesting depth: 1 .. 12, median ≈ 5.
    let import_depth = (1.0 + 11.0 * f.powf(1.1)).round() as usize;
    let import_depth = import_depth.min(interfaces.max(1));
    // Statement volume grows slowly with size.
    let stmts_per_proc = log_interp(10.0, 42.0, f).round() as usize;
    GenParams {
        name: format!("Suite{i:02}"),
        seed: 0xCCD_1992 + i as u64 * 7919,
        procedures,
        interfaces,
        import_depth,
        stmts_per_proc,
        nested_ratio: 0.12,
        lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
    }
}

/// Generates the whole suite (37 modules). This is deterministic and
/// takes a few hundred milliseconds.
pub fn generate_suite() -> Vec<GeneratedModule> {
    (0..SUITE_SIZE)
        .map(|i| generate(&suite_params(i)))
        .collect()
}

/// Gross characteristics of a generated suite (Table 1's columns,
/// without the compile times — those come from running the compiler).
#[derive(Clone, Copy, Debug, Default)]
pub struct SuiteStats {
    /// Minimum / median / maximum module size in bytes.
    pub size: (usize, usize, usize),
    /// Minimum / median / maximum imported interfaces.
    pub interfaces: (usize, usize, usize),
    /// Minimum / median / maximum import nesting depth.
    pub depth: (usize, usize, usize),
    /// Minimum / median / maximum procedure count.
    pub procedures: (usize, usize, usize),
    /// Minimum / median / maximum stream count (1 + interfaces +
    /// procedures).
    pub streams: (usize, usize, usize),
}

fn min_med_max(mut v: Vec<usize>) -> (usize, usize, usize) {
    v.sort_unstable();
    (v[0], v[v.len() / 2], v[v.len() - 1])
}

/// Computes the suite's gross characteristics.
pub fn suite_stats(suite: &[GeneratedModule]) -> SuiteStats {
    SuiteStats {
        size: min_med_max(suite.iter().map(|m| m.size_bytes()).collect()),
        interfaces: min_med_max(suite.iter().map(|m| m.params.interfaces).collect()),
        depth: min_med_max(suite.iter().map(|m| m.params.import_depth).collect()),
        procedures: min_med_max(suite.iter().map(|m| m.params.procedures).collect()),
        streams: min_med_max(
            suite
                .iter()
                .map(|m| 1 + m.params.interfaces + m.params.procedures)
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_37_programs() {
        assert_eq!(generate_suite().len(), SUITE_SIZE);
    }

    #[test]
    fn shape_matches_table_1_ranges() {
        let suite = generate_suite();
        let s = suite_stats(&suite);
        // Paper Table 1: procedures 2..221 (median 16), interfaces 4..133
        // (median 17), depth 1..12 (median 5), streams 15..315 (median 37).
        assert_eq!(s.procedures.0, 2);
        assert_eq!(s.procedures.2, 221);
        assert!(
            (8..=30).contains(&s.procedures.1),
            "median procs {}",
            s.procedures.1
        );
        assert_eq!(s.interfaces.0, 4);
        assert_eq!(s.interfaces.2, 133);
        assert!(
            (10..=28).contains(&s.interfaces.1),
            "median ifaces {}",
            s.interfaces.1
        );
        assert_eq!(s.depth.0, 1);
        assert_eq!(s.depth.2, 12);
        assert!((3..=7).contains(&s.depth.1), "median depth {}", s.depth.1);
        assert!(s.streams.0 >= 7, "min streams {}", s.streams.0);
        assert!(s.streams.2 >= 250, "max streams {}", s.streams.2);
        assert!(
            (25..=60).contains(&s.streams.1),
            "median streams {}",
            s.streams.1
        );
    }

    #[test]
    fn first_and_last_compile() {
        for i in [0, SUITE_SIZE - 1] {
            let m = generate(&suite_params(i));
            let out = ccm2_seq::compile(&m.source, &m.defs);
            assert!(out.is_ok(), "suite[{i}]: {:#?}", out.diagnostics);
        }
    }

    #[test]
    fn sizes_span_orders_of_magnitude() {
        let suite = generate_suite();
        let s = suite_stats(&suite);
        assert!(s.size.0 < 10_000, "min size {}", s.size.0);
        assert!(s.size.2 > 80_000, "max size {}", s.size.2);
    }
}
