//! `Synth.mod` — the mechanically generated best-case module (paper §4.2).
//!
//! "This module has been constructed so that it generates ample parallel
//! work for the compiler and never incurs a DKY blockage": many
//! equally-sized, completely self-contained procedures — no imports, no
//! references to module-level declarations, no nested procedures — so
//! every procedure stream is compilable the moment its heading is
//! processed, and code generation saturates all workers.

/// Parameters for the synthetic best-case module.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Number of identical procedures.
    pub procedures: usize,
    /// Statements per procedure body.
    pub stmts_per_proc: usize,
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            procedures: 256,
            stmts_per_proc: 150,
        }
    }
}

/// Generates `Synth.mod`.
pub fn synth_module(params: SynthParams) -> String {
    let mut src = String::from("IMPLEMENTATION MODULE Synth;\nVAR gOut : INTEGER;\n");
    for i in 0..params.procedures {
        src.push_str(&format!(
            "PROCEDURE Work{i}(p0, p1 : INTEGER) : INTEGER;\nVAR a, b, c : INTEGER;\nBEGIN\n  a := p0; b := p1; c := 0;\n"
        ));
        for s in 0..params.stmts_per_proc {
            match s % 4 {
                0 => src.push_str("  c := c + a * b;\n"),
                1 => src.push_str("  IF a > b THEN a := a - 1 ELSE b := b - 1 END;\n"),
                2 => src.push_str("  a := ABS(a - c) + 1;\n"),
                _ => src.push_str("  b := (b + a) MOD 97 + 1;\n"),
            }
        }
        src.push_str(&format!("  RETURN c\nEND Work{i};\n\n"));
    }
    src.push_str("BEGIN\n  gOut := 0;\n");
    for i in 0..params.procedures.min(4) {
        src.push_str(&format!("  gOut := gOut + Work{i}(7, 11);\n"));
    }
    src.push_str("END Synth.\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccm2_seq::compile;
    use ccm2_support::defs::DefLibrary;

    #[test]
    fn synth_compiles_cleanly() {
        let src = synth_module(SynthParams {
            procedures: 8,
            stmts_per_proc: 10,
        });
        let out = compile(&src, &DefLibrary::new());
        assert!(out.is_ok(), "{:#?}", out.diagnostics);
        assert_eq!(out.procedures, 8);
        assert_eq!(out.imported_interfaces, 0, "no imports, no DKY sources");
    }

    #[test]
    fn synth_has_no_cross_references() {
        let src = synth_module(SynthParams::default());
        // Procedures never call each other or touch globals (other than
        // the module body).
        assert!(!src.contains("gOut := gOut + Work0(7, 11);\n  a"));
        for line in src.lines().filter(|l| l.starts_with("  ")) {
            assert!(
                !line.contains("Work") || line.contains("gOut"),
                "cross-proc reference in body: {line}"
            );
        }
    }

    #[test]
    fn default_is_large_enough_for_eight_processors() {
        let p = SynthParams::default();
        assert!(p.procedures >= 8 * 8, "ample parallel work");
    }
}
