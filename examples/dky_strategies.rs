//! DKY strategy comparison: compile the same module under the paper's
//! four Doesn't-Know-Yet strategies (§2.2) and compare virtual times and
//! blockage counts. All four must produce the identical object image.
//!
//! ```text
//! cargo run --release --example dky_strategies [suite-index 0..36]
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;
use ccm2_workload::suite_params;

fn main() {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(28)
        .min(36);
    let m = ccm2_workload::generate(&suite_params(index));
    println!(
        "module {} ({} procedures, {} interfaces), 8 virtual processors\n",
        m.name, m.params.procedures, m.params.interfaces
    );
    println!("strategy     | virtual time | DKY blockages | image identical");
    println!("-------------+--------------+---------------+----------------");
    let mut reference = None;
    for strategy in DkyStrategy::ALL {
        let out = compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                strategy,
                executor: ccm2::Executor::Sim(SimConfig::firefly(8)),
                ..Options::default()
            },
        );
        assert!(
            out.is_ok(),
            "{:#?}",
            &out.diagnostics[..out.diagnostics.len().min(5)]
        );
        // Compare canonical disassembly (symbols differ across interners).
        let listing = out
            .image
            .as_ref()
            .expect("image")
            .disassemble(&out.interner);
        let identical = match &reference {
            None => {
                reference = Some(listing);
                true
            }
            Some(r) => *r == listing,
        };
        println!(
            "{:<12} | {:>12} | {:>13} | {}",
            strategy.name(),
            out.report.virtual_time.expect("sim"),
            out.stats.dky_blockages(),
            if identical { "yes" } else { "NO (bug!)" },
        );
        assert!(identical, "object code must not depend on the DKY strategy");
    }
}
