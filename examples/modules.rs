//! Separate compilation: a main module against a small library of
//! definition modules (the paper's compilation unit model, §3 — `M.def`
//! interfaces resolved through the once-only table, FROM-imports and
//! qualified references exercising the Table 2 lookup classes).
//!
//! ```text
//! cargo run --example modules
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;

fn main() {
    let mut lib = DefLibrary::new();
    lib.insert(
        "Limits",
        "DEFINITION MODULE Limits; \
         CONST MaxUsers = 64; MaxName = 32; \
         END Limits.",
    );
    lib.insert(
        "Geometry",
        "DEFINITION MODULE Geometry; \
         IMPORT Limits; \
         TYPE Point = RECORD x, y : INTEGER END; \
         CONST Dim = 2; Cells = Limits.MaxUsers DIV Dim; \
         PROCEDURE Area(w, h : INTEGER) : INTEGER; \
         END Geometry.",
    );

    let source = "MODULE Modules; \
        IMPORT Geometry; \
        FROM Limits IMPORT MaxUsers; \
        VAR p : Geometry.Point; total : INTEGER; \
        PROCEDURE Classify(n : INTEGER) : INTEGER; \
        BEGIN \
          IF n > MaxUsers THEN RETURN 1 \
          ELSIF n = Geometry.Cells THEN RETURN 2 \
          ELSE RETURN 0 END \
        END Classify; \
        BEGIN \
          p.x := Geometry.Dim; p.y := Geometry.Cells; \
          total := Classify(100) * 100 + Classify(32) * 10 + Classify(1); \
          WriteInt(total, 0); WriteLn; \
          WriteInt(p.x + p.y, 0); WriteLn \
        END Modules.";

    let out = compile_concurrent(
        source,
        Arc::new(lib),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "diagnostics: {:#?}", out.diagnostics);
    println!(
        "streams: {} ({} interfaces at depth {}, {} procedure)",
        out.streams, out.imported_interfaces, out.import_nesting_depth, out.procedures
    );
    println!(
        "qualified lookups: {}   simple lookups: {}",
        out.stats.qualified_total(),
        out.stats.simple_total()
    );
    let text = Vm::new(out.interner.clone())
        .run(out.image.as_ref().expect("image"))
        .expect("runs");
    print!("{text}");
    assert_eq!(text, "120\n34\n");
}
