//! Quickstart: compile a Modula-2+ module with the concurrent compiler,
//! inspect the compilation, disassemble the merged image, and run it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;

const SOURCE: &str = r#"
MODULE Quickstart;

CONST Limit = 10;

VAR total : INTEGER;

PROCEDURE Square(x : INTEGER) : INTEGER;
BEGIN
  RETURN x * x
END Square;

PROCEDURE SumOfSquares(n : INTEGER) : INTEGER;
VAR i, acc : INTEGER;
BEGIN
  acc := 0;
  FOR i := 1 TO n DO
    acc := acc + Square(i)
  END;
  RETURN acc
END SumOfSquares;

BEGIN
  total := SumOfSquares(Limit);
  WriteString('sum of squares 1..');
  WriteInt(Limit, 0);
  WriteString(' = ');
  WriteInt(total, 0);
  WriteLn
END Quickstart.
"#;

fn main() {
    // Compile on two worker threads under the Supervisors scheduler. The
    // source is split into streams (one per procedure) that are lexed,
    // parsed, analyzed and code-generated concurrently, then merged.
    let out = compile_concurrent(
        SOURCE,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "diagnostics: {:#?}", out.diagnostics);

    println!(
        "streams: {} (1 main + {} procedures)",
        out.streams, out.procedures
    );
    println!("tasks run: {}\n", out.report.tasks_run);

    let image = out.image.expect("compiled image");
    println!("{}", image.disassemble(&out.interner));

    let mut vm = Vm::new(Arc::clone(&out.interner));
    let output = vm.run(&image).expect("program runs");
    println!("program output:\n{output}");
    assert_eq!(output.trim(), "sum of squares 1..10 = 385");
}
