//! End-to-end: compile a realistic Modula-2+ program (a prime sieve with
//! records, pointers, sets and nested procedures) with the concurrent
//! compiler and execute the merged image on the VM.
//!
//! ```text
//! cargo run --example run_program
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;

const SOURCE: &str = r#"
MODULE Sieve;

CONST Max = 50;

TYPE NodePtr = POINTER TO Node;
     Node = RECORD value : INTEGER; next : NodePtr END;

VAR primesHead : NodePtr;
    count : INTEGER;
    small : BITSET;

PROCEDURE IsPrime(n : INTEGER) : BOOLEAN;
VAR d : INTEGER;
BEGIN
  IF n < 2 THEN RETURN FALSE END;
  d := 2;
  WHILE d * d <= n DO
    IF n MOD d = 0 THEN RETURN FALSE END;
    INC(d)
  END;
  RETURN TRUE
END IsPrime;

PROCEDURE Collect(limit : INTEGER);
VAR n : INTEGER;

  PROCEDURE Push(v : INTEGER);
  VAR node : NodePtr;
  BEGIN
    NEW(node);
    node^.value := v;
    node^.next := primesHead;
    primesHead := node;
    INC(count)
  END Push;

BEGIN
  FOR n := 2 TO limit DO
    IF IsPrime(n) THEN
      Push(n);
      IF n < 32 THEN INCL(small, n) END
    END
  END
END Collect;

PROCEDURE PrintAll(head : NodePtr);
BEGIN
  WHILE head # NIL DO
    WriteInt(head^.value, 4);
    head := head^.next
  END;
  WriteLn
END PrintAll;

BEGIN
  primesHead := NIL;
  count := 0;
  small := {};
  Collect(Max);
  WriteString('primes up to ');
  WriteInt(Max, 0);
  WriteString(' (descending):');
  WriteLn;
  PrintAll(primesHead);
  WriteString('count = ');
  WriteInt(count, 0);
  WriteLn;
  IF 31 IN small THEN WriteString('31 is in the small-prime set') END;
  WriteLn
END Sieve.
"#;

fn main() {
    let out = compile_concurrent(
        SOURCE,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "diagnostics: {:#?}", out.diagnostics);
    println!(
        "compiled {} procedures across {} streams; {} tasks\n",
        out.procedures, out.streams, out.report.tasks_run
    );
    let image = out.image.expect("image");
    let mut vm = Vm::new(Arc::clone(&out.interner));
    let text = vm.run(&image).expect("program runs");
    print!("{text}");
    assert!(text.contains("count = 15"), "50 has 15 primes below it");
    assert!(text.contains("31 is in the small-prime set"));
}
