//! Speedup sweep: compile one module on 1..=8 simulated processors and
//! print the self-relative speedup curve (paper Figure 1 for a single
//! program).
//!
//! ```text
//! cargo run --release --example speedup [suite-index 0..36 | synth]
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;
use ccm2_workload::{suite_params, synth_module, SynthParams};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "25".to_string());
    let (name, source, defs) = if arg == "synth" {
        (
            "Synth".to_string(),
            synth_module(SynthParams::default()),
            DefLibrary::new(),
        )
    } else {
        let index: usize = arg.parse().unwrap_or(25).min(36);
        let m = ccm2_workload::generate(&suite_params(index));
        (m.name.clone(), m.source.clone(), m.defs.clone())
    };

    println!("module {name}: sweeping 1..=8 virtual processors\n");
    let mut t1 = 0u64;
    println!("  N |  virtual time | speedup");
    println!("----+---------------+--------");
    for procs in 1..=8u32 {
        let out = compile_concurrent(
            &source,
            Arc::new(defs.clone()),
            Arc::new(Interner::new()),
            Options {
                executor: ccm2::Executor::Sim(SimConfig::firefly(procs)),
                ..Options::default()
            },
        );
        assert!(
            out.is_ok(),
            "{:#?}",
            &out.diagnostics[..out.diagnostics.len().min(5)]
        );
        let t = out.report.virtual_time.expect("sim");
        if procs == 1 {
            t1 = t;
        }
        println!("  {procs} | {t:>13} | {:>6.2}", t1 as f64 / t as f64);
    }
}
