//! WatchTool: compile a generated module on the 8-processor virtual-time
//! simulator and render the processor-activity snapshot (paper Figures 4
//! and 7).
//!
//! ```text
//! cargo run --release --example watchtool [suite-index 0..36]
//! ```

use std::sync::Arc;

use ccm2_repro::prelude::*;
use ccm2_sched::render_watchtool;
use ccm2_workload::suite_params;

fn main() {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
        .min(36);
    let module = ccm2_workload::generate(&suite_params(index));
    println!(
        "compiling {} ({} bytes, {} procedures, {} interfaces) on 8 virtual processors...\n",
        module.name,
        module.size_bytes(),
        module.params.procedures,
        module.params.interfaces
    );
    let out = compile_concurrent(
        &module.source,
        Arc::new(module.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            executor: ccm2::Executor::Sim(SimConfig::firefly(8)),
            ..Options::default()
        },
    );
    assert!(
        out.is_ok(),
        "{:#?}",
        &out.diagnostics[..out.diagnostics.len().min(5)]
    );
    println!("{}", render_watchtool(&out.report.trace, 8, 120));
    println!(
        "virtual time: {} units   utilization: {:.0}%   tasks: {}   streams: {}",
        out.report.virtual_time.expect("sim"),
        out.report.trace.utilization(8) * 100.0,
        out.report.tasks_run,
        out.streams,
    );
}
