//! `ccm2c` — the concurrent Modula-2+ compiler, as a command-line tool.
//!
//! ```text
//! ccm2c [options] <module.mod>
//!
//!   --workers N        compile on N OS-thread workers (default 2)
//!   --sim P            compile on P simulated processors (deterministic;
//!                      prints virtual time)
//!   --seq              use the sequential baseline compiler
//!   --strategy S       DKY strategy: avoidance|pessimistic|skeptical|optimistic
//!   --headings MODE    heading flow: copy|reprocess   (paper §2.4 alt 1/3)
//!   --disasm           print the merged image's disassembly
//!   --run              execute the compiled module on the VM
//!   --watchtool        print the processor-activity snapshot (--sim only)
//!   --stats            print identifier-lookup statistics (Table 2 form)
//! ```
//!
//! Imported definition modules are resolved as `<Name>.def` files in the
//! same directory as the main module.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use ccm2::{compile_concurrent, Executor, Options};
use ccm2_sched::{render_watchtool, SimConfig};
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::DefProvider;
use ccm2_support::Interner;
use ccm2_vm::Vm;

/// Resolves `Name.def` files from the main module's directory.
struct DirProvider {
    dir: PathBuf,
}

impl DefProvider for DirProvider {
    fn definition_source(&self, name: &str) -> Option<String> {
        std::fs::read_to_string(self.dir.join(format!("{name}.def"))).ok()
    }
}

struct Args {
    input: PathBuf,
    workers: usize,
    sim: Option<u32>,
    seq: bool,
    strategy: DkyStrategy,
    headings: HeadingMode,
    disasm: bool,
    run: bool,
    watchtool: bool,
    stats: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ccm2c [--workers N | --sim P | --seq] [--strategy S] \
         [--headings copy|dual|reprocess] [--disasm] [--run] [--watchtool] [--stats] <module.mod>"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: PathBuf::new(),
        workers: 2,
        sim: None,
        seq: false,
        strategy: DkyStrategy::Skeptical,
        headings: HeadingMode::CopyToChild,
        disasm: false,
        run: false,
        watchtool: false,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--sim" => {
                args.sim = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--seq" => args.seq = true,
            "--strategy" => {
                args.strategy = match it.next().as_deref() {
                    Some("avoidance") => DkyStrategy::Avoidance,
                    Some("pessimistic") => DkyStrategy::Pessimistic,
                    Some("skeptical") => DkyStrategy::Skeptical,
                    Some("optimistic") => DkyStrategy::Optimistic,
                    _ => usage(),
                }
            }
            "--headings" => {
                args.headings = match it.next().as_deref() {
                    Some("copy") => HeadingMode::CopyToChild,
                    Some("dual") => HeadingMode::Dual,
                    Some("reprocess") => HeadingMode::Reprocess,
                    _ => usage(),
                }
            }
            "--disasm" => args.disasm = true,
            "--run" => args.run = true,
            "--watchtool" => args.watchtool = true,
            "--stats" => args.stats = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && args.input.as_os_str().is_empty() => {
                args.input = PathBuf::from(other)
            }
            _ => usage(),
        }
    }
    if args.input.as_os_str().is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let source = match std::fs::read_to_string(&args.input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccm2c: cannot read {}: {e}", args.input.display());
            return ExitCode::from(2);
        }
    };
    let dir = args
        .input
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .to_path_buf();
    let provider = Arc::new(DirProvider { dir });
    let interner = Arc::new(Interner::new());

    if args.seq {
        let out = ccm2_seq::compile_with(
            &source,
            provider.as_ref(),
            Arc::clone(&interner),
            Arc::new(ccm2_support::NullMeter),
            args.headings,
        );
        return finishing(
            out.image,
            out.diagnostics,
            &out.sources,
            interner,
            &args,
            None,
        );
    }

    let executor = match args.sim {
        Some(p) => Executor::Sim(SimConfig::firefly(p)),
        None => Executor::Threads(args.workers.max(1)),
    };
    let options = Options {
        strategy: args.strategy,
        heading_mode: args.headings,
        executor,
        ..Options::default()
    };
    let out = compile_concurrent(&source, provider, Arc::clone(&interner), options);

    if let Some(vt) = out.report.virtual_time {
        eprintln!(
            "compiled {} streams ({} procedures, {} interfaces) in {vt} virtual units on {} processors",
            out.streams,
            out.procedures,
            out.imported_interfaces,
            args.sim.unwrap_or(0),
        );
    } else {
        eprintln!(
            "compiled {} streams ({} procedures, {} interfaces) in {:.1} ms on {} workers",
            out.streams,
            out.procedures,
            out.imported_interfaces,
            out.report.wall_micros as f64 / 1000.0,
            args.workers,
        );
    }
    if args.watchtool {
        let procs = args.sim.unwrap_or(args.workers as u32);
        println!("{}", render_watchtool(&out.report.trace, procs, 110));
    }
    if args.stats {
        println!(
            "simple identifier lookups ({} total):",
            out.stats.simple_total()
        );
        for (label, n, pct) in out.stats.simple_rows() {
            println!("  {label:<33} {n:>8}  {pct:>5.2}%");
        }
        println!("qualified lookups ({} total):", out.stats.qualified_total());
        for (label, n, pct) in out.stats.qualified_rows() {
            println!("  {label:<25} {n:>8}  {pct:>5.2}%");
        }
        println!("DKY blockages: {}", out.stats.dky_blockages());
    }
    finishing(
        out.image,
        out.diagnostics,
        &out.sources,
        interner,
        &args,
        out.report.virtual_time,
    )
}

fn finishing(
    image: Option<ccm2_codegen::merge::ModuleImage>,
    diagnostics: Vec<ccm2_support::Diagnostic>,
    sources: &ccm2_support::SourceMap,
    interner: Arc<Interner>,
    args: &Args,
    _vt: Option<u64>,
) -> ExitCode {
    let had_errors = diagnostics
        .iter()
        .any(|d| d.severity == ccm2_support::Severity::Error);
    for d in &diagnostics {
        let (file, pos) = sources
            .get(d.file)
            .map(|f| (f.name().to_string(), f.line_col(d.span.lo).to_string()))
            .unwrap_or_else(|| (format!("file#{}", d.file.0), String::from("?")));
        eprintln!("{file}:{pos}: {}: {}", d.severity, d.message);
    }
    let Some(image) = image else {
        return ExitCode::FAILURE;
    };
    if had_errors {
        return ExitCode::FAILURE;
    }
    if args.disasm {
        println!("{}", image.disassemble(&interner));
    }
    if args.run {
        match Vm::new(interner).run(&image) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("ccm2c: runtime error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
