//! `ccm2-repro` — the workspace facade for the reproduction of
//! *A Concurrent Compiler for Modula-2+* (Wortman & Junkin, PLDI 1992).
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports the pieces a
//! downstream user would touch. The real work lives in the member crates:
//!
//! | crate | role |
//! |---|---|
//! | [`ccm2`] | the concurrent compiler (splitter, importer, driver) |
//! | [`ccm2_seq`] | the sequential baseline compiler |
//! | [`ccm2_syntax`] | lexer, token model, parser |
//! | [`ccm2_sema`] | types, concurrent symbol tables, DKY strategies |
//! | [`ccm2_codegen`] | M-code generation and late merge |
//! | [`ccm2_vm`] | interpreter for merged images |
//! | [`ccm2_sched`] | Supervisors scheduler: threads + virtual-time sim |
//! | [`ccm2_workload`] | test-suite and `Synth.mod` generators |
//!
//! # Examples
//!
//! Compile and run a program, concurrently:
//!
//! ```
//! use std::sync::Arc;
//! use ccm2_repro::prelude::*;
//!
//! let out = compile_concurrent(
//!     "MODULE Hi; BEGIN WriteInt(6 * 7, 0) END Hi.",
//!     Arc::new(DefLibrary::new()),
//!     Arc::new(Interner::new()),
//!     Options::threads(2),
//! );
//! assert!(out.is_ok());
//! let text = Vm::new(out.interner.clone())
//!     .run(out.image.as_ref().expect("image"))
//!     .expect("runs");
//! assert_eq!(text, "42");
//! ```

pub use ccm2;
pub use ccm2_codegen;
pub use ccm2_sched;
pub use ccm2_sema;
pub use ccm2_seq;
pub use ccm2_support;
pub use ccm2_syntax;
pub use ccm2_vm;
pub use ccm2_workload;

/// The names most programs need.
pub mod prelude {
    pub use ccm2::{compile_concurrent, ConcurrentOutput, Executor, Options};
    pub use ccm2_sched::SimConfig;
    pub use ccm2_sema::declare::HeadingMode;
    pub use ccm2_sema::symtab::DkyStrategy;
    pub use ccm2_seq::compile as compile_sequential;
    pub use ccm2_support::defs::{DefLibrary, DefProvider};
    pub use ccm2_support::Interner;
    pub use ccm2_vm::Vm;
    pub use ccm2_workload::{generate, GenParams};
}
