//! Control-plane chaos properties: a seeded network partition —
//! detected and evicted by the heartbeat failure detector, healed, and
//! warm-rejoined — must change *nothing* a client can observe. Every
//! admitted request still returns the byte-identical object and
//! diagnostics of one standalone [`CompileService`], on the
//! deterministic loopback transport and on real TCP sockets alike. A
//! crash-restart of the whole fleet from its durable `CCM2RLOG` replica
//! logs must come back holding every parked delta op.

use std::sync::Arc;

use proptest::prelude::*;

use ccm2_fabric::{
    FabricResponse, FabricRouter, FrameHandler, HealthState, HeartbeatConfig, LoopbackTransport,
    ReplicaLogStore, ShardNode, TcpShardServer, TcpTransport, Transport,
};
use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{CompileRequest, CompileService, ExecChoice, Response, ServeConfig};
use ccm2_workload::{serve_load, shard_partition_schedule, ServeEvent, ServeLoadParams};

fn request(e: &ServeEvent) -> CompileRequest {
    CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(2),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        store_budget: 64 * 1024,
        ..ServeConfig::default()
    }
}

/// What a client can observe of one served event.
type Observed = (bool, Option<Vec<u8>>, Vec<String>);

/// Serves every event on one standalone service (the reference).
fn serve_standalone(events: &[ServeEvent]) -> Vec<Observed> {
    let svc = CompileService::start(config());
    let mut out: Vec<Option<Observed>> = vec![None; events.len()];
    let mut pending: Vec<usize> = (0..events.len()).collect();
    let mut waves = 0;
    while !pending.is_empty() {
        waves += 1;
        assert!(waves <= 100, "standalone retry protocol failed to drain");
        let batch: Vec<CompileRequest> = pending.iter().map(|&i| request(&events[i])).collect();
        let indexes = std::mem::take(&mut pending);
        for (i, resp) in indexes.into_iter().zip(svc.serve_batch(batch)) {
            match resp {
                Response::Done(o) => {
                    out[i] = Some((o.ok, o.object.clone(), o.diagnostics.clone()));
                }
                Response::Retry => pending.push(i),
            }
        }
    }
    out.into_iter().map(|o| o.expect("served")).collect()
}

/// Three shards on either transport. The TCP servers ride along so the
/// sockets outlive the router.
struct ChaosFleet {
    nodes: Vec<Arc<ShardNode>>,
    router: FabricRouter,
    loopback: Option<Arc<LoopbackTransport>>,
    tcp: Option<(Arc<TcpTransport>, Vec<TcpShardServer>)>,
}

impl ChaosFleet {
    fn start(tcp: bool) -> ChaosFleet {
        let nodes: Vec<Arc<ShardNode>> = (0..3u32)
            .map(|id| Arc::new(ShardNode::start(id, config())))
            .collect();
        let heartbeat = HeartbeatConfig {
            suspect_misses: 1,
            evict_misses: 2,
        };
        if tcp {
            let transport = Arc::new(TcpTransport::new());
            let mut servers = Vec::new();
            for node in &nodes {
                let server = TcpShardServer::serve(Arc::clone(node) as Arc<dyn FrameHandler>)
                    .expect("tcp shard server");
                transport.register(node.id(), server.addr());
                servers.push(server);
            }
            let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
                .with_heartbeat(heartbeat);
            ChaosFleet {
                nodes,
                router,
                loopback: None,
                tcp: Some((transport, servers)),
            }
        } else {
            let transport = Arc::new(LoopbackTransport::new());
            for node in &nodes {
                transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
            }
            let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
                .with_heartbeat(heartbeat);
            ChaosFleet {
                nodes,
                router,
                loopback: Some(transport),
                tcp: None,
            }
        }
    }

    fn cut(&self, shard: u32, on: bool) {
        if let Some(loopback) = &self.loopback {
            loopback.set_link_faults(on.then(|| {
                Arc::new(ccm2_faults::FaultPlan::single(
                    format!("link:{shard}#c*"),
                    ccm2_faults::FaultKind::Panic,
                ))
            }));
        }
        if let Some((transport, _)) = &self.tcp {
            transport.set_partitioned(shard, on);
        }
    }
}

/// Serves the whole load through a partition/evict/heal/rejoin cycle on
/// the chosen transport, asserting the detector's deterministic clock.
fn serve_chaos(events: &[ServeEvent], params: &ServeLoadParams, tcp: bool) -> Vec<Observed> {
    let fleet = ChaosFleet::start(tcp);
    // The partition window is drawn over the first two-thirds so a
    // healthy tail always follows the rejoin.
    let sched = ServeLoadParams {
        events: params.events * 2 / 3,
        ..*params
    };
    let window = shard_partition_schedule(&sched, 3, 1)[0];
    let mut out: Vec<Option<Observed>> = vec![None; events.len()];
    let phases = [
        (0, window.from),
        (window.from, window.until),
        (window.until, events.len()),
    ];
    for (phase_idx, &(lo, hi)) in phases.iter().enumerate() {
        if phase_idx == 1 {
            fleet.cut(window.shard, true);
            let mut ticks = 0;
            while fleet.router.health(window.shard) != HealthState::Evicted {
                ticks += 1;
                assert!(ticks <= 4, "failure detector hung");
                fleet.router.heartbeat_tick();
            }
            assert_eq!(ticks, 2, "suspect on the first miss, evict on the second");
            assert!(!fleet.router.live_shards().contains(&window.shard));
        }
        if phase_idx == 2 {
            fleet.cut(window.shard, false);
            fleet.router.admit_shard(window.shard);
            assert_eq!(fleet.router.health(window.shard), HealthState::Alive);
            assert_eq!(fleet.router.live_shards(), vec![0, 1, 2]);
        }
        let mut pending: Vec<usize> = (lo..hi).collect();
        let mut waves = 0;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 100, "chaos retry protocol failed to drain");
            let batch: Vec<CompileRequest> = pending.iter().map(|&i| request(&events[i])).collect();
            let indexes = std::mem::take(&mut pending);
            for (i, resp) in indexes.into_iter().zip(fleet.router.serve_batch(&batch)) {
                match resp {
                    FabricResponse::Done(o) => {
                        out[i] = Some((o.ok, o.object.clone(), o.diagnostics.clone()));
                    }
                    FabricResponse::Retry { .. } => pending.push(i),
                }
            }
        }
    }
    assert!(
        fleet.router.stats().heartbeat_evictions == 1,
        "exactly one heartbeat eviction"
    );
    let pings_answered: u64 = fleet.nodes.iter().map(|n| n.stats().pings).sum();
    assert!(
        pings_answered > 0,
        "the healthy shards never answered a probe"
    );
    out.into_iter().map(|o| o.expect("served")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    // A seeded partition -> eviction -> heal -> rejoin cycle on the
    // loopback transport is invisible: byte-identical to standalone,
    // zero admitted requests lost.
    #[test]
    fn partition_eviction_and_rejoin_are_invisible_to_clients(
        seed in 0u64..1_000_000,
        events in 12usize..20,
    ) {
        let params = ServeLoadParams {
            seed,
            projects: 2,
            clients: 3,
            events,
            edit_every: 5,
            interface_every: 2,
        };
        let load = serve_load(&params);
        let reference = serve_standalone(&load);
        let fleet = serve_chaos(&load, &params, false);
        for (i, (r, f)) in reference.iter().zip(&fleet).enumerate() {
            prop_assert!(r.0 && f.0, "event {i} failed somewhere");
            prop_assert_eq!(&r.1, &f.1, "object bytes diverge at event {}", i);
            prop_assert_eq!(&r.2, &f.2, "diagnostics diverge at event {}", i);
        }
    }
}

// The same cycle over real TCP sockets: the partition switch models a
// dead link (connect refused / black-holed writes) instead of a fault
// plan, and the contract is identical.
#[test]
fn tcp_partition_cycle_matches_standalone() {
    let params = ServeLoadParams {
        seed: 0xBEEF,
        projects: 2,
        clients: 3,
        events: 15,
        edit_every: 5,
        interface_every: 2,
    };
    let load = serve_load(&params);
    let reference = serve_standalone(&load);
    let fleet = serve_chaos(&load, &params, true);
    for (i, (r, f)) in reference.iter().zip(&fleet).enumerate() {
        assert!(r.0 && f.0, "event {i} failed somewhere");
        assert_eq!(&r.1, &f.1, "object bytes diverge at event {i}");
        assert_eq!(&r.2, &f.2, "diagnostics diverge at event {i}");
    }
}

// A whole-fleet crash (router, transport, and every node dropped) must
// lose zero parked replica-log ops: the rebuilt nodes load their
// CCM2RLOG images and the next failover absorbs from them.
#[test]
fn fleet_restart_from_durable_logs_loses_no_parked_ops() {
    let dir = std::env::temp_dir().join(format!("ccm2-chaosnet-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mk_node = |id: u32| -> Arc<ShardNode> {
        let rlogs = ReplicaLogStore::new(dir.join(format!("rlog-{id}"))).expect("rlog dir");
        Arc::new(
            ShardNode::start(id, config())
                .with_durable_log(rlogs)
                .expect("durable replica logs"),
        )
    };
    let params = ServeLoadParams {
        seed: 0xD0_17,
        projects: 2,
        clients: 3,
        events: 18,
        edit_every: 5,
        interface_every: 2,
    };
    let load = serve_load(&params);

    let nodes: Vec<Arc<ShardNode>> = (0..3u32).map(mk_node).collect();
    let transport = Arc::new(LoopbackTransport::new());
    for node in &nodes {
        transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
    }
    let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>);
    let mut pending: Vec<CompileRequest> = load.iter().map(request).collect();
    let mut waves = 0;
    while !pending.is_empty() {
        waves += 1;
        assert!(waves <= 100, "restart drill failed to drain");
        let batch = std::mem::take(&mut pending);
        let resubmit = batch.clone();
        for (req, resp) in resubmit.into_iter().zip(router.serve_batch(&batch)) {
            match resp {
                FabricResponse::Done(o) => assert!(o.ok, "{:?}", o.diagnostics),
                FabricResponse::Retry { .. } => pending.push(req),
            }
        }
    }
    let parked = |nodes: &[Arc<ShardNode>]| -> Vec<Vec<usize>> {
        nodes
            .iter()
            .map(|n| (0..3u32).map(|o| n.replica_len(o)).collect())
            .collect()
    };
    let parked_before = parked(&nodes);
    let total: usize = parked_before.iter().flatten().sum();
    assert!(total > 0, "serving parked no replica ops — vacuous drill");
    drop(router);
    drop(transport);
    drop(nodes);

    // Crash over: rebuild the same shard ids from the same directories.
    let nodes: Vec<Arc<ShardNode>> = (0..3u32).map(mk_node).collect();
    assert_eq!(parked(&nodes), parked_before, "restart changed parked ops");
    let transport = Arc::new(LoopbackTransport::new());
    for node in &nodes {
        transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
    }
    let router = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>);
    let origin = (0..3u32)
        .max_by_key(|&o| {
            nodes
                .iter()
                .filter(|n| n.id() != o)
                .map(|n| n.replica_len(o))
                .sum::<usize>()
        })
        .expect("three shards");
    router.kill_shard(origin);
    let absorbed: u64 = nodes
        .iter()
        .filter(|n| n.id() != origin)
        .map(|n| n.stats().absorbed_ops)
        .sum();
    assert!(absorbed > 0, "failover absorbed nothing from restored logs");
    let _ = std::fs::remove_dir_all(&dir);
}
