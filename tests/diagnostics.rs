//! Error reporting: erroneous programs must produce the *same*
//! diagnostics (file, span, severity, message) from the concurrent
//! compiler as from the sequential one, regardless of task interleaving —
//! and compilation must degrade gracefully, never hang or panic.

use std::sync::Arc;

use ccm2::{compile_concurrent, Options};
use ccm2_support::defs::DefLibrary;
use ccm2_support::diag::Diagnostic;
use ccm2_support::source::SourceMap;
use ccm2_support::{Interner, NullMeter};

fn normalize(diags: &[Diagnostic], sources: &SourceMap) -> Vec<String> {
    let mut v: Vec<String> = diags
        .iter()
        .map(|d| {
            let name = sources
                .get(d.file)
                .map(|f| f.name().to_string())
                .unwrap_or_default();
            format!(
                "{name}:{}..{} {} {}",
                d.span.lo, d.span.hi, d.severity, d.message
            )
        })
        .collect();
    v.sort();
    v
}

fn check(src: &str, defs: &DefLibrary, expect_contains: &[&str]) {
    let interner = Arc::new(Interner::new());
    let seq = ccm2_seq::compile_with(
        src,
        defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        ccm2_sema::declare::HeadingMode::CopyToChild,
    );
    let conc = compile_concurrent(
        src,
        Arc::new(defs.clone()),
        Arc::clone(&interner),
        Options::threads(2),
    );
    let a = normalize(&seq.diagnostics, &seq.sources);
    let b = normalize(&conc.diagnostics, &conc.sources);
    assert_eq!(a, b, "diagnostics differ for:\n{src}");
    for needle in expect_contains {
        assert!(
            a.iter().any(|d| d.contains(needle)),
            "expected a diagnostic containing {needle:?}, got {a:#?}"
        );
    }
}

#[test]
fn undeclared_identifier() {
    check(
        "MODULE M; BEGIN mystery := 1 END M.",
        &DefLibrary::new(),
        &["undeclared identifier `mystery`"],
    );
}

#[test]
fn assignment_type_mismatch() {
    check(
        "MODULE M; VAR b : BOOLEAN; BEGIN b := 42 END M.",
        &DefLibrary::new(),
        &["assignment type mismatch"],
    );
}

#[test]
fn redeclaration_in_scope() {
    check(
        "MODULE M; CONST x = 1; VAR x : INTEGER; BEGIN END M.",
        &DefLibrary::new(),
        &["already declared"],
    );
}

#[test]
fn missing_definition_module() {
    check(
        "MODULE M; IMPORT Ghost; BEGIN END M.",
        &DefLibrary::new(),
        &["cannot find definition module `Ghost`"],
    );
}

#[test]
fn unexported_qualified_name() {
    let mut lib = DefLibrary::new();
    lib.insert("Lib", "DEFINITION MODULE Lib; CONST k = 1; END Lib.");
    check(
        "MODULE M; IMPORT Lib; VAR x : INTEGER; BEGIN x := Lib.absent END M.",
        &lib,
        &["not exported"],
    );
}

#[test]
fn wrong_argument_count() {
    check(
        "MODULE M; \
         PROCEDURE P(a, b : INTEGER); BEGIN END P; \
         BEGIN P(1) END M.",
        &DefLibrary::new(),
        &["expected 2 arguments, found 1"],
    );
}

#[test]
fn var_argument_must_be_designator() {
    check(
        "MODULE M; \
         PROCEDURE P(VAR x : INTEGER); BEGIN END P; \
         BEGIN P(3) END M.",
        &DefLibrary::new(),
        &["not a designator"],
    );
}

#[test]
fn errors_in_procedure_bodies_report_identically() {
    // Errors inside procedure streams flow through concurrently compiled
    // tasks; spans and messages must still match the sequential pass.
    check(
        "MODULE M; \
         PROCEDURE A; VAR t : INTEGER; BEGIN t := missingOne END A; \
         PROCEDURE B; VAR s : BOOLEAN; BEGIN s := 7 END B; \
         BEGIN END M.",
        &DefLibrary::new(),
        &[
            "undeclared identifier `missingOne`",
            "assignment type mismatch",
        ],
    );
}

#[test]
fn error_in_imported_interface() {
    let mut lib = DefLibrary::new();
    lib.insert(
        "Broken",
        "DEFINITION MODULE Broken; CONST bad = nonsuch + 1; END Broken.",
    );
    check(
        "MODULE M; IMPORT Broken; BEGIN END M.",
        &lib,
        &["undeclared identifier `nonsuch`"],
    );
}

#[test]
fn syntax_error_recovery_matches() {
    check(
        "MODULE M; VAR a : INTEGER; BEGIN a := 1 a := 2 END M.",
        &DefLibrary::new(),
        &["expected `;`"],
    );
}

#[test]
fn set_element_out_of_range() {
    check(
        "MODULE M; CONST S = {70}; BEGIN END M.",
        &DefLibrary::new(),
        &["set element out of range"],
    );
}

#[test]
fn division_by_zero_in_constant() {
    check(
        "MODULE M; CONST K = 1 DIV 0; BEGIN END M.",
        &DefLibrary::new(),
        &["division by zero in constant expression"],
    );
}

#[test]
fn undeclared_pointer_target() {
    check(
        "MODULE M; TYPE P = POINTER TO Ghost; BEGIN END M.",
        &DefLibrary::new(),
        &["undeclared pointer target type `Ghost`"],
    );
}
