//! End-to-end tests: compile Modula-2+ programs with the *concurrent*
//! compiler and execute the merged images on the VM, checking output.
//! (The object-equivalence tests already tie the concurrent compiler to
//! the sequential one; these tie both to actual program behavior.)

use std::sync::Arc;

use ccm2::{compile_concurrent, Options};
use ccm2_support::defs::DefLibrary;
use ccm2_support::Interner;
use ccm2_vm::Vm;

fn run(source: &str) -> String {
    let out = compile_concurrent(
        source,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "diagnostics: {:#?}", out.diagnostics);
    let image = out.image.expect("image");
    Vm::new(out.interner).run(&image).expect("program runs")
}

#[test]
fn fibonacci_recursion() {
    let out = run("MODULE F; \
        PROCEDURE Fib(n : INTEGER) : INTEGER; \
        BEGIN IF n <= 1 THEN RETURN n ELSE RETURN Fib(n-1) + Fib(n-2) END END Fib; \
        VAR i : INTEGER; \
        BEGIN FOR i := 0 TO 10 DO WriteInt(Fib(i), 3) END END F.");
    assert_eq!(out, "  0  1  1  2  3  5  8 13 21 34 55");
}

#[test]
fn mutual_state_through_var_params() {
    let out = run("MODULE V; \
        VAR a, b : INTEGER; \
        PROCEDURE Swap(VAR x, y : INTEGER); VAR t : INTEGER; \
        BEGIN t := x; x := y; y := t END Swap; \
        BEGIN a := 3; b := 9; Swap(a, b); WriteInt(a, 0); WriteInt(b, 2) END V.");
    assert_eq!(out, "9 3");
}

#[test]
fn arrays_and_for_loops() {
    let out = run("MODULE A; \
        VAR v : ARRAY [1..5] OF INTEGER; i, s : INTEGER; \
        BEGIN \
          FOR i := 1 TO 5 DO v[i] := i * i END; \
          s := 0; \
          FOR i := 5 TO 1 BY -1 DO s := s + v[i] END; \
          WriteInt(s, 0) \
        END A.");
    assert_eq!(out, "55");
}

#[test]
fn records_with_statement() {
    let out = run("MODULE R; \
        TYPE P = RECORD x, y : INTEGER END; \
        VAR p : P; \
        BEGIN \
          WITH p DO x := 11; y := 31 END; \
          WriteInt(p.x + p.y, 0) \
        END R.");
    assert_eq!(out, "42");
}

#[test]
fn linked_list_with_heap() {
    let out = run("MODULE L; \
        TYPE Ptr = POINTER TO N; N = RECORD v : INTEGER; nx : Ptr END; \
        VAR head, cur : Ptr; i, total : INTEGER; \
        BEGIN \
          head := NIL; \
          FOR i := 1 TO 4 DO \
            NEW(cur); cur^.v := i * 10; cur^.nx := head; head := cur \
          END; \
          total := 0; cur := head; \
          WHILE cur # NIL DO total := total + cur^.v; cur := cur^.nx END; \
          WriteInt(total, 0) \
        END L.");
    assert_eq!(out, "100");
}

#[test]
fn case_and_enumerations() {
    let out = run("MODULE C; \
        TYPE Day = (mon, tue, wed, thu, fri, sat, sun); \
        VAR d : Day; weekend : INTEGER; \
        BEGIN \
          weekend := 0; \
          FOR d := mon TO sun DO \
            CASE d OF sat, sun : INC(weekend) ELSE END \
          END; \
          WriteInt(weekend, 0) \
        END C.");
    assert_eq!(out, "2");
}

#[test]
fn sets_and_membership() {
    let out = run("MODULE S; \
        VAR evens, odds, all : BITSET; k, n : INTEGER; \
        BEGIN \
          evens := {0, 2, 4, 6, 8}; odds := {1, 3, 5, 7, 9}; \
          all := evens + odds; \
          n := 0; \
          FOR k := 0 TO 9 DO IF k IN all THEN INC(n) END END; \
          IF evens * odds = {} THEN INC(n, 100) END; \
          WriteInt(n, 0) \
        END S.");
    assert_eq!(out, "110");
}

#[test]
fn reals_and_math_builtins() {
    let out = run("MODULE M; \
        VAR r : REAL; \
        BEGIN \
          r := sqrt(2.0) * sqrt(2.0); \
          WriteReal(r, 0); WriteLn; \
          WriteInt(TRUNC(3.99), 0) \
        END M.");
    let mut lines = out.lines();
    let sqrt_line: f64 = lines.next().expect("line").trim().parse().expect("real");
    assert!((sqrt_line - 2.0).abs() < 1e-9);
    assert_eq!(lines.next().expect("line").trim(), "3");
}

#[test]
fn procedure_values() {
    let out = run("MODULE P; \
        TYPE Op = PROCEDURE (INTEGER, INTEGER) : INTEGER; \
        VAR f : Op; \
        PROCEDURE Add(a, b : INTEGER) : INTEGER; BEGIN RETURN a + b END Add; \
        PROCEDURE Mul(a, b : INTEGER) : INTEGER; BEGIN RETURN a * b END Mul; \
        PROCEDURE Apply(op : Op; x, y : INTEGER) : INTEGER; \
        BEGIN RETURN op(x, y) END Apply; \
        BEGIN \
          f := Add; WriteInt(Apply(f, 4, 5), 0); \
          f := Mul; WriteInt(Apply(f, 4, 5), 3) \
        END P.");
    assert_eq!(out, "9 20");
}

#[test]
fn nested_procedures_and_uplevel_access() {
    let out = run("MODULE N; \
        VAR log : INTEGER; \
        PROCEDURE Outer(base : INTEGER) : INTEGER; \
          VAR acc : INTEGER; \
          PROCEDURE Step(k : INTEGER); \
          BEGIN acc := acc + base * k; log := log + 1 END Step; \
        BEGIN \
          acc := 0; Step(1); Step(2); Step(3); RETURN acc \
        END Outer; \
        BEGIN \
          log := 0; \
          WriteInt(Outer(10), 0); WriteInt(log, 3) \
        END N.");
    assert_eq!(out, "60  3");
}

#[test]
fn modula2plus_lock_and_try() {
    // The Modula-2+ extensions parse and lower structurally.
    let out = run("MODULE X; \
        VAR mu : INTEGER; n : INTEGER; \
        BEGIN \
          n := 1; \
          LOCK mu DO n := n + 1 END; \
          TRY n := n * 10 EXCEPT n := 0 FINALLY INC(n) END; \
          WriteInt(n, 0) \
        END X.");
    assert_eq!(out, "21");
}

#[test]
fn char_and_string_handling() {
    let out = run("MODULE T; \
        VAR ch : CHAR; \
        BEGIN \
          ch := 'a'; \
          WriteChar(CAP(ch)); \
          WriteChar(CHR(ORD(ch) + 1)); \
          WriteString(' ok') \
        END T.");
    assert_eq!(out, "Ab ok");
}

#[test]
fn runtime_error_nil_deref_surfaces() {
    let source = "MODULE E; \
        TYPE P = POINTER TO INTEGER; VAR p : P; \
        BEGIN p := NIL; WriteInt(p^, 0) END E.";
    let out = compile_concurrent(
        source,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "{:#?}", out.diagnostics);
    let err = Vm::new(out.interner)
        .run(&out.image.expect("image"))
        .expect_err("NIL deref");
    assert!(err.message.contains("NIL"));
}

#[test]
fn open_array_parameters_and_high() {
    let out = run("MODULE O; \
        VAR data : ARRAY [1..6] OF INTEGER; i : INTEGER; \
        PROCEDURE Sum(a : ARRAY OF INTEGER) : INTEGER; \
        VAR k, s : INTEGER; \
        BEGIN \
          s := 0; \
          FOR k := 0 TO HIGH(a) DO s := s + a[k] END; \
          RETURN s \
        END Sum; \
        BEGIN \
          FOR i := 1 TO 6 DO data[i] := i END; \
          WriteInt(Sum(data), 0) \
        END O.");
    assert_eq!(out, "21");
}

#[test]
fn value_parameters_copy_arrays() {
    let out = run("MODULE C; \
        VAR data : ARRAY [0..2] OF INTEGER; \
        PROCEDURE Clobber(a : ARRAY OF INTEGER) : INTEGER; \
        BEGIN a[0] := 999; RETURN a[0] END Clobber; \
        BEGIN \
          data[0] := 5; \
          WriteInt(Clobber(data), 0); \
          WriteInt(data[0], 4) \
        END C.");
    assert_eq!(out, "999   5", "callee mutation must not leak to caller");
}

#[test]
fn value_parameters_copy_records() {
    let out = run("MODULE R; \
        TYPE P = RECORD x : INTEGER END; \
        VAR v : P; \
        PROCEDURE Poke(r : P); BEGIN r.x := 42 END Poke; \
        BEGIN v.x := 1; Poke(v); WriteInt(v.x, 0) END R.");
    assert_eq!(out, "1");
}

#[test]
fn deep_static_links() {
    let out = run("MODULE D; \
        PROCEDURE L1(a : INTEGER) : INTEGER; \
          PROCEDURE L2(b : INTEGER) : INTEGER; \
            PROCEDURE L3(c : INTEGER) : INTEGER; \
            BEGIN RETURN a * 100 + b * 10 + c END L3; \
          BEGIN RETURN L3(b + 1) END L2; \
        BEGIN RETURN L2(a + 1) END L1; \
        BEGIN WriteInt(L1(1), 0) END D.");
    assert_eq!(out, "123");
}

#[test]
fn recursion_with_uplevel_mutation() {
    // Each recursive activation of Outer has its own `count`; the nested
    // procedure must bind to the *current* activation's frame.
    let out = run("MODULE A; \
        PROCEDURE Outer(depth : INTEGER) : INTEGER; \
        VAR count : INTEGER; \
          PROCEDURE Note; BEGIN INC(count) END Note; \
        BEGIN \
          count := 0; \
          Note; Note; \
          IF depth > 0 THEN count := count + Outer(depth - 1) END; \
          RETURN count \
        END Outer; \
        BEGIN WriteInt(Outer(3), 0) END A.");
    assert_eq!(out, "8", "2 per activation x 4 activations");
}

#[test]
fn subranges_enforce_array_bounds_at_runtime() {
    let source = "MODULE B; \
        VAR a : ARRAY [3..5] OF INTEGER; i : INTEGER; \
        BEGIN i := 9; a[i] := 1 END B.";
    let out = compile_concurrent(
        source,
        Arc::new(DefLibrary::new()),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok());
    let err = Vm::new(out.interner)
        .run(&out.image.expect("image"))
        .expect_err("bounds");
    assert!(err.message.contains("out of bounds"), "{}", err.message);
}

#[test]
fn qualified_constants_and_procs_via_def_modules() {
    let mut lib = DefLibrary::new();
    lib.insert(
        "Consts",
        "DEFINITION MODULE Consts; CONST Answer = 42; Mask = {1, 3}; END Consts.",
    );
    let source = "MODULE Q; \
        IMPORT Consts; FROM Consts IMPORT Mask; \
        VAR n : INTEGER; \
        BEGIN \
          n := Consts.Answer; \
          IF 3 IN Mask THEN INC(n, 100) END; \
          WriteInt(n, 0) \
        END Q.";
    let out = compile_concurrent(
        source,
        Arc::new(lib),
        Arc::new(Interner::new()),
        Options::threads(2),
    );
    assert!(out.is_ok(), "{:#?}", out.diagnostics);
    let text = Vm::new(out.interner)
        .run(&out.image.expect("image"))
        .expect("runs");
    assert_eq!(text, "142");
}
