//! The central correctness property of the reproduction: for every input,
//! the concurrent compiler — under any executor, worker count, DKY
//! strategy, and §2.4 heading mode — produces exactly the object image and
//! diagnostics of the conventional sequential compiler.

use std::sync::Arc;

use ccm2::{compile_concurrent, Executor, Options};
use ccm2_sched::SimConfig;
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::DefLibrary;
use ccm2_support::diag::Diagnostic;
use ccm2_support::source::SourceMap;
use ccm2_support::{Interner, NullMeter};
use ccm2_workload::{generate, GenParams};

/// Normalizes diagnostics for cross-compiler comparison: the two
/// compilers register files in different orders, so FileIds differ while
/// names agree.
fn normalize(diags: &[Diagnostic], sources: &SourceMap) -> Vec<(String, u32, u32, String)> {
    let mut v: Vec<(String, u32, u32, String)> = diags
        .iter()
        .map(|d| {
            (
                sources
                    .get(d.file)
                    .map(|f| f.name().to_string())
                    .unwrap_or_else(|| format!("file#{}", d.file.0)),
                d.span.lo,
                d.span.hi,
                format!("{}: {}", d.severity, d.message),
            )
        })
        .collect();
    v.sort();
    v
}

fn assert_equivalent(source: &str, defs: &DefLibrary, options: Options, what: &str) {
    let interner = Arc::new(Interner::new());
    let seq = ccm2_seq::compile_with(
        source,
        defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        options.heading_mode,
    );
    let conc = compile_concurrent(
        source,
        Arc::new(defs.clone()),
        Arc::clone(&interner),
        options,
    );
    assert_eq!(
        seq.image.is_some(),
        conc.image.is_some(),
        "{what}: image presence differs"
    );
    if let (Some(a), Some(b)) = (&seq.image, &conc.image) {
        assert_eq!(a, b, "{what}: object images differ");
    }
    assert_eq!(
        normalize(&seq.diagnostics, &seq.sources),
        normalize(&conc.diagnostics, &conc.sources),
        "{what}: diagnostics differ"
    );
}

fn modules_under_test() -> Vec<(String, DefLibrary)> {
    let mut out = Vec::new();
    for seed in 0..6u64 {
        let m = generate(&GenParams::small(&format!("Eq{seed}"), seed));
        out.push((m.source, m.defs));
    }
    // A bigger one with nesting and deep imports.
    let big = generate(&GenParams {
        name: "EqBig".into(),
        seed: 99,
        procedures: 30,
        interfaces: 12,
        import_depth: 6,
        stmts_per_proc: 18,
        nested_ratio: 0.25,
        lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
    });
    out.push((big.source, big.defs));
    out
}

#[test]
fn concurrent_equals_sequential_across_worker_counts() {
    for (src, defs) in modules_under_test() {
        for workers in [1usize, 2, 4] {
            assert_equivalent(
                &src,
                &defs,
                Options::threads(workers),
                &format!("w{workers}"),
            );
        }
    }
}

#[test]
fn concurrent_equals_sequential_on_simulator() {
    for (src, defs) in modules_under_test() {
        for procs in [1u32, 3, 8] {
            assert_equivalent(
                &src,
                &defs,
                Options {
                    executor: Executor::Sim(SimConfig::firefly(procs)),
                    ..Options::default()
                },
                &format!("sim{procs}"),
            );
        }
    }
}

#[test]
fn all_dky_strategies_produce_identical_output() {
    for (src, defs) in modules_under_test().into_iter().take(4) {
        for strategy in DkyStrategy::ALL {
            assert_equivalent(
                &src,
                &defs,
                Options {
                    strategy,
                    executor: Executor::Sim(SimConfig::firefly(4)),
                    ..Options::default()
                },
                strategy.name(),
            );
        }
    }
}

#[test]
fn both_heading_modes_produce_identical_output() {
    for (src, defs) in modules_under_test().into_iter().take(4) {
        for mode in [HeadingMode::CopyToChild, HeadingMode::Reprocess] {
            assert_equivalent(
                &src,
                &defs,
                Options {
                    heading_mode: mode,
                    executor: Executor::Sim(SimConfig::firefly(4)),
                    ..Options::default()
                },
                &format!("{mode:?}"),
            );
        }
    }
    // The two modes must also agree with *each other* (alternative 3's
    // whole point is producing identical entries in both scopes).
    let (src, defs) = &modules_under_test()[1];
    let interner = Arc::new(Interner::new());
    let a = ccm2_seq::compile_with(
        src,
        defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    );
    let b = ccm2_seq::compile_with(
        src,
        defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::Reprocess,
    );
    assert_eq!(a.image, b.image);
}

#[test]
fn lint_findings_identical_between_compilers_under_all_strategies() {
    for (i, (src, defs)) in modules_under_test().into_iter().enumerate() {
        let interner = Arc::new(Interner::new());
        let seq = ccm2_seq::compile_full(
            &src,
            &defs,
            Arc::clone(&interner),
            Arc::new(NullMeter),
            HeadingMode::CopyToChild,
            true,
        );
        let reference = normalize(&seq.diagnostics, &seq.sources);
        for strategy in DkyStrategy::ALL {
            let conc = compile_concurrent(
                &src,
                Arc::new(defs.clone()),
                Arc::clone(&interner),
                Options {
                    strategy,
                    analyze: true,
                    executor: Executor::Sim(SimConfig::firefly(4)),
                    ..Options::default()
                },
            );
            assert_eq!(
                reference,
                normalize(&conc.diagnostics, &conc.sources),
                "module {i}, sim, {}",
                strategy.name()
            );
        }
        let threaded = compile_concurrent(
            &src,
            Arc::new(defs.clone()),
            Arc::clone(&interner),
            Options {
                analyze: true,
                ..Options::threads(4)
            },
        );
        assert_eq!(
            reference,
            normalize(&threaded.diagnostics, &threaded.sources),
            "module {i}, threaded"
        );
        // The no-early-split ablation routes every unit through
        // process_local_procs instead of procedure streams: the unit
        // inventory (and so the findings) must not change.
        let nosplit = compile_concurrent(
            &src,
            Arc::new(defs.clone()),
            Arc::clone(&interner),
            Options {
                analyze: true,
                early_split: false,
                executor: Executor::Sim(SimConfig::firefly(4)),
                ..Options::default()
            },
        );
        assert_eq!(
            reference,
            normalize(&nosplit.diagnostics, &nosplit.sources),
            "module {i}, no-early-split"
        );
    }
}

#[test]
fn sim_runs_are_bit_for_bit_deterministic() {
    let m = generate(&GenParams::small("Det", 3));
    let run = || {
        compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                executor: Executor::Sim(SimConfig::firefly(5)),
                ..Options::default()
            },
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.report.virtual_time, b.report.virtual_time);
    assert_eq!(a.report.tasks_run, b.report.tasks_run);
    assert_eq!(a.report.trace.segments.len(), b.report.trace.segments.len());
    assert_eq!(a.stats.simple_total(), b.stats.simple_total());
    assert_eq!(a.stats.dky_blockages(), b.stats.dky_blockages());
}

#[test]
fn repeated_threaded_runs_are_stable() {
    // Thread scheduling varies; the *output* must not.
    let m = generate(&GenParams::small("Stress", 17));
    let interner = Arc::new(Interner::new());
    let reference = ccm2_seq::compile_with(
        &m.source,
        &m.defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    );
    let ref_img = reference.image.expect("seq image");
    for round in 0..10 {
        let out = compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::clone(&interner),
            Options::threads(4),
        );
        assert!(out.is_ok(), "round {round}: {:?}", out.diagnostics);
        assert_eq!(out.image.expect("image"), ref_img, "round {round} diverged");
    }
}

#[test]
fn no_early_split_ablation_is_still_equivalent() {
    // The §2.1 ablation (procedures discovered at parse time, not by the
    // splitter) changes scheduling drastically but must not change output.
    for (src, defs) in modules_under_test().into_iter().take(3) {
        assert_equivalent(
            &src,
            &defs,
            Options {
                early_split: false,
                executor: Executor::Sim(SimConfig::firefly(4)),
                ..Options::default()
            },
            "no-early-split sim",
        );
        assert_equivalent(
            &src,
            &defs,
            Options {
                early_split: false,
                ..Options::threads(2)
            },
            "no-early-split threads",
        );
    }
}
