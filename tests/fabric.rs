//! Fleet-equivalence properties: an N-shard loopback fabric is
//! observationally identical to one standalone [`CompileService`] —
//! byte-identical objects (in the interner-independent
//! `ccm2_incr::encode_image` encoding) and identical rendered
//! diagnostics for every event of a seeded serve load. The property is
//! also checked **across a mid-stream shard kill**: the seeded
//! failover (`ccm2_workload::shard_kill_schedule`) must change
//! *nothing* a client can observe — zero admitted requests lost, same
//! bytes, same diagnostics.

use std::sync::Arc;

use proptest::prelude::*;

use ccm2_fabric::{
    Fabric, FabricRouter, FrameHandler, LeaseConfig, LoopbackTransport, MembershipStore,
    RouterRole, ShardNode, Transport,
};
use ccm2_sema::symtab::DkyStrategy;
use ccm2_serve::{CompileRequest, CompileService, ExecChoice, Response, ServeConfig};
use ccm2_workload::{serve_load, shard_kill_schedule, ServeEvent, ServeLoadParams};

fn request(e: &ServeEvent) -> CompileRequest {
    CompileRequest {
        client: e.client,
        module: e.module.name.clone(),
        source: e.module.source.clone(),
        defs: Arc::new(e.module.defs.clone()),
        strategy: DkyStrategy::Skeptical,
        exec: ExecChoice::Sim(2),
        analyze: false,
        faults: None,
        task_deadline: None,
        max_stream_retries: 0,
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 64,
        store_budget: 64 * 1024,
        ..ServeConfig::default()
    }
}

/// What a client can observe of one served event.
type Observed = (bool, Option<Vec<u8>>, Vec<String>);

/// Serves every event on one standalone service (the reference),
/// driving the documented back-off protocol until all are done.
fn serve_standalone(events: &[ServeEvent]) -> Vec<Observed> {
    let svc = CompileService::start(config());
    let mut out: Vec<Option<Observed>> = vec![None; events.len()];
    let mut pending: Vec<usize> = (0..events.len()).collect();
    let mut waves = 0;
    while !pending.is_empty() {
        waves += 1;
        assert!(waves <= 100, "standalone retry protocol failed to drain");
        let batch: Vec<CompileRequest> = pending.iter().map(|&i| request(&events[i])).collect();
        let indexes = std::mem::take(&mut pending);
        for (i, resp) in indexes.into_iter().zip(svc.serve_batch(batch)) {
            match resp {
                Response::Done(o) => {
                    out[i] = Some((o.ok, o.object.clone(), o.diagnostics.clone()));
                }
                Response::Retry => pending.push(i),
            }
        }
    }
    out.into_iter().map(|o| o.expect("served")).collect()
}

/// Serves every event on an N-shard loopback fabric, optionally
/// killing one shard after `at` events have been served.
fn serve_fabric(events: &[ServeEvent], shards: usize, kill: Option<(usize, u32)>) -> Vec<Observed> {
    let fabric = Fabric::start(shards, config());
    let mut out: Vec<Option<Observed>> = vec![None; events.len()];
    let phases: Vec<(usize, usize)> = match kill {
        Some((at, _)) if at < events.len() => vec![(0, at), (at, events.len())],
        _ => vec![(0, events.len())],
    };
    for (phase_idx, &(lo, hi)) in phases.iter().enumerate() {
        if phase_idx == 1 {
            let (_, victim) = kill.expect("second phase implies a kill");
            fabric.router().kill_shard(victim);
        }
        let mut pending: Vec<usize> = (lo..hi).collect();
        let mut waves = 0;
        while !pending.is_empty() {
            waves += 1;
            assert!(waves <= 100, "fabric retry protocol failed to drain");
            let batch: Vec<CompileRequest> = pending.iter().map(|&i| request(&events[i])).collect();
            let indexes = std::mem::take(&mut pending);
            for (i, resp) in indexes.into_iter().zip(fabric.router().serve_batch(&batch)) {
                match resp {
                    ccm2_fabric::FabricResponse::Done(o) => {
                        out[i] = Some((o.ok, o.object.clone(), o.diagnostics.clone()));
                    }
                    ccm2_fabric::FabricResponse::Retry { .. } => pending.push(i),
                }
            }
        }
    }
    if let Some((_, victim)) = kill {
        let live = fabric.router().live_shards();
        assert!(
            !live.contains(&victim),
            "killed shard {victim} still live: {live:?}"
        );
        assert_eq!(live.len(), shards - 1, "exactly one shard died");
    }
    out.into_iter().map(|o| o.expect("served")).collect()
}

/// After the eviction lease moves to a new epoch, every
/// membership-changing control message from the deposed router is
/// refused fleet-wide, and the first refusal demotes it. The stale
/// router cannot admit a shard, the new leader can, and each shard's
/// grant history shows strictly increasing epochs with one holder per
/// epoch.
#[test]
fn stale_router_control_refused_after_lease_moves() {
    let transport = Arc::new(LoopbackTransport::new());
    let nodes: Vec<Arc<ShardNode>> = (0..3u32)
        .map(|id| Arc::new(ShardNode::start(id, config())))
        .collect();
    for node in &nodes {
        transport.register(node.id(), Arc::clone(node) as Arc<dyn FrameHandler>);
    }
    let dir = std::env::temp_dir().join(format!("ccm2-stale-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(MembershipStore::new(&dir).expect("membership store opens"));
    let a = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
        .with_identity(1)
        .with_membership_store(Arc::clone(&store));
    let b = FabricRouter::new(Arc::clone(&transport) as Arc<dyn Transport>)
        .with_identity(2)
        .as_standby()
        .with_lease(LeaseConfig { expiry_ticks: 2 })
        .with_membership_store(Arc::clone(&store));

    assert!(a.acquire_lease(), "uncontested first grant");
    assert_eq!(a.epoch(), 1);

    // A goes silent; B watches the lease age out and claims epoch 2.
    assert!(b.heartbeat_tick().is_empty());
    assert!(b.heartbeat_tick().is_empty());
    assert_eq!(b.role(), RouterRole::Leader, "standby promoted");
    assert_eq!(b.epoch(), 2);

    // The deposed leader tries a membership change: a warm join of a
    // brand-new shard. Its epoch-1 stamp draws EpochReject on the
    // lease barrier, the join is refused, and A stands down.
    let joiner = Arc::new(ShardNode::start(3, config()));
    transport.register(joiner.id(), Arc::clone(&joiner) as Arc<dyn FrameHandler>);
    assert!(!a.admit_shard(3), "stale-epoch admit must be refused");
    assert_eq!(
        a.role(),
        RouterRole::Standby,
        "refusal demotes the ex-leader"
    );
    assert!(a.stats().epoch_rejects >= 1);
    assert!(
        !a.live_shards().contains(&3),
        "refused joiner never entered the stale ring"
    );

    // The live leaseholder performs the same join without ceremony.
    assert!(b.admit_shard(3), "current leader admits the joiner");
    assert!(b.live_shards().contains(&3));

    // Shard-side ledger: epochs granted strictly increase, one holder
    // per epoch, and every original shard agrees on the live lease.
    for node in &nodes {
        assert_eq!(node.lease_grants(), vec![(1, 1), (2, 2)]);
        let lease = node.lease();
        assert_eq!((lease.epoch, lease.holder), (2, 2));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    // N shards, no deaths: byte-identical to standalone.
    #[test]
    fn fabric_matches_standalone(
        seed in 0u64..1_000_000,
        shards in 3usize..6,
        events in 8usize..20,
        edit_every in 0usize..6,
    ) {
        let params = ServeLoadParams {
            seed,
            projects: 2,
            clients: 3,
            events,
            edit_every,
            interface_every: 2,
        };
        let load = serve_load(&params);
        let reference = serve_standalone(&load);
        let fleet = serve_fabric(&load, shards, None);
        for (i, (r, f)) in reference.iter().zip(&fleet).enumerate() {
            prop_assert!(r.0 && f.0, "event {i} failed somewhere");
            prop_assert_eq!(&r.1, &f.1, "object bytes diverge at event {}", i);
            prop_assert_eq!(&r.2, &f.2, "diagnostics diverge at event {}", i);
        }
    }

    // One seeded mid-stream shard kill: still byte-identical,
    // zero admitted requests lost.
    #[test]
    fn fabric_survives_a_seeded_shard_kill_byte_identically(
        seed in 0u64..1_000_000,
        shards in 3usize..5,
        events in 10usize..18,
    ) {
        let params = ServeLoadParams {
            seed,
            projects: 2,
            clients: 3,
            events,
            edit_every: 4,
            interface_every: 3,
        };
        let load = serve_load(&params);
        let schedule = shard_kill_schedule(&params, shards as u32, 1);
        prop_assert_eq!(schedule.len(), 1);
        let (at, victim) = schedule[0];
        let reference = serve_standalone(&load);
        let fleet = serve_fabric(&load, shards, Some((at, victim)));
        for (i, (r, f)) in reference.iter().zip(&fleet).enumerate() {
            prop_assert!(r.0 && f.0, "event {i} failed somewhere");
            prop_assert_eq!(&r.1, &f.1, "object bytes diverge at event {} (kill at {})", i, at);
            prop_assert_eq!(&r.2, &f.2, "diagnostics diverge at event {}", i);
        }
    }
}
