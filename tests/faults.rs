//! Fault-injection properties: any single injected fault degrades only
//! its own stream.
//!
//! For every fault site × DKY strategy × executor drawn by proptest, a
//! compile with one injected fault must
//!
//! * terminate (no hang — the wedge-release watchdog guarantees this —
//!   and no unwinding out of the executor),
//! * surface at least one error diagnostic naming the faulted stream,
//! * leave every non-faulted stream's object code byte-identical to the
//!   fault-free compile of the same module.
//!
//! Separate deterministic tests audit the threaded executor's cleanup:
//! a degraded run leaves no extra OS threads behind and does not poison
//! the process for subsequent clean compiles.

use std::sync::Arc;

use proptest::prelude::*;

use ccm2::{compile_concurrent, CompileError, Executor, Options};
use ccm2_codegen::ir::{CodeUnit, Instr};
use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_sched::SimConfig;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::Interner;
use ccm2_workload::{generate, GenParams, GeneratedModule};

fn module() -> GeneratedModule {
    generate(&GenParams {
        fault_seeds: true,
        ..GenParams::small("Px", 0xF0)
    })
}

/// Interner-independent rendering of one unit, comparable across
/// compiles with different interners.
fn render_unit(u: &CodeUnit, interner: &Interner) -> String {
    let mut s = format!(
        "{} level={} params={} frame={:?} shapes={:?}\n",
        interner.resolve(u.name),
        u.level,
        u.param_count,
        u.frame,
        u.shapes
    );
    for ins in &u.code {
        match ins {
            Instr::PushStr(sym) => s.push_str(&format!("PushStr({})\n", interner.resolve(*sym))),
            Instr::PushProc(sym) => s.push_str(&format!("PushProc({})\n", interner.resolve(*sym))),
            Instr::PushGlobalAddr { module, slot } => s.push_str(&format!(
                "PushGlobalAddr({}, {slot})\n",
                interner.resolve(*module)
            )),
            Instr::Call {
                target,
                argc,
                link_up,
            } => s.push_str(&format!(
                "Call({}, {argc}, {link_up})\n",
                interner.resolve(*target)
            )),
            other => s.push_str(&format!("{other:?}\n")),
        }
    }
    s
}

/// (site pattern, fault kind, streams the fault may legitimately touch).
fn site(index: usize) -> (&'static str, FaultKind, &'static [&'static str]) {
    match index {
        0 => (
            "task:procparse(FaultShort)",
            FaultKind::Panic,
            &["FaultShort"],
        ),
        1 => (
            "task:procparse(FaultNest)",
            FaultKind::Panic,
            &["FaultNest"],
        ),
        2 => ("task:analyze(*FaultLong)", FaultKind::Panic, &["FaultLong"]),
        3 => ("task:codegen(*FaultLong)", FaultKind::Panic, &["FaultLong"]),
        4 => (
            "task:codegen(*FaultShort)",
            FaultKind::Panic,
            &["FaultShort"],
        ),
        _ => (
            "signal:heading(FaultShort)",
            FaultKind::LoseSignal,
            &["FaultShort"],
        ),
    }
}

fn compile(
    m: &GeneratedModule,
    strategy: DkyStrategy,
    sim: bool,
    faults: Option<Arc<FaultPlan>>,
) -> ccm2::ConcurrentOutput {
    let executor = if sim {
        Executor::Sim(SimConfig::firefly(4))
    } else {
        Executor::Threads(2)
    };
    compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            strategy,
            executor,
            analyze: true,
            faults,
            task_deadline: None,
            ..Options::default()
        },
    )
}

fn unit_map(out: &ccm2::ConcurrentOutput) -> std::collections::HashMap<String, String> {
    out.image
        .as_ref()
        .expect("image")
        .units
        .iter()
        .map(|u| (out.interner.resolve(u.name), render_unit(u, &out.interner)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_single_fault_degrades_only_its_own_stream(
        site_ix in 0usize..6,
        strategy_ix in 0usize..4,
        exec_ix in 0usize..2,
    ) {
        let sim = exec_ix == 0;
        let (pattern, kind, touched) = site(site_ix);
        let strategy = DkyStrategy::ALL[strategy_ix];
        let m = module();

        let baseline = compile(&m, strategy, sim, None);
        prop_assert!(baseline.errors.is_empty(), "baseline not clean: {:?}", baseline.errors);
        let base_units = unit_map(&baseline);

        let plan = Arc::new(FaultPlan::single(pattern, kind));
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compile(&m, strategy, sim, Some(Arc::clone(&plan)))
        }));
        let run = match run {
            Ok(out) => out,
            Err(_) => return Err(TestCaseError::fail(format!(
                "{pattern} [{strategy:?}, sim={sim}]: compile unwound instead of degrading"
            ))),
        };

        prop_assert!(plan.any_fired(), "{pattern}: fault site never fired");
        prop_assert!(!run.errors.is_empty(), "{pattern}: no degradation error");
        let named = run
            .diagnostics
            .iter()
            .any(|d| touched.iter().any(|t| d.message.contains(t)));
        prop_assert!(
            named,
            "{pattern}: no diagnostic names the faulted stream: {:#?}",
            run.diagnostics
        );

        let is_touched = |name: &str| touched.iter().any(|t| name.contains(t));
        let faulted_units = unit_map(&run);
        for (name, rendered) in &faulted_units {
            if is_touched(name) {
                continue;
            }
            prop_assert_eq!(
                Some(rendered),
                base_units.get(name),
                "{} [{:?}, sim={}]: non-faulted unit `{}` diverged",
                pattern, strategy, sim, name
            );
        }
        for name in base_units.keys() {
            if !is_touched(name) {
                prop_assert!(
                    faulted_units.contains_key(name),
                    "{}: non-faulted unit `{}` missing from degraded image",
                    pattern, name
                );
            }
        }
    }
}

/// Same fault plan, same executor → byte-identical degraded output (the
/// injection decision is a pure function of the site name, and all
/// degradation artifacts are sorted deterministically).
#[test]
fn degraded_runs_are_deterministic_on_the_simulator() {
    let m = module();
    let run = |_: u32| {
        compile(
            &m,
            DkyStrategy::Skeptical,
            true,
            Some(Arc::new(FaultPlan::single(
                "task:codegen(*FaultLong)",
                FaultKind::Panic,
            ))),
        )
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.errors, b.errors);
    assert_eq!(
        a.diagnostics.iter().map(|d| &d.message).collect::<Vec<_>>(),
        b.diagnostics.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
    assert_eq!(unit_map(&a), unit_map(&b));
}

#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs")
        .count()
}

/// A degraded threaded run must join every worker it spawned: no leaked
/// OS threads, and the process stays healthy for later clean compiles
/// (`parking_lot`-style locks — no mutex poisoning to trip over).
#[cfg(target_os = "linux")]
#[test]
fn degraded_threaded_run_joins_all_workers_and_does_not_poison() {
    let m = module();
    // Warm-up so lazily spawned runtime threads don't skew the count.
    let warm = compile(&m, DkyStrategy::Skeptical, false, None);
    assert!(warm.errors.is_empty());
    let before = os_thread_count();

    let degraded = compile(
        &m,
        DkyStrategy::Skeptical,
        false,
        Some(Arc::new(FaultPlan::single(
            "task:procparse(FaultShort)",
            FaultKind::Panic,
        ))),
    );
    assert!(!degraded.errors.is_empty());
    assert!(degraded.errors.iter().any(
        |e| matches!(e, CompileError::StreamFault { task, .. } if task.contains("FaultShort"))
    ));

    // Workers are joined before run_threaded_with returns; give the OS a
    // moment to reap just in case, then audit.
    for _ in 0..50 {
        if os_thread_count() <= before {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        os_thread_count() <= before,
        "degraded run leaked OS threads: {} -> {}",
        before,
        os_thread_count()
    );

    // And the process is not poisoned: a clean compile still succeeds.
    let clean = compile(&m, DkyStrategy::Skeptical, false, None);
    assert!(clean.errors.is_empty(), "{:?}", clean.errors);
    assert!(clean.image.is_some());
}
