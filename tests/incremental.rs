//! End-to-end tests of the content-addressed incremental compilation
//! cache: warm recompiles must splice cached units without changing the
//! compiler's observable output, and damaged or stale cache state must
//! degrade to a plain cold compile — never to a wrong image or a panic.

use std::sync::Arc;

use ccm2::{compile_concurrent, ConcurrentOutput, Options};
use ccm2_incr::{ArtifactStore, DiskStore, IncrStats, MemStore};
use ccm2_support::diag::Severity;
use ccm2_support::Interner;
use ccm2_workload::{
    apply_edits, body_edits, generate, suite_params, GenParams, GeneratedModule, SUITE_SIZE,
};

fn compile(
    m: &GeneratedModule,
    store: Option<Arc<dyn ArtifactStore>>,
    analyze: bool,
    threads: usize,
) -> ConcurrentOutput {
    compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            analyze,
            incremental: store,
            ..Options::threads(threads)
        },
    )
}

/// Interner-independent (image bytes, rendered diagnostics) pair.
fn comparable(out: &ConcurrentOutput) -> (Option<Vec<u8>>, Vec<String>) {
    ccm2_incr::comparable_output(
        out.image.as_ref(),
        &out.diagnostics,
        &out.sources,
        &out.interner,
    )
}

#[test]
fn warm_identical_compile_splices_every_unit() {
    let m = generate(&GenParams::small("WarmAll", 31));
    let store = Arc::new(MemStore::new());
    let cold = compile(&m, Some(store.clone()), true, 4);
    assert!(
        cold.is_ok(),
        "{:?}",
        &cold.diagnostics[..3.min(cold.diagnostics.len())]
    );
    let cold_stats = cold.incr.expect("incremental was active");
    assert_eq!(cold_stats.units, cold.procedures + 1, "procs + module body");
    assert_eq!(cold_stats.spliced, 0, "empty store cannot hit");
    assert!(store.entry_count() > 0, "cold run populates the store");

    let warm = compile(&m, Some(store.clone()), true, 4);
    assert!(warm.is_ok());
    let warm_stats = warm.incr.expect("incremental was active");
    assert_eq!(warm_stats.units, cold_stats.units);
    assert_eq!(warm_stats.spliced, warm_stats.units, "all units resplice");
    assert_eq!(warm_stats.recompiled, 0);
    assert_eq!(warm_stats.bad_entries, 0);
    assert_eq!(comparable(&cold), comparable(&warm), "warm == cold output");
}

#[test]
fn procedure_body_edit_recompiles_only_the_touched_stream() {
    let m = generate(&GenParams {
        name: "OneEdit".into(),
        seed: 44,
        procedures: 12,
        interfaces: 4,
        import_depth: 2,
        stmts_per_proc: 14,
        nested_ratio: 0.0, // flat: the edited stream has no children
        lint_seeds: true,
        fault_seeds: false,
        lock_seeds: false,
    });
    let store = Arc::new(MemStore::new());
    let cold = compile(&m, Some(store.clone()), true, 4);
    assert!(cold.is_ok());

    let edited = apply_edits(&m, &body_edits(1, 4242));
    assert_ne!(m.source, edited.source, "edit must land");
    let warm = compile(&edited, Some(store.clone()), true, 4);
    assert!(warm.is_ok());
    let stats = warm.incr.expect("incremental was active");
    assert_eq!(stats.units, 13, "12 procedures + module body");
    assert_eq!(stats.recompiled, 1, "only Proc0 was touched");
    assert_eq!(stats.spliced, 12, "siblings and module body resplice");

    // A from-scratch compile of the edited source is the ground truth.
    let reference = compile(&edited, None, true, 4);
    assert_eq!(reference.incr, None, "no store, no counters");
    assert_eq!(comparable(&warm), comparable(&reference));
}

#[test]
fn interface_edit_invalidates_everything() {
    let m = generate(&GenParams::small("IfaceInval", 52));
    let store = Arc::new(MemStore::new());
    let cold = compile(&m, Some(store.clone()), false, 2);
    assert!(cold.is_ok());

    let (lib, _) = m.defs.iter().next().expect("has interfaces");
    let edited = apply_edits(
        &m,
        &[ccm2_workload::EditOp::Interface {
            def: lib.to_string(),
            tag: 9,
        }],
    );
    let warm = compile(&edited, Some(store.clone()), false, 2);
    assert!(warm.is_ok());
    let stats = warm.incr.expect("incremental was active");
    assert_eq!(
        stats.spliced, 0,
        "environment digest covers the interface library"
    );
    let reference = compile(&edited, None, false, 2);
    assert_eq!(comparable(&warm), comparable(&reference));
}

#[test]
fn suite_hit_rate_after_one_procedure_edit_is_at_least_95_percent() {
    let store = Arc::new(MemStore::new());
    let modules: Vec<GeneratedModule> = (0..SUITE_SIZE)
        .map(|i| generate(&suite_params(i)))
        .collect();
    for m in &modules {
        let cold = compile(m, Some(store.clone()), false, 4);
        assert!(
            cold.is_ok(),
            "{}: {:?}",
            m.source.len(),
            &cold.diagnostics[..3.min(cold.diagnostics.len())]
        );
    }

    // The developer edits one procedure in one module, then rebuilds the
    // whole suite.
    let edited_index = 17;
    let edited = apply_edits(&modules[edited_index], &body_edits(1, 0xED17));
    assert_ne!(modules[edited_index].source, edited.source);

    let mut total = IncrStats::default();
    let mut edited_out = None;
    for (i, m) in modules.iter().enumerate() {
        let target = if i == edited_index { &edited } else { m };
        let warm = compile(target, Some(store.clone()), false, 4);
        assert!(warm.is_ok(), "module {i}");
        total.absorb(warm.incr.expect("incremental was active"));
        if i == edited_index {
            edited_out = Some(warm);
        }
    }
    assert!(
        total.hit_rate() >= 0.95,
        "suite-wide warm hit rate {:.3} below 0.95 ({total:?})",
        total.hit_rate()
    );
    assert_eq!(total.bad_entries, 0);

    // The edited module's warm output matches a from-scratch compile.
    let reference = compile(&edited, None, false, 4);
    assert_eq!(
        comparable(&edited_out.expect("edited ran")),
        comparable(&reference)
    );
}

#[test]
fn corrupt_entries_degrade_to_misses_with_a_note() {
    let m = generate(&GenParams::small("Corrupt", 63));
    let store = Arc::new(MemStore::new());
    let cold = compile(&m, Some(store.clone()), true, 2);
    assert!(cold.is_ok());
    let cold_cmp = comparable(&cold);

    for fp in store.fingerprints() {
        assert!(store.corrupt(fp, 12), "flip a payload byte");
    }
    let warm = compile(&m, Some(store.clone()), true, 2);
    assert!(warm.is_ok(), "corruption must never break the compile");
    let stats = warm.incr.expect("incremental was active");
    assert_eq!(stats.spliced, 0, "nothing decodable, nothing spliced");
    assert!(stats.bad_entries >= stats.units, "every entry was damaged");
    assert!(
        warm.diagnostics.iter().any(|d| {
            d.severity == Severity::Note && d.message.contains("incremental cache entry")
        }),
        "degradation is reported, got {:?}",
        warm.diagnostics
    );
    // Image identical to the cold compile; only the cache notes differ.
    assert_eq!(comparable(&warm).0, cold_cmp.0);

    // The warm run re-recorded good entries over the damaged ones, so a
    // third run splices everything again.
    let third = compile(&m, Some(store.clone()), true, 2);
    let stats3 = third.incr.expect("incremental was active");
    assert_eq!(stats3.spliced, stats3.units);
    assert_eq!(comparable(&third), cold_cmp);
}

#[test]
fn disk_store_survives_a_process_restart() {
    let dir = std::env::temp_dir().join(format!("ccm2-incr-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = generate(&GenParams::small("DiskWarm", 74));

    let cold_store: Arc<dyn ArtifactStore> = Arc::new(DiskStore::new(&dir).expect("create"));
    let cold = compile(&m, Some(cold_store), false, 2);
    assert!(cold.is_ok());

    // A fresh handle on the same directory models a new compiler process.
    let warm_store: Arc<dyn ArtifactStore> = Arc::new(DiskStore::new(&dir).expect("reopen"));
    let warm = compile(&m, Some(warm_store), false, 2);
    assert!(warm.is_ok());
    let stats = warm.incr.expect("incremental was active");
    assert_eq!(stats.spliced, stats.units, "on-disk entries survive");
    assert_eq!(comparable(&cold), comparable(&warm));
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn unrelated_interface_edit_keeps_every_module_warm() {
    // Per-import environment precision: the digest covers only the
    // interfaces a module transitively imports, so touching a definition
    // module nothing reaches must not invalidate anything.
    let mut m = generate(&GenParams::small("Precise", 61));
    m.defs.insert(
        "LonelyLib",
        "DEFINITION MODULE LonelyLib; CONST Version = 1; END LonelyLib.",
    );
    let store = Arc::new(MemStore::new());
    let cold = compile(&m, Some(store.clone()), false, 2);
    assert!(
        cold.is_ok(),
        "{:?}",
        &cold.diagnostics[..3.min(cold.diagnostics.len())]
    );
    let cold_cmp = comparable(&cold);

    let mut edited = m.clone();
    edited.defs.insert(
        "LonelyLib",
        "DEFINITION MODULE LonelyLib; CONST Version = 2; END LonelyLib.",
    );
    let warm = compile(&edited, Some(store.clone()), false, 2);
    assert!(warm.is_ok());
    let stats = warm.incr.expect("incremental was active");
    assert_eq!(
        stats.recompiled, 0,
        "unreachable interface edit must not invalidate: {stats:?}"
    );
    assert_eq!(stats.spliced, stats.units);
    assert_eq!(comparable(&warm), cold_cmp);

    // Control: the same kind of edit to a *reachable* interface still
    // invalidates everything.
    let (lib, _) = {
        let mut names: Vec<&str> = m.defs.iter().map(|(n, _)| n).collect();
        names.sort();
        (
            names
                .into_iter()
                .find(|n| *n != "LonelyLib")
                .expect("has a real interface")
                .to_string(),
            (),
        )
    };
    let touched = apply_edits(&m, &[ccm2_workload::EditOp::Interface { def: lib, tag: 3 }]);
    let invalidated = compile(&touched, Some(store.clone()), false, 2);
    assert!(invalidated.is_ok());
    let stats = invalidated.incr.expect("incremental was active");
    assert_eq!(stats.spliced, 0, "reachable interface edits invalidate");
}

#[test]
fn warm_splice_tasks_run_before_any_codegen_in_both_executors() {
    // Cache-aware scheduling: CacheSplice outranks ProcParse/CodeGen in
    // the 2.3.4 priority queue of *both* executors, so on a warm run
    // every near-free splice lands before the first live codegen task —
    // unblocking merges and DKY waits as early as possible. With one
    // worker the pop order is exactly the priority order, so the trace
    // ordering is deterministic.
    use ccm2::Executor;
    use ccm2_sched::{SimConfig, TaskKind};

    let m = generate(&GenParams::small("SpliceRank", 77));
    let edited = apply_edits(&m, &body_edits(1, 0x5AFE));
    assert_ne!(m.source, edited.source);

    for executor in [Executor::Sim(SimConfig::firefly(1)), Executor::Threads(1)] {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let opts = |exec: Executor| ccm2::Options {
            incremental: Some(Arc::clone(&store)),
            executor: exec,
            ..ccm2::Options::default()
        };
        let cold = ccm2::compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::new(Interner::new()),
            opts(executor.clone()),
        );
        assert!(cold.is_ok());
        let warm = ccm2::compile_concurrent(
            &edited.source,
            Arc::new(edited.defs.clone()),
            Arc::new(Interner::new()),
            opts(executor.clone()),
        );
        assert!(warm.is_ok());
        let stats = warm.incr.expect("incremental active");
        assert!(stats.spliced > 0, "warm run must splice ({executor:?})");
        assert!(stats.recompiled > 0, "edited stream must recompile");

        // Segments are recorded in execution order on the single worker.
        let segs = &warm.report.trace.segments;
        let splices: Vec<usize> = segs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == TaskKind::CacheSplice)
            .map(|(i, _)| i)
            .collect();
        let codegens: Vec<usize> = segs
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                matches!(s.kind, TaskKind::LongCodeGen | TaskKind::ShortCodeGen)
                    || s.kind == TaskKind::ProcParse
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(splices.len(), stats.spliced, "one segment per splice");
        assert!(!codegens.is_empty(), "edited stream compiles live");
        let last_splice = *splices.last().expect("has splices");
        let first_codegen = *codegens.first().expect("has codegen");
        assert!(
            last_splice < first_codegen,
            "{executor:?}: splice at segment {last_splice} ran after \
             codegen/procparse at {first_codegen}"
        );
    }
}
