//! Interprocedural lock-order analysis: the static deadlock predictions
//! (cross-procedure re-LOCK, lock-order cycles) must be byte-identical
//! between the sequential reference and the concurrent compiler under
//! every DKY strategy and both executors, must survive warm re-analysis
//! from the incremental summary cache, and must treat a summary
//! format-version mismatch as a cache miss — never as wrong output.

use std::sync::Arc;

use ccm2::{compile_concurrent, ConcurrentOutput, Executor, Options};
use ccm2_incr::{decode_entry, encode_entry, ArtifactStore, MemStore};
use ccm2_sched::SimConfig;
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::DefLibrary;
use ccm2_support::diag::Diagnostic;
use ccm2_support::source::SourceMap;
use ccm2_support::{Fp128, Interner, NullMeter};
use ccm2_workload::{generate, GenParams, GeneratedModule};

fn normalize(diags: &[Diagnostic], sources: &SourceMap) -> Vec<String> {
    let mut v: Vec<String> = diags
        .iter()
        .map(|d| {
            let name = sources
                .get(d.file)
                .map(|f| f.name().to_string())
                .unwrap_or_default();
            format!(
                "{name}:{}..{} {} {}",
                d.span.lo, d.span.hi, d.severity, d.message
            )
        })
        .collect();
    v.sort();
    v
}

fn seq_reference(src: &str, defs: &DefLibrary) -> ccm2_seq::CompileOutput {
    ccm2_seq::compile_full(
        src,
        defs,
        Arc::new(Interner::new()),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
        true,
    )
}

/// Compiles `src` under every DKY strategy × both executors with the
/// analysis on and asserts the diagnostics are byte-identical to the
/// sequential reference; then checks the expected needles appear.
fn check_matrix(src: &str, defs: &DefLibrary, expect_contains: &[&str]) {
    let seq = seq_reference(src, defs);
    let baseline = normalize(&seq.diagnostics, &seq.sources);
    for strategy in DkyStrategy::ALL {
        for executor in [Executor::Sim(SimConfig::firefly(3)), Executor::Threads(2)] {
            let which = format!("{executor:?}");
            let conc = compile_concurrent(
                src,
                Arc::new(defs.clone()),
                Arc::new(Interner::new()),
                Options {
                    analyze: true,
                    strategy,
                    executor,
                    ..Options::default()
                },
            );
            assert_eq!(
                normalize(&conc.diagnostics, &conc.sources),
                baseline,
                "{strategy:?}/{which}: diagnostics diverged for:\n{src}"
            );
        }
    }
    for needle in expect_contains {
        assert!(
            baseline.iter().any(|d| d.contains(needle)),
            "expected a diagnostic containing {needle:?}, got {baseline:#?}"
        );
    }
}

fn sim_options(store: &Arc<dyn ArtifactStore>) -> Options {
    Options {
        analyze: true,
        incremental: Some(Arc::clone(store)),
        executor: Executor::Sim(SimConfig::firefly(4)),
        ..Options::default()
    }
}

fn sim_compile(m: &GeneratedModule, options: Options) -> ConcurrentOutput {
    let out = compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        options,
    );
    assert!(out.is_ok(), "{:?}", out.diagnostics);
    out
}

#[test]
fn cross_procedure_relock_is_predicted_identically_everywhere() {
    // Outer holds `mu` across a call to Inner, which re-LOCKs it: only
    // the interprocedural pass can see this (each body is clean alone).
    check_matrix(
        "MODULE M; \
         TYPE R = RECORD a, b : INTEGER END; \
         VAR mu : R; VAR g : INTEGER; \
         PROCEDURE Inner(x : INTEGER) : INTEGER; \
         VAR t : INTEGER; \
         BEGIN LOCK mu DO t := x END; RETURN t END Inner; \
         PROCEDURE Outer(y : INTEGER) : INTEGER; \
         VAR u : INTEGER; \
         BEGIN LOCK mu DO u := Inner(y) END; RETURN u END Outer; \
         BEGIN g := Outer(1) END M.",
        &DefLibrary::new(),
        &["call to `M.Inner` while holding `mu` may re-LOCK it"],
    );
}

#[test]
fn cross_procedure_lock_order_cycle_is_predicted_identically_everywhere() {
    // PA acquires mu then (via GrabNu) nu; PB acquires nu then (via
    // GrabMu) mu — a two-lock cycle spread over four procedures.
    check_matrix(
        "MODULE M; \
         TYPE R = RECORD a, b : INTEGER END; \
         VAR mu, nu : R; VAR g : INTEGER; \
         PROCEDURE GrabMu(x : INTEGER) : INTEGER; \
         VAR t : INTEGER; \
         BEGIN LOCK mu DO t := x END; RETURN t END GrabMu; \
         PROCEDURE GrabNu(x : INTEGER) : INTEGER; \
         VAR t : INTEGER; \
         BEGIN LOCK nu DO t := x END; RETURN t END GrabNu; \
         PROCEDURE PA(y : INTEGER) : INTEGER; \
         VAR u : INTEGER; \
         BEGIN LOCK mu DO u := GrabNu(y) END; RETURN u END PA; \
         PROCEDURE PB(y : INTEGER) : INTEGER; \
         VAR u : INTEGER; \
         BEGIN LOCK nu DO u := GrabMu(y) END; RETURN u END PB; \
         BEGIN g := PA(1) + PB(2) END M.",
        &DefLibrary::new(),
        &["potential deadlock: lock-order cycle among `mu`, `nu`"],
    );
}

#[test]
fn seeded_lock_workload_is_predicted_identically_everywhere() {
    let m = generate(&GenParams {
        lock_seeds: true,
        ..GenParams::small("LkT", 0x7E57)
    });
    let seq = seq_reference(&m.source, &m.defs);
    assert!(seq.is_ok(), "{:?}", seq.diagnostics);
    check_matrix(
        &m.source,
        &m.defs,
        &[
            "potential deadlock: lock-order cycle among `lkA`, `lkB`, `lkC`",
            "may re-LOCK it",
        ],
    );
    // The stats the concurrent pass reports must match the sequential
    // reference exactly (everything computed live, nothing cached).
    let s = seq.locks.expect("analysis ran");
    let conc = compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            analyze: true,
            ..Options::threads(2)
        },
    );
    let c = conc.locks.expect("analysis ran");
    assert_eq!(
        (c.units, c.edges, c.cycles, c.findings),
        (s.units, s.edges, s.cycles, s.findings)
    );
    assert_eq!(c.from_cache, 0);
    assert_eq!(c.computed, c.units);
}

#[test]
fn warm_reanalysis_recomputes_only_dirty_summaries_and_dependents() {
    let m = generate(&GenParams {
        lock_seeds: true,
        ..GenParams::small("LkW", 0x5EED)
    });
    let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
    let cold = sim_compile(&m, sim_options(&store));
    let warm = sim_compile(&m, sim_options(&store));
    assert_eq!(
        normalize(&warm.diagnostics, &warm.sources),
        normalize(&cold.diagnostics, &cold.sources),
        "warm diagnostics diverged from cold"
    );

    // Edit one grabber's body: only its summary is dirty, and only its
    // one cached caller (LockEdgeBC) must re-propagate.
    let mut edited = m.clone();
    edited.source = m.source.replacen(
        "LOCK lkC DO l0 := p0 + p1 END",
        "LOCK lkC DO l0 := p0 + p1 + 1 END",
        1,
    );
    assert_ne!(edited.source, m.source, "edit must land");
    let warm_edit = sim_compile(&edited, sim_options(&store));

    let [cs, ws, es] = [&cold, &warm, &warm_edit].map(|o| o.locks.clone().expect("stats"));
    assert_eq!(cs.from_cache, 0, "cold run must compute everything");
    assert_eq!(cs.computed, cs.units);
    assert_eq!(
        ws.computed, 1,
        "plain warm run recomputes only the module unit"
    );
    assert_eq!(ws.from_cache, ws.units - 1);
    assert_eq!(
        es.computed, 2,
        "warm edit recomputes the module unit and the edited procedure"
    );
    assert_eq!(es.dependents, 1, "one cached caller re-propagates");
    assert!(
        normalize(&warm_edit.diagnostics, &warm_edit.sources)
            .iter()
            .any(|d| d.contains("lock-order cycle")),
        "cycle prediction must survive the warm re-analysis"
    );
}

/// Rewrites a summary blob to claim the next format version, with the
/// trailing checksum recomputed so only the version check can reject it
/// (mirrors `ccm2_analysis::summary`'s own version-guard test).
fn forge_summary_version(summary: &[u8]) -> Vec<u8> {
    assert!(summary.len() > 8 + 4 + 16, "not a summary blob");
    let mut body = summary[..summary.len() - 16].to_vec();
    let at = 8; // just past the magic
    let found = u32::from_le_bytes([body[at], body[at + 1], body[at + 2], body[at + 3]]);
    body[at..at + 4].copy_from_slice(&(found + 1).to_le_bytes());
    let checksum = Fp128::of(&body);
    let mut forged = body;
    forged.extend_from_slice(&checksum.hi.to_le_bytes());
    forged.extend_from_slice(&checksum.lo.to_le_bytes());
    forged
}

#[test]
fn summary_version_mismatch_degrades_to_cache_miss() {
    let m = generate(&GenParams {
        lock_seeds: true,
        ..GenParams::small("LkV", 0xF00D)
    });
    let mem = Arc::new(MemStore::new());
    let store: Arc<dyn ArtifactStore> = Arc::clone(&mem) as Arc<dyn ArtifactStore>;
    let cold = sim_compile(&m, sim_options(&store));
    let baseline = normalize(&cold.diagnostics, &cold.sources);

    // Forge every cached summary to claim a future format version; the
    // entries themselves stay valid so only the summary check can fire.
    let mut forged = 0usize;
    for fp in mem.fingerprints() {
        let bytes = mem.load(fp).expect("entry present");
        let mut entry = decode_entry(&bytes, &cold.interner).expect("entry decodes");
        if entry.summary.is_empty() {
            continue;
        }
        entry.summary = forge_summary_version(&entry.summary);
        mem.store(fp, &encode_entry(&entry, &cold.interner));
        forged += 1;
    }
    assert!(forged > 0, "seeded module must cache procedure summaries");

    let warm = sim_compile(&m, sim_options(&store));
    assert_eq!(
        normalize(&warm.diagnostics, &warm.sources)
            .iter()
            .filter(|d| !d.contains("incremental cache entry"))
            .cloned()
            .collect::<Vec<_>>(),
        baseline,
        "forged summaries must not change the compiler's verdicts"
    );
    let stats = warm.incr.expect("incremental stats present");
    assert!(
        stats.bad_entries >= forged,
        "every forged summary must be counted as a bad entry: {stats:?}"
    );
    assert!(
        mem.quarantined() >= forged as u64,
        "forged entries must be quarantined"
    );
    let locks = warm.locks.expect("analysis ran");
    assert_eq!(
        locks.from_cache, 0,
        "no forged summary may be replayed from the cache"
    );
    assert!(
        normalize(&warm.diagnostics, &warm.sources)
            .iter()
            .any(|d| d.contains("lock-order cycle")),
        "static prediction must survive the degraded warm run"
    );
}
