//! Property-based tests (proptest) for the core invariants:
//!
//! * the lexer never loses input — token spans are ordered, in-bounds and
//!   non-overlapping for arbitrary source text;
//! * the splitter conserves tokens — main-stream tokens plus procedure
//!   streams reassemble the original program's token multiset (with
//!   heading duplication and stubs accounted for);
//! * generated programs of arbitrary shape compile identically under the
//!   sequential and concurrent compilers;
//! * merge is order-insensitive;
//! * compiled straight-line integer arithmetic agrees with a reference
//!   evaluation.

use std::sync::Arc;

use proptest::prelude::*;

use ccm2::{compile_concurrent, Options};
use ccm2_support::defs::DefLibrary;
use ccm2_support::{DiagnosticSink, Interner, NullMeter};
use ccm2_syntax::lexer::lex_file;
use ccm2_syntax::token::TokenKind;
use ccm2_vm::Vm;
use ccm2_workload::{generate, GenParams};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lexer_spans_tile_arbitrary_ascii(src in "[ -~\n]{0,400}") {
        let interner = Interner::new();
        let map = ccm2_support::SourceMap::new();
        let file = map.add("fuzz.mod", src.clone());
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        let mut prev_end = 0u32;
        for t in &tokens {
            prop_assert!(t.span.lo >= prev_end, "overlapping tokens");
            prop_assert!(t.span.hi as usize <= src.len(), "span out of bounds");
            prop_assert!(t.span.lo < t.span.hi, "empty token span");
            prev_end = t.span.hi;
        }
    }

    #[test]
    fn lexer_roundtrips_identifier_soup(words in proptest::collection::vec("[A-Za-z][A-Za-z0-9]{0,8}", 1..40)) {
        let src = words.join(" ");
        let interner = Interner::new();
        let map = ccm2_support::SourceMap::new();
        let file = map.add("soup.mod", src.clone());
        let sink = DiagnosticSink::new();
        let tokens = lex_file(&file, &interner, &sink);
        prop_assert!(!sink.has_errors());
        prop_assert_eq!(tokens.len(), words.len());
        for (t, w) in tokens.iter().zip(&words) {
            match t.kind {
                TokenKind::Ident(s) => prop_assert_eq!(&interner.resolve(s), w),
                k if k.is_reserved_word() => prop_assert_eq!(k.describe(), w.as_str()),
                other => prop_assert!(false, "unexpected token {:?} for {:?}", other, w),
            }
        }
    }

    #[test]
    fn generated_programs_compile_equally_everywhere(
        seed in 0u64..5000,
        procedures in 1usize..14,
        interfaces in 0usize..7,
        stmts in 4usize..20,
        nested in 0u32..40,
    ) {
        let params = GenParams {
            name: "Prop".into(),
            seed,
            procedures,
            interfaces,
            import_depth: interfaces.clamp(usize::from(interfaces > 0), 3),
            stmts_per_proc: stmts,
            nested_ratio: nested as f64 / 100.0,
            lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
        };
        let m = generate(&params);
        let interner = Arc::new(Interner::new());
        let seq = ccm2_seq::compile_with(
            &m.source,
            &m.defs,
            Arc::clone(&interner),
            Arc::new(NullMeter),
            ccm2_sema::declare::HeadingMode::CopyToChild,
        );
        prop_assert!(seq.is_ok(), "seq diagnostics: {:?}", seq.diagnostics);
        let conc = compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::clone(&interner),
            Options::threads(2),
        );
        prop_assert!(conc.is_ok(), "conc diagnostics: {:?}", conc.diagnostics);
        prop_assert_eq!(seq.image, conc.image);
    }

    #[test]
    fn straight_line_arithmetic_matches_reference(
        values in proptest::collection::vec(-50i64..50, 1..12),
        ops in proptest::collection::vec(0u8..4, 0..11),
    ) {
        // Build `r := v0 op v1 op v2 …` left-associated with DIV/MOD made
        // safe, and evaluate both in Rust and through the full
        // compile+run pipeline.
        // Negative literals are not factors in Modula-2; render each
        // operand as `(0 - n)` when negative.
        let lit = |v: i64| {
            if v < 0 {
                format!("(0 - {})", -v)
            } else {
                format!("{v}")
            }
        };
        let mut expr = lit(values[0]);
        let mut expected: i64 = values[0];
        for (i, &op) in ops.iter().enumerate() {
            let rhs = values.get(i + 1).copied().unwrap_or(7);
            match op {
                0 => {
                    expr = format!("({expr}) + {}", lit(rhs));
                    expected = expected.wrapping_add(rhs);
                }
                1 => {
                    expr = format!("({expr}) - {}", lit(rhs));
                    expected = expected.wrapping_sub(rhs);
                }
                2 => {
                    expr = format!("({expr}) * {}", lit(rhs));
                    expected = expected.wrapping_mul(rhs);
                }
                _ => {
                    let d = if rhs == 0 { 3 } else { rhs };
                    expr = format!("({expr}) DIV {}", lit(d));
                    expected = expected.div_euclid(d);
                }
            }
        }
        let src = format!(
            "MODULE P; VAR r : INTEGER; BEGIN r := {expr}; WriteInt(r, 0) END P."
        );
        let out = compile_concurrent(
            &src,
            Arc::new(DefLibrary::new()),
            Arc::new(Interner::new()),
            Options::threads(1),
        );
        prop_assert!(out.is_ok(), "diagnostics: {:?} for {}", out.diagnostics, src);
        let text = Vm::new(out.interner)
            .run(&out.image.expect("image"))
            .expect("runs");
        prop_assert_eq!(text.trim(), format!("{expected}"));
    }

    #[test]
    fn merge_is_order_insensitive_for_generated_units(perm_seed in 0u64..1000) {
        use ccm2_codegen::ir::{CodeUnit, Instr};
        use ccm2_codegen::merge::Merger;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let interner = Arc::new(Interner::new());
        let names: Vec<_> = (0..12).map(|i| interner.intern(&format!("M.P{i}"))).collect();
        let make_units = || -> Vec<CodeUnit> {
            names
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let mut u = CodeUnit::new(n, 1);
                    u.code.push(Instr::PushInt(i as i64));
                    u.code.push(Instr::ReturnValue);
                    u
                })
                .collect()
        };
        let a = Merger::new(interner.intern("M"), Arc::clone(&interner));
        for u in make_units() {
            a.add_unit(u, &NullMeter);
        }
        let b = Merger::new(interner.intern("M"), Arc::clone(&interner));
        let mut shuffled = make_units();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(perm_seed);
        shuffled.shuffle(&mut rng);
        for u in shuffled {
            b.add_unit(u, &NullMeter);
        }
        prop_assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn const_folding_matches_vm_for_const_declarations(a in -100i64..100, b in -100i64..100, c in 1i64..50) {
        // The same expression evaluated at compile time (CONST) and at
        // run time (VAR assignment) must agree.
        let src = format!(
            "MODULE K; \
             CONST X = ({a}) * ({b}) + ({a}) DIV {c}; \
             VAR y : INTEGER; \
             BEGIN y := ({a}) * ({b}) + ({a}) DIV {c}; \
             WriteInt(X, 0); WriteChar(' '); WriteInt(y, 0) END K."
        );
        let out = compile_concurrent(
            &src,
            Arc::new(DefLibrary::new()),
            Arc::new(Interner::new()),
            Options::threads(1),
        );
        prop_assert!(out.is_ok(), "{:?}", out.diagnostics);
        let text = Vm::new(out.interner)
            .run(&out.image.expect("image"))
            .expect("runs");
        let parts: Vec<&str> = text.trim().split(' ').collect();
        prop_assert_eq!(parts.len(), 2);
        prop_assert_eq!(parts[0], parts[1], "const fold vs runtime disagree: {}", text);
    }
}

/// Normalizes diagnostics for cross-compiler comparison (the compilers
/// register files in different orders, so FileIds differ while names
/// agree).
fn normalize_diags(
    diags: &[ccm2_support::diag::Diagnostic],
    sources: &ccm2_support::SourceMap,
) -> Vec<(String, u32, u32, String)> {
    let mut v: Vec<(String, u32, u32, String)> = diags
        .iter()
        .map(|d| {
            (
                sources
                    .get(d.file)
                    .map(|f| f.name().to_string())
                    .unwrap_or_else(|| format!("file#{}", d.file.0)),
                d.span.lo,
                d.span.hi,
                format!("{}: {}", d.severity, d.message),
            )
        })
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lint_findings_deterministic_and_strategy_independent(
        seed in 0u64..2000,
        procedures in 2usize..10,
        interfaces in 1usize..4,
    ) {
        use ccm2::Executor;
        use ccm2_sched::SimConfig;
        use ccm2_sema::symtab::DkyStrategy;

        let m = generate(&GenParams {
            name: "Lint".into(),
            seed,
            procedures,
            interfaces,
            import_depth: 1,
            stmts_per_proc: 8,
            nested_ratio: 0.2,
            lint_seeds: true,
        fault_seeds: false,
        lock_seeds: false,
        });
        let run_seq = || {
            ccm2_seq::compile_full(
                &m.source,
                &m.defs,
                Arc::new(Interner::new()),
                Arc::new(NullMeter),
                ccm2_sema::declare::HeadingMode::CopyToChild,
                true,
            )
        };
        let seq_a = run_seq();
        let seq_b = run_seq();
        prop_assert!(seq_a.is_ok(), "{:?}", seq_a.diagnostics);
        let reference = normalize_diags(&seq_a.diagnostics, &seq_a.sources);
        // Deterministic across runs...
        prop_assert_eq!(
            &reference,
            &normalize_diags(&seq_b.diagnostics, &seq_b.sources)
        );
        // ...and identical under the concurrent compiler for every DKY
        // strategy.
        for strategy in DkyStrategy::ALL {
            let conc = compile_concurrent(
                &m.source,
                Arc::new(m.defs.clone()),
                Arc::new(Interner::new()),
                Options {
                    strategy,
                    analyze: true,
                    executor: Executor::Sim(SimConfig::firefly(3)),
                    ..Options::default()
                },
            );
            prop_assert_eq!(
                &reference,
                &normalize_diags(&conc.diagnostics, &conc.sources),
                "strategy {}",
                strategy.name()
            );
        }
    }

    #[test]
    fn pretty_print_roundtrips_generated_modules(
        seed in 0u64..2000,
        procedures in 1usize..10,
        stmts in 4usize..16,
    ) {
        use ccm2_syntax::lexer::lex_file;
        use ccm2_syntax::parser::parse_implementation;
        use ccm2_syntax::pretty::print_implementation;

        let m = generate(&GenParams {
            name: "Pp".into(),
            seed,
            procedures,
            interfaces: 2,
            import_depth: 1,
            stmts_per_proc: stmts,
            nested_ratio: 0.2,
            lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
        });
        let interner = Interner::new();
        let map = ccm2_support::SourceMap::new();
        let sink = DiagnosticSink::new();
        let f1 = map.add("a.mod", m.source.clone());
        let t1 = lex_file(&f1, &interner, &sink);
        let m1 = parse_implementation(&t1, &interner, &sink).expect("parse 1");
        prop_assert!(!sink.has_errors(), "{:?}", sink.snapshot());
        let printed = print_implementation(&m1, &interner);
        let f2 = map.add("b.mod", printed.clone());
        let t2 = lex_file(&f2, &interner, &sink);
        let m2 = parse_implementation(&t2, &interner, &sink).expect("parse 2");
        prop_assert!(!sink.has_errors(), "printed:\n{printed}\n{:?}", sink.snapshot());
        // Fixed point: printing the reparse gives the same text.
        let printed2 = print_implementation(&m2, &interner);
        prop_assert_eq!(printed, printed2);
    }

    #[test]
    fn suite_params_always_generate_compilable_modules(ix in 0usize..37) {
        // Every point of the Table 1 parameter surface must be valid.
        let m = generate(&ccm2_workload::suite_params(ix));
        let out = ccm2_seq::compile(&m.source, &m.defs);
        prop_assert!(out.is_ok(), "suite[{ix}]: {:?}", &out.diagnostics[..out.diagnostics.len().min(3)]);
    }
}

// The incremental cache must be observationally invisible: a warm
// compile of an edited module — under every DKY strategy and both
// executors — produces the byte-identical object image, the same
// diagnostics and the same lint findings as a cold compile of the same
// source. The store is populated once (pre-edit, Skeptical, threads), so
// cross-strategy and cross-executor splices are also exercised.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    #[test]
    fn warm_cache_compiles_are_invisible(
        seed in 0u64..3000,
        procedures in 2usize..9,
        edit_count in 1usize..3,
    ) {
        use ccm2::Executor;
        use ccm2_incr::{encode_image, ArtifactStore, MemStore};
        use ccm2_sched::SimConfig;
        use ccm2_sema::symtab::DkyStrategy;
        use ccm2_workload::{apply_edits, body_edits};

        let base = generate(&GenParams {
            name: "Incr".into(),
            seed,
            procedures,
            interfaces: 2,
            import_depth: 1,
            stmts_per_proc: 10,
            nested_ratio: 0.2,
            lint_seeds: true,
        fault_seeds: false,
        lock_seeds: false,
        });
        let edited = apply_edits(&base, &body_edits(edit_count, seed ^ 0xE11));
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let cold = compile_concurrent(
            &base.source,
            Arc::new(base.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                analyze: true,
                incremental: Some(Arc::clone(&store)),
                ..Options::threads(2)
            },
        );
        prop_assert!(cold.is_ok(), "{:?}", cold.diagnostics);
        // Ground truth: the edited source, compiled with no cache at all.
        let reference = compile_concurrent(
            &edited.source,
            Arc::new(edited.defs.clone()),
            Arc::new(Interner::new()),
            Options {
                analyze: true,
                ..Options::threads(2)
            },
        );
        prop_assert!(reference.is_ok(), "{:?}", reference.diagnostics);
        let want_image = encode_image(reference.image.as_ref().expect("image"), &reference.interner);
        let want_diags = normalize_diags(&reference.diagnostics, &reference.sources);
        let mut first_warm = true;
        for strategy in DkyStrategy::ALL {
            for threads in [false, true] {
                let executor = if threads {
                    Executor::Threads(2)
                } else {
                    Executor::Sim(SimConfig::firefly(2))
                };
                let warm = compile_concurrent(
                    &edited.source,
                    Arc::new(edited.defs.clone()),
                    Arc::new(Interner::new()),
                    Options {
                        strategy,
                        analyze: true,
                        executor,
                        incremental: Some(Arc::clone(&store)),
                        ..Options::default()
                    },
                );
                let label = format!("{}/{}", strategy.name(), if threads { "threads" } else { "sim" });
                prop_assert!(warm.is_ok(), "{label}: {:?}", warm.diagnostics);
                let stats = warm.incr.expect("incremental was active");
                prop_assert!(stats.spliced > 0, "{label}: nothing spliced ({stats:?})");
                // The first warm run recompiles the edited streams; it
                // also re-records them, so every later run hits fully.
                if first_warm {
                    prop_assert!(stats.recompiled >= edit_count, "{label}: {stats:?}");
                    first_warm = false;
                } else {
                    prop_assert_eq!(stats.recompiled, 0, "{} after re-record", label);
                }
                prop_assert_eq!(
                    encode_image(warm.image.as_ref().expect("image"), &warm.interner),
                    want_image.clone(),
                    "{} image diverged",
                    label
                );
                prop_assert_eq!(
                    normalize_diags(&warm.diagnostics, &warm.sources),
                    want_diags.clone(),
                    "{} diagnostics diverged",
                    label
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    #[test]
    fn lock_predictions_byte_identical_across_strategies_and_executors(
        seed in 0u64..2000,
        procedures in 2usize..8,
        stmts in 4usize..12,
    ) {
        use ccm2::Executor;
        use ccm2_sched::SimConfig;
        use ccm2_sema::symtab::DkyStrategy;

        let m = generate(&GenParams {
            name: "PropLk".into(),
            seed,
            procedures,
            interfaces: 1,
            import_depth: 1,
            stmts_per_proc: stmts,
            nested_ratio: 0.2,
            lint_seeds: false,
            fault_seeds: false,
            lock_seeds: true,
        });
        let seq = ccm2_seq::compile_full(
            &m.source,
            &m.defs,
            Arc::new(Interner::new()),
            Arc::new(NullMeter),
            ccm2_sema::declare::HeadingMode::CopyToChild,
            true,
        );
        prop_assert!(seq.is_ok(), "{:?}", seq.diagnostics);
        let reference = normalize_diags(&seq.diagnostics, &seq.sources);
        // Every seeded module embeds the three-lock cycle and the
        // reentrant grab; the interprocedural pass must always see both.
        prop_assert!(
            reference.iter().any(|(_, _, _, msg)| msg.contains(
                "lock-order cycle among `lkA`, `lkB`, `lkC`"
            )),
            "seeded cycle not predicted: {reference:#?}"
        );
        prop_assert!(
            reference
                .iter()
                .any(|(_, _, _, msg)| msg.contains("may re-LOCK it")),
            "seeded re-LOCK not predicted: {reference:#?}"
        );
        let s = seq.locks.clone().expect("analysis ran");
        for strategy in DkyStrategy::ALL {
            for executor in [
                Executor::Sim(SimConfig::firefly(3)),
                Executor::Threads(2),
            ] {
                let which = format!("{executor:?}");
                let conc = compile_concurrent(
                    &m.source,
                    Arc::new(m.defs.clone()),
                    Arc::new(Interner::new()),
                    Options {
                        strategy,
                        analyze: true,
                        executor,
                        ..Options::default()
                    },
                );
                prop_assert_eq!(
                    &reference,
                    &normalize_diags(&conc.diagnostics, &conc.sources),
                    "strategy {} on {}",
                    strategy.name(),
                    which
                );
                let c = conc.locks.expect("analysis ran");
                prop_assert_eq!(
                    (c.units, c.edges, c.cycles, c.findings),
                    (s.units, s.edges, s.cycles, s.findings),
                    "lock stats diverged under {} on {}",
                    strategy.name(),
                    which
                );
            }
        }
    }
}
