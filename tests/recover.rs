//! Supervised stream retry: transient faults recover to byte-identical
//! output, persistent faults exhaust the budget and degrade, and the
//! default (zero retries) keeps the historical degrade-immediately
//! behavior.
//!
//! The fault-site retry namespace does the transient/persistent split:
//! dispatch attempt 0 queries `task:{name}`, attempt `k` queries
//! `task:{name}#r{k}`, so an exact override fires once (transient) and
//! a `task:{name}*` glob fires on every attempt (persistent).

use std::sync::Arc;

use ccm2::{compile_concurrent, CompileError, Executor, Options};
use ccm2_codegen::ir::{CodeUnit, Instr};
use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_sched::SimConfig;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::diag::Severity;
use ccm2_support::Interner;
use ccm2_workload::{generate, GenParams, GeneratedModule};

fn module() -> GeneratedModule {
    generate(&GenParams {
        fault_seeds: true,
        ..GenParams::small("Rx", 0xF1)
    })
}

fn render_unit(u: &CodeUnit, interner: &Interner) -> String {
    let mut s = format!(
        "{} level={} params={} frame={:?} shapes={:?}\n",
        interner.resolve(u.name),
        u.level,
        u.param_count,
        u.frame,
        u.shapes
    );
    for ins in &u.code {
        match ins {
            Instr::PushStr(sym) => s.push_str(&format!("PushStr({})\n", interner.resolve(*sym))),
            Instr::PushProc(sym) => s.push_str(&format!("PushProc({})\n", interner.resolve(*sym))),
            Instr::PushGlobalAddr { module, slot } => s.push_str(&format!(
                "PushGlobalAddr({}, {slot})\n",
                interner.resolve(*module)
            )),
            Instr::Call {
                target,
                argc,
                link_up,
            } => s.push_str(&format!(
                "Call({}, {argc}, {link_up})\n",
                interner.resolve(*target)
            )),
            other => s.push_str(&format!("{other:?}\n")),
        }
    }
    s
}

fn compile(
    m: &GeneratedModule,
    strategy: DkyStrategy,
    sim: bool,
    faults: Option<Arc<FaultPlan>>,
    retries: u32,
) -> ccm2::ConcurrentOutput {
    let executor = if sim {
        Executor::Sim(SimConfig::firefly(4))
    } else {
        Executor::Threads(2)
    };
    compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            strategy,
            executor,
            analyze: true,
            faults,
            max_stream_retries: retries,
            ..Options::default()
        },
    )
}

fn unit_map(out: &ccm2::ConcurrentOutput) -> std::collections::HashMap<String, String> {
    out.image
        .as_ref()
        .expect("image")
        .units
        .iter()
        .map(|u| (out.interner.resolve(u.name), render_unit(u, &out.interner)))
        .collect()
}

/// Transient faults × DKY strategies × both executors: with a retry
/// budget, a recovered run is byte-identical to the fault-free one —
/// including the faulted stream — carries only `Recovered` errors, and
/// still counts as an `is_ok()` compile.
#[test]
fn transient_faults_recover_byte_identical_across_strategies_and_executors() {
    let m = module();
    let sites = [
        "task:procparse(FaultShort)",
        "task:codegen(*FaultLong)",
        "task:analyze(*FaultLong)",
    ];
    for strategy in [DkyStrategy::Skeptical, DkyStrategy::Optimistic] {
        for sim in [true, false] {
            let baseline = compile(&m, strategy, sim, None, 0);
            assert!(baseline.errors.is_empty(), "{:?}", baseline.errors);
            let base_units = unit_map(&baseline);
            for site in sites {
                let plan = Arc::new(FaultPlan::single(site, FaultKind::Panic));
                let run = compile(&m, strategy, sim, Some(Arc::clone(&plan)), 2);
                assert!(plan.any_fired(), "{site}: fault never fired");
                assert!(
                    !run.errors.is_empty()
                        && run
                            .errors
                            .iter()
                            .all(|e| matches!(e, CompileError::Recovered { .. })),
                    "{site} [{strategy:?}, sim={sim}]: expected only Recovered, got {:?}",
                    run.errors
                );
                assert!(
                    run.is_ok(),
                    "{site} [{strategy:?}, sim={sim}]: recovery must not fail the compile"
                );
                assert_eq!(
                    unit_map(&run),
                    base_units,
                    "{site} [{strategy:?}, sim={sim}]: recovered output diverged"
                );
            }
        }
    }
}

/// The recovery diagnostic is a Note — visible in reports, but it fails
/// neither the compile nor the incremental cache's clean check — and it
/// names the task and the number of faulted attempts.
#[test]
fn recovery_is_reported_as_a_note_naming_task_and_attempts() {
    let m = module();
    let plan = Arc::new(FaultPlan::single(
        "task:procparse(FaultShort)",
        FaultKind::Panic,
    ));
    let run = compile(&m, DkyStrategy::Skeptical, true, Some(plan), 3);
    let note = run
        .diagnostics
        .iter()
        .find(|d| d.message.contains("stream recovered"))
        .expect("recovery diagnostic present");
    assert_eq!(note.severity, Severity::Note);
    assert!(
        note.message.contains("procparse(FaultShort)") && note.message.contains("1 retried"),
        "{}",
        note.message
    );
    assert!(run
        .errors
        .iter()
        .any(|e| matches!(e, CompileError::Recovered { task, attempts }
            if task.contains("FaultShort") && *attempts == 1)));
}

/// A persistent fault (trailing glob: every retry attempt re-faults)
/// exhausts the budget and degrades exactly like the historical path,
/// on both executors; non-faulted streams stay byte-identical.
#[test]
fn persistent_faults_exhaust_retries_and_degrade() {
    let m = module();
    for sim in [true, false] {
        let baseline = compile(&m, DkyStrategy::Skeptical, sim, None, 0);
        let base_units = unit_map(&baseline);
        let plan = Arc::new(FaultPlan::single(
            "task:procparse(FaultShort)*",
            FaultKind::Panic,
        ));
        let run = compile(&m, DkyStrategy::Skeptical, sim, Some(Arc::clone(&plan)), 2);
        assert!(
            run.errors.iter().any(|e| matches!(
                e,
                CompileError::StreamFault { task, .. } if task.contains("FaultShort")
            )),
            "sim={sim}: persistent fault must degrade: {:?}",
            run.errors
        );
        assert!(
            plan.fired().iter().any(|f| f.contains("#r2")),
            "sim={sim}: retry budget not fully consumed: {:?}",
            plan.fired()
        );
        for (name, rendered) in unit_map(&run) {
            if name.contains("FaultShort") {
                continue;
            }
            assert_eq!(
                Some(&rendered),
                base_units.get(&name),
                "sim={sim}: non-faulted unit `{name}` diverged"
            );
        }
    }
}

/// `max_stream_retries: 0` (the `Options` default) keeps the historical
/// behavior bit for bit: the first fatal fault degrades the stream, no
/// retry site is ever queried, and no recovery is reported.
#[test]
fn zero_retries_preserves_historical_degradation() {
    let m = module();
    for sim in [true, false] {
        let plan = Arc::new(
            FaultPlan::single("task:procparse(FaultShort)", FaultKind::Panic)
                .with_probe_recording(),
        );
        let run = compile(&m, DkyStrategy::Skeptical, sim, Some(Arc::clone(&plan)), 0);
        assert!(run
            .errors
            .iter()
            .any(|e| matches!(e, CompileError::StreamFault { .. })));
        assert!(!run
            .errors
            .iter()
            .any(|e| matches!(e, CompileError::Recovered { .. })));
        assert!(
            plan.probed().iter().all(|s| !s.contains("#r")),
            "sim={sim}: no retry site may be queried with a zero budget"
        );
    }
}

/// Recovered runs are deterministic on the simulator: same plan, same
/// retry budget → identical errors, diagnostics, units and virtual time
/// (the retry penalty is charged in virtual time, so even the makespan
/// reproduces).
#[test]
fn recovered_runs_are_deterministic_on_the_simulator() {
    let m = module();
    let run = |_: u32| {
        compile(
            &m,
            DkyStrategy::Skeptical,
            true,
            Some(Arc::new(FaultPlan::single(
                "task:codegen(*FaultLong)",
                FaultKind::Panic,
            ))),
            2,
        )
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(a.errors, b.errors);
    assert_eq!(
        a.diagnostics.iter().map(|d| &d.message).collect::<Vec<_>>(),
        b.diagnostics.iter().map(|d| &d.message).collect::<Vec<_>>()
    );
    assert_eq!(unit_map(&a), unit_map(&b));
    assert_eq!(a.report.virtual_time, b.report.virtual_time);
}

/// Builds options like [`compile`] but with per-task retry budgets.
fn compile_budgeted(
    m: &GeneratedModule,
    sim: bool,
    faults: Option<Arc<FaultPlan>>,
    retries: u32,
    budgets: &[(&str, u32)],
) -> ccm2::ConcurrentOutput {
    let executor = if sim {
        Executor::Sim(SimConfig::firefly(4))
    } else {
        Executor::Threads(2)
    };
    compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options {
            strategy: DkyStrategy::Skeptical,
            executor,
            analyze: true,
            faults,
            max_stream_retries: retries,
            task_retry_budgets: budgets.iter().map(|(n, b)| (n.to_string(), *b)).collect(),
            ..Options::default()
        },
    )
}

/// A per-task budget of 0 pins that task to a single attempt even when
/// the global budget would retry it: the stream degrades immediately,
/// no retry site is queried, and no recovery is reported — while the
/// rest of the compile still runs under the global budget.
#[test]
fn per_task_budget_zero_overrides_global_retries() {
    let m = module();
    for sim in [true, false] {
        let plan = Arc::new(
            FaultPlan::single("task:procparse(FaultShort)", FaultKind::Panic)
                .with_probe_recording(),
        );
        let run = compile_budgeted(
            &m,
            sim,
            Some(Arc::clone(&plan)),
            2,
            &[("procparse(FaultShort)", 0)],
        );
        assert!(
            run.errors
                .iter()
                .any(|e| matches!(e, CompileError::StreamFault { .. })),
            "sim={sim}: pinned task must degrade on first fault"
        );
        assert!(
            !run.errors
                .iter()
                .any(|e| matches!(e, CompileError::Recovered { .. })),
            "sim={sim}: a zero budget must not recover"
        );
        assert!(
            plan.probed().iter().all(|s| !s.contains("#r")),
            "sim={sim}: no retry site may be queried for the pinned task"
        );
    }
}

/// A per-task budget grants retries to one task with the global budget
/// at zero: the named task recovers to the byte-identical fault-free
/// output, and a budget naming a nonexistent task changes nothing.
#[test]
fn per_task_budget_enables_retries_with_global_zero() {
    let m = module();
    for sim in [true, false] {
        let baseline = compile(&m, DkyStrategy::Skeptical, sim, None, 0);
        let base_units = unit_map(&baseline);

        let plan = Arc::new(FaultPlan::single(
            "task:procparse(FaultShort)",
            FaultKind::Panic,
        ));
        let run = compile_budgeted(
            &m,
            sim,
            Some(Arc::clone(&plan)),
            0,
            &[("procparse(FaultShort)", 2)],
        );
        assert!(plan.any_fired(), "sim={sim}: fault never fired");
        assert!(
            !run.errors.is_empty()
                && run
                    .errors
                    .iter()
                    .all(|e| matches!(e, CompileError::Recovered { .. })),
            "sim={sim}: expected only Recovered, got {:?}",
            run.errors
        );
        assert!(run.is_ok(), "sim={sim}: recovery must not fail the compile");
        assert_eq!(
            unit_map(&run),
            base_units,
            "sim={sim}: recovered output must match the fault-free compile"
        );

        // A budget naming a task that never exists must not leak retries
        // to anything else: the faulted stream still degrades.
        let plan = Arc::new(FaultPlan::single(
            "task:procparse(FaultShort)",
            FaultKind::Panic,
        ));
        let run = compile_budgeted(
            &m,
            sim,
            Some(Arc::clone(&plan)),
            0,
            &[("procparse(NoSuchProc)", 2)],
        );
        assert!(
            run.errors
                .iter()
                .any(|e| matches!(e, CompileError::StreamFault { .. })),
            "sim={sim}: unrelated budget must not grant retries"
        );
    }
}
