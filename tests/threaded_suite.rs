//! Real-thread compilation of suite-scale programs: the threaded
//! Supervisors executor must handle hundreds of tasks with nested
//! rescheduling and produce the sequential compiler's exact output.

use std::sync::Arc;

use ccm2::{compile_concurrent, Options};
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::{Interner, NullMeter};
use ccm2_workload::{generate, suite_params};

#[test]
fn medium_suite_entries_compile_on_four_workers() {
    for index in [6usize, 12, 18] {
        let m = generate(&suite_params(index));
        let interner = Arc::new(Interner::new());
        let seq = ccm2_seq::compile_with(
            &m.source,
            &m.defs,
            Arc::clone(&interner),
            Arc::new(NullMeter),
            HeadingMode::CopyToChild,
        );
        assert!(
            seq.is_ok(),
            "{index}: {:?}",
            &seq.diagnostics[..3.min(seq.diagnostics.len())]
        );
        let conc = compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::clone(&interner),
            Options::threads(4),
        );
        assert!(conc.is_ok(), "{index}");
        assert_eq!(seq.image, conc.image, "suite[{index}] image mismatch");
        // Figure 5: 2–5 tasks per stream (procedure streams have 2,
        // definition-module streams 3, the main stream 4).
        assert!(
            conc.report.tasks_run >= 2 * conc.streams,
            "suite[{index}]: expected ≥2 tasks per stream, got {} for {} streams",
            conc.report.tasks_run,
            conc.streams
        );
    }
}

#[test]
fn large_suite_entry_with_every_strategy_on_threads() {
    let m = generate(&suite_params(24));
    let interner = Arc::new(Interner::new());
    let seq = ccm2_seq::compile_with(
        &m.source,
        &m.defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    );
    let reference = seq.image.expect("seq image");
    for strategy in DkyStrategy::ALL {
        let conc = compile_concurrent(
            &m.source,
            Arc::new(m.defs.clone()),
            Arc::clone(&interner),
            Options {
                strategy,
                ..Options::threads(3)
            },
        );
        assert!(conc.is_ok(), "{}", strategy.name());
        assert_eq!(
            conc.image.expect("image"),
            reference,
            "strategy {} diverged on threads",
            strategy.name()
        );
    }
}

#[test]
fn single_worker_handles_deep_nesting_chains() {
    // One worker forces maximal nested rescheduling (every DKY resolver
    // runs nested on the single worker's stack).
    let m = generate(&ccm2_workload::GenParams {
        name: "DeepChain".into(),
        seed: 77,
        procedures: 10,
        interfaces: 10,
        import_depth: 10,
        stmts_per_proc: 10,
        nested_ratio: 0.2,
        lint_seeds: false,
        fault_seeds: false,
        lock_seeds: false,
    });
    let out = compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::new(Interner::new()),
        Options::threads(1),
    );
    assert!(
        out.is_ok(),
        "{:?}",
        &out.diagnostics[..3.min(out.diagnostics.len())]
    );
    assert_eq!(out.imported_interfaces, 10);
}

#[test]
fn eight_workers_on_one_cpu_is_safe() {
    // More workers than physical CPUs must still be correct (the paper's
    // "one worker per processor" is a performance choice, not a safety
    // requirement).
    let m = generate(&suite_params(10));
    let interner = Arc::new(Interner::new());
    let seq = ccm2_seq::compile_with(
        &m.source,
        &m.defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    );
    let conc = compile_concurrent(
        &m.source,
        Arc::new(m.defs.clone()),
        Arc::clone(&interner),
        Options::threads(8),
    );
    assert_eq!(seq.image, conc.image);
}
