//! End-to-end tests for the always-on editor loop (`ccm2-watch`) and
//! the error-recovering parser it depends on:
//!
//! * a syntax error inside one procedure body degrades exactly that
//!   stream to a deterministic error unit — byte-identical across the
//!   sequential compiler, all four DKY strategies, and both executors;
//! * heading modes are cache-safe: each §2.4 mode splices only entries
//!   it recorded itself (the environment digest separates them), and a
//!   warm compile under any mode reproduces its cold output exactly;
//! * a session replaying a seeded edit stream — broken intermediates
//!   included — converges to the byte-identical output of a cold
//!   compile of its final sources.

use std::sync::Arc;

use ccm2::{compile_concurrent, Executor, Options};
use ccm2_codegen::emit::is_error_unit;
use ccm2_incr::{comparable_output, ArtifactStore, MemStore};
use ccm2_sched::SimConfig;
use ccm2_sema::declare::HeadingMode;
use ccm2_sema::symtab::DkyStrategy;
use ccm2_support::defs::DefLibrary;
use ccm2_support::{Interner, NullMeter};
use ccm2_watch::{CheckReport, WatchConfig, WatchService};
use ccm2_workload::{
    apply_edits, edit_session_seeds, generate, EditOp, GenParams, GeneratedModule, SessionParams,
};
use proptest::prelude::*;

/// Interner-independent (image bytes, rendered diagnostics) pair.
fn comparable(out: &ccm2::ConcurrentOutput) -> (Option<Vec<u8>>, Vec<String>) {
    comparable_output(
        out.image.as_ref(),
        &out.diagnostics,
        &out.sources,
        &out.interner,
    )
}

fn compile_cold(source: &str, defs: &DefLibrary, options: Options) -> ccm2::ConcurrentOutput {
    compile_concurrent(
        source,
        Arc::new(defs.clone()),
        Arc::new(Interner::new()),
        options,
    )
}

// ---- deterministic error units across the whole matrix ------------------

/// The CI determinism guard: one broken procedure body, compiled by the
/// sequential compiler and by the concurrent one under every DKY
/// strategy on both executors, yields byte-identical object bytes and
/// diagnostics — and the only degraded unit is the broken procedure's.
#[test]
fn error_unit_is_byte_identical_across_seq_dky_and_executors() {
    let m = generate(&GenParams::small("DetBrk", 21));
    let broken = apply_edits(&m, &[EditOp::BreakBody { index: 1, seed: 5 }]);

    let interner = Arc::new(Interner::new());
    let seq = ccm2_seq::compile_with(
        &broken.source,
        &broken.defs,
        Arc::clone(&interner),
        Arc::new(NullMeter),
        HeadingMode::CopyToChild,
    );
    assert!(!seq.diagnostics.is_empty(), "break must be reported");
    let reference = comparable_output(
        seq.image.as_ref(),
        &seq.diagnostics,
        &seq.sources,
        &interner,
    );
    assert!(
        reference.0.is_some(),
        "recovered parse still yields an image"
    );

    for strategy in [
        DkyStrategy::Avoidance,
        DkyStrategy::Pessimistic,
        DkyStrategy::Skeptical,
        DkyStrategy::Optimistic,
    ] {
        for sim in [true, false] {
            let executor = if sim {
                Executor::Sim(SimConfig::firefly(4))
            } else {
                Executor::Threads(2)
            };
            let out = compile_cold(
                &broken.source,
                &broken.defs,
                Options {
                    strategy,
                    executor,
                    ..Options::default()
                },
            );
            assert_eq!(
                comparable(&out),
                reference,
                "{strategy:?} sim={sim}: degraded output diverged from sequential"
            );
            let degraded: Vec<String> = out
                .image
                .as_ref()
                .expect("image")
                .units
                .iter()
                .filter(|u| is_error_unit(u, &out.interner))
                .map(|u| out.interner.resolve(u.name))
                .collect();
            assert_eq!(
                degraded,
                vec!["DetBrk.Proc1".to_string()],
                "{strategy:?} sim={sim}: exactly the broken stream degrades"
            );
        }
    }
}

/// A break in one procedure leaves nested units elsewhere in the module
/// untouched: with `fault_seeds` the module carries `FaultNestInner`
/// nested inside `FaultNest`, and only the broken stream degrades.
#[test]
fn break_leaves_nested_units_in_siblings_intact() {
    let m = generate(&GenParams {
        fault_seeds: true,
        ..GenParams::small("NestBrk", 22)
    });
    let broken = apply_edits(&m, &[EditOp::BreakBody { index: 1, seed: 3 }]);
    let out = compile_cold(&broken.source, &broken.defs, Options::default());
    let image = out.image.as_ref().expect("image");
    let degraded: Vec<String> = image
        .units
        .iter()
        .filter(|u| is_error_unit(u, &out.interner))
        .map(|u| out.interner.resolve(u.name))
        .collect();
    assert_eq!(degraded, vec!["NestBrk.Proc1".to_string()]);
    assert!(
        image
            .units
            .iter()
            .any(|u| out.interner.resolve(u.name).contains("FaultNestInner")),
        "nested sibling unit survives"
    );
}

// ---- heading modes: per-mode warm/cold cache equivalence ----------------

/// Satellite: every §2.4 heading mode is cache-safe. A warm compile
/// under each mode reproduces its cold output byte for byte, and a
/// store populated under one mode never feeds entries to another (the
/// environment digest carries the mode tag).
#[test]
fn heading_modes_are_cache_safe_and_isolated() {
    let m = generate(&GenParams::small("HeadCache", 31));
    let modes = [
        HeadingMode::CopyToChild,
        HeadingMode::Dual,
        HeadingMode::Reprocess,
    ];
    let mut outputs = Vec::new();
    for mode in modes {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
        let opts = || Options {
            heading_mode: mode,
            incremental: Some(Arc::clone(&store)),
            ..Options::default()
        };
        let cold = compile_cold(&m.source, &m.defs, opts());
        assert!(cold.is_ok(), "{mode:?}: {:#?}", cold.diagnostics);
        assert_eq!(cold.incr.expect("incremental").spliced, 0);
        let warm = compile_cold(&m.source, &m.defs, opts());
        let stats = warm.incr.expect("incremental");
        assert_eq!(
            stats.spliced, stats.units,
            "{mode:?}: fully warm second compile"
        );
        assert_eq!(
            comparable(&cold),
            comparable(&warm),
            "{mode:?}: warm output must equal cold"
        );
        outputs.push(comparable(&cold));
    }
    // Clean sources: all three modes agree on the output itself.
    assert_eq!(outputs[0], outputs[1], "Dual == CopyToChild on clean code");
    assert_eq!(outputs[0], outputs[2], "Reprocess == CopyToChild");

    // Cross-mode isolation: a store warmed under CopyToChild yields
    // zero splices under the other two modes (distinct cache tags), and
    // the outputs still match their own cold compiles.
    let store: Arc<dyn ArtifactStore> = Arc::new(MemStore::new());
    let copy_cold = compile_cold(
        &m.source,
        &m.defs,
        Options {
            heading_mode: HeadingMode::CopyToChild,
            incremental: Some(Arc::clone(&store)),
            ..Options::default()
        },
    );
    assert!(copy_cold.is_ok());
    for mode in [HeadingMode::Dual, HeadingMode::Reprocess] {
        let out = compile_cold(
            &m.source,
            &m.defs,
            Options {
                heading_mode: mode,
                incremental: Some(Arc::clone(&store)),
                ..Options::default()
            },
        );
        let stats = out.incr.expect("incremental");
        assert_eq!(
            stats.spliced, 0,
            "{mode:?} must not splice CopyToChild's entries"
        );
        assert_eq!(
            comparable(&out),
            comparable(&copy_cold),
            "{mode:?}: output unaffected by the foreign store"
        );
    }
}

// ---- watch sessions end to end ------------------------------------------

fn session_modules(n: usize, seed: u64) -> Vec<GenParams> {
    (0..n)
        .map(|i| GenParams::small(&format!("WSess{i}"), seed + i as u64))
        .collect()
}

/// The dotted unit name an edit op targets, if it names a procedure.
fn edited_unit(module: &str, op: &EditOp) -> Option<String> {
    match op {
        EditOp::ProcBody { index, .. }
        | EditOp::BreakBody { index, .. }
        | EditOp::FixBody { index } => Some(format!("{module}.Proc{index}")),
        EditOp::Interface { .. } => None,
    }
}

/// Replays a seeded session one edit per check and asserts the ISSUE's
/// editor-loop guarantees: broken revisions degrade only the edited
/// stream (every sibling unit byte-identical to the fault-free
/// revision), every session ends clean, and the final revision is
/// byte-identical to a cold compile of the final sources.
#[test]
fn seeded_session_degrades_only_edited_streams_and_converges() {
    let params = session_modules(4, 400);
    let modules: Vec<GeneratedModule> = params.iter().map(generate).collect();
    let stream = edit_session_seeds(
        &params,
        &SessionParams {
            edits: 40,
            seed: 0xED17_5E55,
            ..SessionParams::default()
        },
    );

    let mut svc = WatchService::new(WatchConfig::default());
    for m in &modules {
        let r = svc.open(m.name.clone(), m.clone());
        assert!(r.clean, "{}: {:#?}", m.name, r.diags_added);
    }

    let mut saw_broken = false;
    for e in &stream {
        let name = params[e.module].name.clone();
        svc.submit(&name, e.op.clone()).unwrap();
        let r: CheckReport = svc.check(&name).unwrap();
        if let Some(unit) = edited_unit(&name, &e.op) {
            // Only the edited stream may change — siblings (and the
            // module body) stay byte-identical whether the edit was
            // benign, breaking, or a fix.
            assert!(
                r.changed_units.iter().all(|u| *u == unit),
                "{name} rev {}: edit to {unit} changed {:?}",
                r.revision,
                r.changed_units
            );
            if !r.clean {
                saw_broken = true;
                assert!(
                    r.degraded_units.contains(&unit) || !r.degraded_units.is_empty(),
                    "broken revision must name a degraded unit"
                );
                assert!(
                    r.degraded_units.iter().all(|u| u.starts_with(&name)),
                    "degradation never crosses projects: {:?}",
                    r.degraded_units
                );
            }
        }
    }
    assert!(saw_broken, "stream exercises broken intermediates");

    for p in &params {
        let session = svc.session(&p.name).expect("open session");
        assert!(
            session.diagnostics().is_empty(),
            "{}: session must end clean",
            p.name
        );
        // Final revision == cold compile of the final sources, byte for
        // byte (fresh interner, no artifact store).
        let final_sources = session.module().clone();
        let cold = compile_cold(
            &final_sources.source,
            &final_sources.defs,
            Options::threads(1),
        );
        let (cold_object, cold_diags) = comparable(&cold);
        assert_eq!(
            session.object(),
            cold_object.as_deref(),
            "{}: session image must equal cold compile",
            p.name
        );
        assert_eq!(session.diagnostics(), &cold_diags[..], "{}: diags", p.name);
    }
}

/// An interface edit invalidates the whole project revision (cold
/// streams), but the session still reports it cleanly and stays
/// convergent.
#[test]
fn interface_edit_goes_cold_but_stays_correct() {
    let m = generate(&GenParams::small("WIface", 9));
    let def = format!("{}Lib0", m.name);
    let mut svc = WatchService::new(WatchConfig::default());
    svc.open("p", m);
    let r = svc
        .submit(
            "p",
            EditOp::Interface {
                def: def.clone(),
                tag: 3,
            },
        )
        .and_then(|()| svc.check("p"))
        .unwrap();
    assert!(r.clean, "{:#?}", r.diags_added);
    assert_eq!(r.warm_streams, 0, "environment digest changed: all cold");
    assert!(r.cold_streams > 0);

    let session = svc.session("p").unwrap();
    let cold = compile_cold(
        &session.module().source,
        &session.module().defs,
        Options::threads(1),
    );
    assert_eq!(session.object(), comparable(&cold).0.as_deref());
}

// ---- convergence property (proptest) ------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    // Any seeded stream, replayed through a session in arbitrary batch
    // sizes (so coalescing kicks in), converges: after the final check,
    // the session's image and diagnostics are byte-identical to a cold
    // compile of its final sources — even when broken intermediates (or
    // a coalesced-away fix) leave the final state itself broken.
    #[test]
    fn session_replay_converges_to_cold_compile(seed in 0u64..u64::MAX, batch in 1usize..4) {
        let params = session_modules(3, 700 + (seed % 13));
        let modules: Vec<GeneratedModule> = params.iter().map(generate).collect();
        let stream = edit_session_seeds(
            &params,
            &SessionParams {
                edits: 18,
                seed,
                ..SessionParams::default()
            },
        );

        let mut svc = WatchService::new(WatchConfig::default());
        for m in &modules {
            svc.open(m.name.clone(), m.clone());
        }
        let mut pending = vec![0usize; params.len()];
        for e in &stream {
            let name = params[e.module].name.clone();
            svc.submit(&name, e.op.clone()).unwrap();
            pending[e.module] += 1;
            if pending[e.module] >= batch {
                svc.check(&name).unwrap();
                pending[e.module] = 0;
            }
        }
        for (i, p) in params.iter().enumerate() {
            if pending[i] > 0 {
                svc.check(&p.name).unwrap();
            }
            let session = svc.session(&p.name).expect("session");
            let cold = compile_cold(
                &session.module().source,
                &session.module().defs,
                Options::threads(1),
            );
            let (cold_object, cold_diags) = comparable(&cold);
            prop_assert_eq!(
                session.object(),
                cold_object.as_deref(),
                "{}: image diverged from cold compile",
                p.name
            );
            prop_assert_eq!(
                session.diagnostics(),
                &cold_diags[..],
                "{}: diagnostics diverged",
                p.name
            );
        }
    }
}
