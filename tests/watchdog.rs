//! Watchdog edge cases: the deadline boundary and the wedge-release /
//! late-signal race.
//!
//! * The per-task deadline is exclusive: a task whose busy time lands
//!   *exactly on* the deadline is on time; one unit more is diagnosed.
//! * A wedge release force-signals the events a wedged run is blocked
//!   on. A waiter released that way may still *legitimately* signal the
//!   same events afterwards — signals are idempotent, so the race is
//!   harmless on both executors: every body runs exactly once and the
//!   run terminates with one wedge diagnosis.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ccm2_faults::{FaultKind, FaultPlan};
use ccm2_sched::task::{TaskDesc, TaskKind, WaitSet};
use ccm2_sched::{run_sim_with, run_threaded_with, EventClass, ExecEnv, Robustness, SimConfig};
use ccm2_support::work::Work;

/// On the simulator the deadline check is exact: busy time equal to the
/// deadline is on time (strict `>`), one more unit is a stall.
#[test]
fn sim_task_finishing_exactly_at_deadline_is_on_time() {
    let run = |units: u64| {
        run_sim_with(
            SimConfig::new(1),
            Robustness::degrading(None, Some(100)),
            |env| {
                let env1 = Arc::clone(env);
                env.spawn(TaskDesc::new(
                    "edge",
                    TaskKind::ProcParse,
                    Box::new(move || env1.charge(Work::Parse, units)),
                ));
            },
        )
    };
    // SimConfig::new has unit cost and no contention: busy == charged.
    let at = run(100);
    assert_eq!(at.tasks_run, 1);
    assert!(
        at.stalls.is_empty(),
        "exactly-at-deadline must not stall: {:?}",
        at.stalls
    );
    let over = run(101);
    assert_eq!(over.tasks_run, 1);
    assert!(
        over.stalls.iter().any(|s| s.contains("edge")),
        "one unit over must be diagnosed: {:?}",
        over.stalls
    );
}

/// Wall-clock deadlines cannot hit the boundary deterministically; the
/// edge that matters is the other side — a task comfortably inside its
/// deadline must never be flagged by the threaded watchdog.
#[test]
fn threaded_task_well_within_deadline_is_not_stalled() {
    let report = run_threaded_with(
        2,
        Robustness::degrading(None, Some(5_000_000)), // 5 s, in µs
        |sup| {
            for i in 0..4 {
                sup.spawn(TaskDesc::new(
                    format!("quick{i}"),
                    TaskKind::ShortCodeGen,
                    Box::new(|| {}),
                ));
            }
        },
    );
    assert_eq!(report.tasks_run, 4);
    assert!(report.stalls.is_empty(), "{:?}", report.stalls);
}

/// Builds the wedge-race graph on any executor: `producer` signals
/// `lost` (dropped by the plan), `relay` waits on `lost` then signals
/// `gate`, `waiter` waits on `gate`. The run wedges with `relay` and
/// `waiter` blocked; the watchdog force-releases, after which `relay`'s
/// late — now redundant — `signal(gate)` races the release. Returns the
/// per-body run counters.
fn wedge_race(env: &(impl ExecEnv + ?Sized + 'static), env_arc: ArcEnv) -> [Arc<AtomicUsize>; 3] {
    let counters = [
        Arc::new(AtomicUsize::new(0)),
        Arc::new(AtomicUsize::new(0)),
        Arc::new(AtomicUsize::new(0)),
    ];
    let lost = env.new_event_named(EventClass::Handled, "lost");
    let gate = env.new_event_named(EventClass::Handled, "gate");

    let c = Arc::clone(&counters[0]);
    let mut producer = TaskDesc::new(
        "producer",
        TaskKind::Lexor,
        Box::new(move || {
            c.fetch_add(1, Ordering::Relaxed);
        }),
    );
    producer.signals = vec![lost];
    env.spawn(producer);

    let c = Arc::clone(&counters[1]);
    let e = env_arc.clone();
    let mut relay = TaskDesc::new(
        "relay",
        TaskKind::ProcParse,
        Box::new(move || {
            e.wait(lost);
            c.fetch_add(1, Ordering::Relaxed);
            // The late legitimate signal: by now the wedge release may
            // already have force-signaled `gate`. Idempotent either way.
            e.signal(gate);
        }),
    );
    relay.signals = vec![gate];
    relay.may_wait = WaitSet {
        events: vec![lost],
        all_def_scopes: false,
        any_barrier: false,
    };
    env.spawn(relay);

    let c = Arc::clone(&counters[2]);
    let e = env_arc.clone();
    let mut waiter = TaskDesc::new(
        "waiter",
        TaskKind::ShortCodeGen,
        Box::new(move || {
            e.wait(gate);
            c.fetch_add(1, Ordering::Relaxed);
        }),
    );
    waiter.may_wait = WaitSet {
        events: vec![gate],
        all_def_scopes: false,
        any_barrier: false,
    };
    env.spawn(waiter);
    counters
}

/// Type-erased env handle the task bodies capture (both executors).
type ArcEnv = Arc<dyn ExecEnv>;

#[test]
fn sim_wedge_release_races_late_legitimate_signal() {
    let plan = Arc::new(FaultPlan::single("signal:lost", FaultKind::LoseSignal));
    let mut counters = None;
    let report = run_sim_with(
        SimConfig::new(2),
        Robustness::degrading(Some(plan), None),
        |env| {
            counters = Some(wedge_race(env.as_ref(), Arc::clone(env) as ArcEnv));
        },
    );
    let counters = counters.expect("setup ran");
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "body {i} must run exactly once"
        );
    }
    assert_eq!(report.tasks_run, 3);
    assert!(
        report.stalls.iter().any(|s| s.contains("released wedge")),
        "wedge release must be diagnosed: {:?}",
        report.stalls
    );
}

#[test]
fn threaded_wedge_release_races_late_legitimate_signal() {
    let plan = Arc::new(FaultPlan::single("signal:lost", FaultKind::LoseSignal));
    let mut counters = None;
    let report = run_threaded_with(2, Robustness::degrading(Some(plan), None), |sup| {
        counters = Some(wedge_race(sup.as_ref(), Arc::clone(sup) as ArcEnv));
    });
    let counters = counters.expect("setup ran");
    for (i, c) in counters.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "body {i} must run exactly once"
        );
    }
    assert_eq!(report.tasks_run, 3);
    assert!(
        !report.stalls.is_empty(),
        "wedge release must be diagnosed: {:?}",
        report.stalls
    );
}
